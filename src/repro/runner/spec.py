"""Declarative scenario specifications with deterministic fingerprints.

A :class:`ScenarioSpec` names everything one impact analysis needs — the
case (a bundled name or an inline case file in the paper's input format),
an optional attacker-randomization seed, the analyzer kind and the query
parameters — as plain JSON-able data, so scenarios can be shipped to
worker processes, hashed for the on-disk result cache, and replayed
bit-identically later.

The fingerprint covers the *resolved* case (the full serialized case
text, after attacker randomization), the query parameters and a code
fingerprint of the ``repro`` package sources: any change to the inputs or
to the analysis code invalidates cached results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition, parse_case, write_case
from repro.numerics import BACKENDS, default_policy, resolve_backend
from repro.smt.rational import to_fraction

#: bump when the cached-result layout changes incompatibly.
#: v3: cache keys additionally carry the installed ``repro`` version and
#: a dedicated fingerprint of the encoding-relevant modules, so results
#: produced by a differently-versioned or differently-encoding install
#: never alias (outcomes also record ``certified``).
#: v4: outcomes grow a ``diagnostics`` payload and the deterministic
#: preflight rejections (``invalid_input``/``degenerate_case``) are
#: cached alongside ``ok`` — pre-v4 entries must not be served as "no
#: diagnostics recorded".
#: v5: specs grow a ``search`` mode (``decision`` | ``maximize``) and a
#: bisection ``tolerance``; maximize outcomes carry a ``max_impact``
#: payload — pre-v5 entries must not alias either mode's results.
#: v6: the guarded-numerics layer adds the ``numerical_unstable``
#: outcome status (cached like rejections) and fingerprints carry the
#: active numerics policy thresholds — pre-v6 entries were produced
#: with unguarded linear algebra and must not be served.
#: v7: specs grow a ``backend`` knob (dense | sparse | auto) and
#: fingerprints/encoding groups carry the *resolved* backend, so results
#: from the two numerical paths never alias — pre-v7 entries predate the
#: sparse core and must not be served.
CACHE_FORMAT_VERSION = 7

#: bus count at and below which ``analyzer="auto"`` picks the full SMT
#: framework (mirrors the paper's Section IV-A hybrid).
AUTO_SMT_MAX_BUSES = 14

_code_fingerprint: Optional[str] = None
_encoding_fingerprint: Optional[str] = None

#: subpackages/modules (relative to the ``repro`` package root) whose
#: sources determine how a scenario is *encoded and solved* — the part of
#: the code whose changes can silently alter cached verdicts.
_ENCODING_SOURCES = ("smt", "core", "opf", "attacks", "estimation",
                    "grid", "topology", "numerics")


def _hash_sources(root: Path, relatives) -> str:
    digest = hashlib.sha256()
    for relative in relatives:
        target = root / relative
        paths = sorted(target.rglob("*.py")) if target.is_dir() \
            else ([target] if target.exists() else [])
        for path in paths:
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def code_fingerprint() -> str:
    """Hash of the ``repro`` package sources (cached per process).

    Part of every scenario fingerprint, so edits to the analysis code
    automatically invalidate stale cached results.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        _code_fingerprint = _hash_sources(root, ["."])
    return _code_fingerprint


def encoding_fingerprint() -> str:
    """Hash of the encoding/solving modules only (cached per process).

    Narrower than :func:`code_fingerprint`: it pins the semantics of the
    SMT encodings and solvers behind a cached verdict without churning on
    runner/CLI edits, and is recorded in cache keys alongside the package
    version (cache format v3).
    """
    global _encoding_fingerprint
    if _encoding_fingerprint is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        _encoding_fingerprint = _hash_sources(root, _ENCODING_SOURCES)
    return _encoding_fingerprint


@dataclass(frozen=True)
class ScenarioSpec:
    """One (case × attacker × query) cell of a sweep grid."""

    case: str                            # bundled case name or a label
    analyzer: str = "auto"               # "smt" | "fast" | "auto"
    case_text: Optional[str] = None      # inline case (paper input format)
    attacker_seed: Optional[int] = None  # randomize_attacker() seed
    #: target increase as ``str(Fraction)`` (keeps the spec hashable and
    #: JSON-clean); None uses the case's own value.  In ``maximize`` mode
    #: this is the bisection bracket's *anchor* ``lo`` (None: 0).
    target: Optional[str] = None
    with_state_infection: bool = False
    max_candidates: int = 60
    state_samples: int = 24
    sample_seed: int = 0                 # fast-analyzer sampling seed
    #: "decision" answers the spec's threshold query; "maximize" bisects
    #: to the maximum achievable increase I* on the same warm session.
    search: str = "decision"
    #: maximize-mode bisection tolerance as ``str(Fraction)`` (None uses
    #: :data:`repro.search.DEFAULT_TOLERANCE`).
    tolerance: Optional[str] = None
    #: linear-algebra backend: "dense" | "sparse" | "auto"; None uses the
    #: process default (see :mod:`repro.numerics.backend`).
    backend: Optional[str] = None
    label: str = ""

    @classmethod
    def build(cls, case: str, *, analyzer: str = "auto",
              case_text: Optional[str] = None,
              attacker_seed: Optional[int] = None,
              target=None, with_state_infection: bool = False,
              max_candidates: int = 60, state_samples: int = 24,
              sample_seed: int = 0, search: str = "decision",
              tolerance=None, backend: Optional[str] = None,
              label: str = "") -> "ScenarioSpec":
        """Constructor accepting any rational-ish ``target``."""
        if analyzer not in ("smt", "fast", "auto"):
            raise ModelError(f"unknown analyzer kind {analyzer!r}")
        if search not in ("decision", "maximize"):
            raise ModelError(f"unknown search mode {search!r}")
        if backend is not None and backend not in BACKENDS:
            raise ModelError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        if tolerance is not None:
            if search != "maximize":
                raise ModelError(
                    "tolerance only applies to search='maximize'")
            if to_fraction(tolerance) <= 0:
                raise ModelError("bisection tolerance must be positive")
        target_str = None if target is None else str(to_fraction(target))
        tolerance_str = None if tolerance is None \
            else str(to_fraction(tolerance))
        if not label:
            parts = [case]
            if attacker_seed is not None:
                parts.append(f"s{attacker_seed}")
            if target_str is not None:
                parts.append(f"t{target_str}")
            if with_state_infection:
                parts.append("states")
            if search == "maximize":
                parts.append("max")
            label = "/".join(parts)
        return cls(case=case, analyzer=analyzer, case_text=case_text,
                   attacker_seed=attacker_seed, target=target_str,
                   with_state_infection=with_state_infection,
                   max_candidates=max_candidates,
                   state_samples=state_samples, sample_seed=sample_seed,
                   search=search, tolerance=tolerance_str,
                   backend=backend, label=label)

    # -- resolution -----------------------------------------------------

    def resolve_case(self) -> CaseDefinition:
        """The concrete case this scenario analyzes."""
        if self.case_text is not None:
            case = parse_case(self.case_text, name=self.case)
        else:
            from repro.grid.cases import get_case
            case = get_case(self.case)
        if self.attacker_seed is not None:
            from repro.benchlib.scenarios import randomize_attacker
            case = randomize_attacker(case, self.attacker_seed)
        return case

    def resolved_analyzer(self, case: CaseDefinition) -> str:
        if self.analyzer != "auto":
            return self.analyzer
        return "smt" if case.num_buses <= AUTO_SMT_MAX_BUSES else "fast"

    def resolved_backend(self, case: CaseDefinition) -> str:
        """The concrete linear-algebra backend ("dense" | "sparse")."""
        return resolve_backend(self.backend, case.num_buses)

    def target_fraction(self) -> Optional[Fraction]:
        return None if self.target is None else Fraction(self.target)

    def tolerance_fraction(self) -> Optional[Fraction]:
        return None if self.tolerance is None else Fraction(self.tolerance)

    # -- serialization and fingerprinting -------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec, rejecting unknown fields.

        Raises :class:`ValueError` (never a bare ``TypeError`` stack
        trace) so boundary layers — the result cache and the analysis
        service's request protocol — can turn a malformed or
        version-skewed spec payload into a structured diagnostic.
        """
        if not isinstance(payload, dict):
            raise ValueError("scenario spec payload is not a JSON object")
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario spec field(s): {', '.join(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ValueError(f"malformed scenario spec: {exc}") from exc

    def encoding_group(self) -> str:
        """Identity of the *encoding* this scenario solves against.

        Narrower than :meth:`fingerprint`: only the resolved case text,
        the analyzer kind and the state-infection flag shape the attack
        encoding — the target threshold, candidate caps and sampling
        seeds are per-query.  Scenarios with equal groups can share one
        warm analyzer (the engine re-solves them incrementally inside
        solver scopes instead of re-encoding per scenario).
        """
        case = self.resolve_case()
        key = {
            "case_text": write_case(case),
            "analyzer": self.resolved_analyzer(case),
            "backend": self.resolved_backend(case),
            "with_state_infection": self.with_state_infection,
        }
        blob = json.dumps(key, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def fingerprint(self) -> str:
        """Deterministic identity of (resolved case, query, code)."""
        import repro
        case = self.resolve_case()
        key = {
            "format": CACHE_FORMAT_VERSION,
            "version": repro.__version__,
            "code": code_fingerprint(),
            "encoding": encoding_fingerprint(),
            "case_text": write_case(case),
            "analyzer": self.resolved_analyzer(case),
            "backend": self.resolved_backend(case),
            "target": self.target,
            "with_state_infection": self.with_state_infection,
            "max_candidates": self.max_candidates,
            "state_samples": self.state_samples,
            "sample_seed": self.sample_seed,
            "search": self.search,
            "tolerance": self.tolerance,
            # The active guardrail thresholds decide when an analysis
            # degrades to ``numerical_unstable``, so a policy change
            # (e.g. via REPRO_NUMERIC_* overrides) must miss the cache
            # rather than serve results produced under different guards.
            "numerics": default_policy().key(),
        }
        blob = json.dumps(key, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()
