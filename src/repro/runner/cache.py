"""On-disk result cache for the sweep engine.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
        results/
            <fp[:2]>/<fingerprint>.json    one cached scenario outcome

Each file is a small JSON envelope ``{"version", "fingerprint",
"outcome"}``.  Fingerprints already cover the case content, the query and
a hash of the package sources (see :mod:`repro.runner.spec`), so cache
invalidation is automatic: any relevant change produces a different key
and the stale file is simply never read again.

Writes are atomic (temp file + ``os.replace``) so concurrent sweeps
sharing a cache directory can never observe torn files; corrupt or
foreign files are treated as misses.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.runner.spec import CACHE_FORMAT_VERSION, code_fingerprint, \
    encoding_fingerprint

DEFAULT_CACHE_DIR = ".repro-cache"

#: bounded-retry policy for degradable cache writes: a transient disk
#: hiccup (NFS blip, momentary ENOSPC while another sweep compacts) gets
#: ``WRITE_RETRIES`` more attempts with exponentially growing, jittered
#: pauses before the write degrades to ``cache_write_error``.
WRITE_RETRIES = 2
WRITE_BACKOFF_SECONDS = 0.05


class ResultCache:
    """JSON file cache keyed by scenario fingerprint."""

    def __init__(self, root=DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def _path(self, fingerprint: str) -> Path:
        return self.root / "results" / fingerprint[:2] / \
            f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached outcome dict, or None on any kind of miss."""
        path = self._path(fingerprint)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(envelope, dict) \
                or envelope.get("version") != CACHE_FORMAT_VERSION \
                or envelope.get("fingerprint") != fingerprint:
            return None
        outcome = envelope.get("outcome")
        return outcome if isinstance(outcome, dict) else None

    def put(self, fingerprint: str, outcome: Dict[str, Any]) -> None:
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The code/encoding fingerprints are *prunability* metadata, not
        # lookup keys: the fingerprint key already embeds them, so stale
        # entries are simply unreachable — but only these fields let
        # ``prune()`` tell a dead version's entry from a live one.
        envelope = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "code": code_fingerprint(),
            "encoding": encoding_fingerprint(),
            "outcome": outcome,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def try_put(self, fingerprint: str, outcome: Dict[str, Any],
                retries: int = WRITE_RETRIES,
                backoff_seconds: float = WRITE_BACKOFF_SECONDS,
                sleep: Callable[[float], None] = time.sleep
                ) -> Optional[str]:
        """Like :meth:`put` but degrades I/O failure to an error string.

        The sweep engine and the analysis-service workers checkpoint
        every finished outcome through this: a full disk or permission
        problem must not abort a long sweep, only cost it the checkpoint
        (reported per-outcome in the trace).  Transient failures get
        ``retries`` further attempts first, spaced by exponential backoff
        with deterministic jitter (seeded from the fingerprint, so runs
        are reproducible); only then does the write degrade.
        """
        jitter = random.Random(fingerprint or None)
        last: Optional[OSError] = None
        for attempt in range(retries + 1):
            try:
                self.put(fingerprint, outcome)
                return None
            except OSError as exc:
                last = exc
                if attempt < retries:
                    delay = backoff_seconds * (2 ** attempt)
                    sleep(delay * (0.5 + jitter.random()))
        return f"{type(last).__name__}: {last}"

    def prune(self) -> Dict[str, int]:
        """Drop entries no current fingerprint can ever reference.

        Long-lived fleets sharing one ``.repro-cache`` accumulate dead
        versions: every code or format change rewrites the fingerprint
        keys, stranding the old files forever.  An entry is stale when
        its envelope pins a different cache-format version, a different
        ``repro`` code fingerprint or a different encoding fingerprint
        than the running install — or when it is unreadable/foreign.
        Entries written before the fingerprints joined the envelope are
        stale by construction (their keys embed an older code hash).

        Returns ``{"scanned", "removed", "kept", "reclaimed_bytes"}``.
        Concurrently-vanishing files are skipped, so live sweeps sharing
        the cache are safe.
        """
        results = self.root / "results"
        stats = {"scanned": 0, "removed": 0, "kept": 0,
                 "reclaimed_bytes": 0}
        if not results.is_dir():
            return stats
        code = code_fingerprint()
        encoding = encoding_fingerprint()
        for path in sorted(results.rglob("*.json")):
            stats["scanned"] += 1
            stale = False
            try:
                size = path.stat().st_size
                with open(path) as handle:
                    envelope = json.load(handle)
            except OSError:
                continue                    # vanished mid-scan: skip
            except json.JSONDecodeError:
                stale = True                # unreadable: reclaim
                envelope = {}
            if not stale:
                stale = not isinstance(envelope, dict) \
                    or envelope.get("version") != CACHE_FORMAT_VERSION \
                    or envelope.get("code") != code \
                    or envelope.get("encoding") != encoding
            if not stale:
                stats["kept"] += 1
                continue
            try:
                path.unlink()
            except OSError:
                continue
            stats["removed"] += 1
            stats["reclaimed_bytes"] += size
        return stats

    def clear(self) -> int:
        """Remove all cached results; returns the number removed."""
        results = self.root / "results"
        removed = 0
        if not results.is_dir():
            return 0
        for path in results.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
