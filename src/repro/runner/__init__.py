"""Parallel scenario-sweep engine with result caching and tracing.

* :mod:`repro.runner.spec` — declarative :class:`ScenarioSpec` with
  deterministic fingerprinting (case content + query + code version),
* :mod:`repro.runner.engine` — :class:`SweepEngine`: process-pool
  fan-out with per-task timeouts, crash retry and serial fallback,
* :mod:`repro.runner.cache` — the on-disk JSON result cache under
  ``.repro-cache/``,
* :mod:`repro.runner.trace` — per-scenario and per-sweep trace records
  (SMT statistics, OPF timings, cache hits).
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.engine import SweepConfig, SweepEngine, execute_scenario
from repro.runner.spec import ScenarioSpec, code_fingerprint
from repro.runner.trace import ScenarioOutcome, SweepTrace

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SweepConfig",
    "SweepEngine",
    "SweepTrace",
    "code_fingerprint",
    "execute_scenario",
]
