"""The parallel scenario-sweep engine.

The paper's evaluation grids — (case × target-% × attacker-scenario)
cells, each an independent impact analysis — are embarrassingly parallel,
so :class:`SweepEngine` fans :class:`~repro.runner.spec.ScenarioSpec`
tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* scenarios that share an *encoding group* (same resolved case, analyzer
  kind and state-infection flag — a Fig. 4-style threshold sweep) are
  batched into warm units: one worker builds one
  :class:`~repro.core.encoding.AttackModelEncoding` and re-solves each
  threshold incrementally inside solver ``push()``/``pop()`` scopes,
  paying ``encode_seconds`` once instead of per scenario.  Groups are
  split so batching never drops below ``workers``-way parallelism, and
  verdicts are unchanged (SAT witness *vectors* may differ — any model
  is valid, and certified mode re-checks each independently);
* results are served from the on-disk :class:`~repro.runner.cache.
  ResultCache` when the (case, query, code) fingerprint matches a prior
  run, so repeated sweeps and benchmark reruns short-circuit;
* each finished ``ok`` outcome is checkpointed to the cache *as it
  completes*, so a killed or interrupted sweep resumes from where it
  left off instead of recomputing;
* each task has an optional wall-clock budget (``task_timeout``) that is
  shipped into the worker as an in-solver
  :class:`~repro.smt.budget.SolverBudget` deadline: a solver-bound task
  comes back as ``unknown`` with partial statistics.  The pool-level
  ``timeout`` verdict remains as a backstop for tasks stuck outside the
  solvers; when it fires, pending tasks are migrated to a fresh pool so
  hung workers cannot starve the rest of the sweep;
* a worker-process crash (OOM kill, segfault in a native library) breaks
  the pool — the engine rebuilds it and retries the affected scenarios up
  to ``retries`` times; a unit whose budget runs out gets one *isolated*
  dispatch (own single-worker pool) before being recorded as ``crashed``,
  because a shared-pool breakage fails every in-flight future and the
  victim may never have crashed itself;
* when process pools are unavailable (restricted environments) or
  ``workers <= 1``, the engine degrades gracefully to in-process serial
  execution with identical results (including budget enforcement — the
  in-solver deadline works the same in-process).

Execution is deterministic per scenario, so parallel and serial runs are
interchangeable; only wall-clock differs.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from fractions import Fraction

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.exceptions import BudgetExhausted, CaseFieldError, \
    InputFormatError, NumericalInstability
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import (
    CERTIFICATE_ERROR,
    CRASHED,
    ERROR,
    INVALID_INPUT,
    NUMERICAL_UNSTABLE,
    OK,
    REJECTED_STATUSES,
    TIMEOUT,
    UNKNOWN,
    ScenarioOutcome,
    SweepTrace,
)
from repro.search import DEFAULT_TOLERANCE, MaxImpactResult, \
    MaxImpactSearch
from repro.smt.budget import SolverBudget
from repro.smt.certificates import self_check_default
from repro.validation import FATAL, ValidationReport, validate_case


class GroupInterrupted(BaseException):
    """A warm unit was interrupted (SIGINT/SIGTERM) mid-run.

    Carries the outcomes completed *before* the interrupt so the engine
    can checkpoint them to the cache before re-raising
    :class:`KeyboardInterrupt` — a supervised sweep stays resumable at
    per-cell granularity even when cells are batched into warm units.
    Derives from ``BaseException`` so generic worker error handling
    cannot swallow it.
    """

    def __init__(self, outcomes: Sequence) -> None:
        super().__init__(f"{len(outcomes)} outcome(s) salvaged")
        self.outcomes = list(outcomes)


def parse_failure_report(subject: str,
                         exc: Exception) -> ValidationReport:
    """A one-finding report for a case text that failed to parse."""
    report = ValidationReport(subject=subject)
    components = [f"field:{exc.path}"] \
        if isinstance(exc, CaseFieldError) else []
    report.add("parse.malformed", FATAL, str(exc), components,
               hint="fix the case text at the reported field path"
               if components else "the case text does not follow the "
               "paper's input format")
    return report


def _rejected_outcome(spec: ScenarioSpec, fingerprint: str,
                      report: ValidationReport) -> ScenarioOutcome:
    """An outcome for an input preflight (or the parser) refused."""
    fatal = [d.code for d in report.fatal]
    return ScenarioOutcome(
        spec=spec, fingerprint=fingerprint,
        status=report.fatal_status() or INVALID_INPUT,
        error="; ".join(fatal),
        diagnostics=report.to_dict())


@dataclass
class SweepConfig:
    """Engine knobs."""

    workers: int = 4
    #: per-task wall-clock budget in seconds (None: unlimited).  Enforced
    #: cooperatively inside the solvers in *both* modes (tasks come back
    #: ``unknown`` with partial statistics); parallel mode additionally
    #: keeps the pool-level wait as a backstop for hung workers.
    task_timeout: Optional[float] = None
    #: how many times a scenario is resubmitted after its worker crashed.
    retries: int = 1
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    use_cache: bool = True
    #: extra per-task resource limits (conflicts/decisions/pivots/wall);
    #: every task gets a *fresh* budget built from these limits, with
    #: ``task_timeout`` folded in as a wall-clock bound.
    budget: Optional[SolverBudget] = None
    #: certified mode for every scenario: each analyzer answer is checked
    #: against an independent certificate before it is reported, and
    #: cache hits must additionally carry ``certified=True`` to be
    #: served.  None (the default) defers to ``REPRO_SELF_CHECK`` —
    #: resolved inside each worker, so the environment variable works in
    #: parallel mode too.
    self_check: Optional[bool] = None


def _outcome_from_report(outcome: ScenarioOutcome, report,
                         started: float) -> ScenarioOutcome:
    """Fill a scenario outcome from a finished analyzer report.

    The one place the :class:`~repro.core.results.ImpactReport` statuses
    map onto sweep statuses — shared by the cold per-scenario path and
    the warm group runner.
    """
    if report.status == "budget_exhausted":
        outcome.status = UNKNOWN
        outcome.error = report.budget_reason or "resource budget exhausted"
    elif report.status == "certificate_error":
        # The verdict failed its independent check: never record it as
        # sat/unsat.
        outcome.status = CERTIFICATE_ERROR
        outcome.error = report.certificate_error or "certificate rejected"
    elif report.status == "numerical_unstable":
        # The guarded linear algebra refused to return an unverified
        # result: a deterministic degradation, never a sat/unsat.
        outcome.status = NUMERICAL_UNSTABLE
        outcome.error = report.numeric_reason or "numerically unstable"
    elif report.is_rejected:
        # Preflight refused the input: a deterministic verdict with the
        # findings attached, not an error.
        outcome.status = report.status
        outcome.error = "; ".join(
            d.code for d in report.diagnostics.fatal)
    outcome.certified = report.certified
    if report.diagnostics is not None:
        outcome.diagnostics = report.diagnostics.to_dict()
    outcome.satisfiable = report.satisfiable
    outcome.base_cost = str(report.base_cost)
    outcome.threshold = str(report.threshold)
    if report.believed_min_cost is not None:
        outcome.believed_min_cost = str(report.believed_min_cost)
    if report.achieved_increase_percent is not None:
        outcome.achieved_increase_percent = float(
            report.achieved_increase_percent)
    outcome.candidates_examined = report.candidates_examined
    outcome.solver_calls = report.solver_calls
    outcome.analysis_seconds = report.elapsed_seconds
    if report.trace is not None:
        outcome.trace = report.trace.to_dict()
    outcome.task_seconds = time.perf_counter() - started
    return outcome


def _query_attrs(spec: ScenarioSpec, kind: str,
                 budget: Optional[SolverBudget],
                 self_check: Optional[bool]) -> Dict[str, Any]:
    """A spec's per-query fields, minus the target percentage."""
    attrs: Dict[str, Any] = {
        "with_state_infection": spec.with_state_infection,
        "budget": budget,
        "self_check": self_check,
    }
    if kind == "smt":
        attrs["max_candidates"] = spec.max_candidates
    else:
        attrs["state_samples"] = spec.state_samples
        attrs["seed"] = spec.sample_seed
    return attrs


def _analysis_query(spec: ScenarioSpec, kind: str,
                    budget: Optional[SolverBudget],
                    self_check: Optional[bool]):
    """The analyzer query a spec's parameters describe."""
    attrs = _query_attrs(spec, kind, budget, self_check)
    if kind == "smt":
        return ImpactQuery(
            target_increase_percent=spec.target_fraction(), **attrs)
    return FastQuery(
        target_increase_percent=spec.target_fraction(), **attrs)


def _run_max_impact(spec: ScenarioSpec, kind: str, analyzer,
                    budget: Optional[SolverBudget],
                    self_check: Optional[bool]) -> MaxImpactResult:
    """Bisect the spec's case to I* on the given (warm or cold) analyzer."""
    search = MaxImpactSearch(
        analyzer,
        tolerance=spec.tolerance_fraction() or DEFAULT_TOLERANCE,
        lo=spec.target_fraction() or Fraction(0))
    return search.run(**_query_attrs(spec, kind, budget, self_check))


def _outcome_from_max_result(outcome: ScenarioOutcome,
                             result: MaxImpactResult,
                             started: float) -> ScenarioOutcome:
    """Fill a scenario outcome from a finished maximize search.

    Verdict fields mirror the decision path's shape — ``threshold`` and
    ``believed_min_cost`` describe the *witness at I\\** — so downstream
    consumers (cache verification, trace totals, renderers) keep their
    arithmetic; the search-specific bracket lives in ``max_impact``.
    """
    source = result.witness_report or result.last_report
    if result.status == "budget_exhausted":
        outcome.status = UNKNOWN
        outcome.error = result.budget_reason or "resource budget exhausted"
    elif result.status == "certificate_error":
        outcome.status = CERTIFICATE_ERROR
        outcome.error = result.certificate_error or "certificate rejected"
    elif result.status == "numerical_unstable":
        outcome.status = NUMERICAL_UNSTABLE
        reason = result.last_report.numeric_reason \
            if result.last_report is not None else None
        outcome.error = reason or "numerically unstable analysis"
    elif result.is_rejected:
        outcome.status = result.status
        if result.diagnostics is not None:
            outcome.error = "; ".join(
                d.code for d in result.diagnostics.fatal)
    if not result.is_rejected:
        # Partial brackets are worth keeping on unknown/cert-error
        # outcomes too (they are never cached).
        outcome.max_impact = result.to_dict()
    outcome.certified = result.certified
    if result.diagnostics is not None:
        outcome.diagnostics = result.diagnostics.to_dict()
    outcome.satisfiable = result.satisfiable
    if not result.is_rejected:
        outcome.base_cost = str(result.base_cost)
        bound = result.lower_bound if result.satisfiable \
            else result.upper_bound
        if bound is not None:
            outcome.threshold = str(
                result.base_cost * (1 + bound / 100))
    if result.witness_cost is not None:
        outcome.believed_min_cost = str(result.witness_cost)
    if result.witness_report is not None and \
            result.witness_report.achieved_increase_percent is not None:
        outcome.achieved_increase_percent = float(
            result.witness_report.achieved_increase_percent)
    outcome.candidates_examined = result.candidates_examined
    outcome.solver_calls = result.solver_calls
    outcome.analysis_seconds = result.elapsed_seconds
    if source is not None and source.trace is not None:
        trace = source.trace.to_dict()
        trace.setdefault("session", {})["search"] = {
            "mode": "maximize",
            "status": result.status,
            "solve_at_calls": result.solve_at_calls,
            "solver_calls": result.solver_calls,
            "encodings_built": result.encodings_built,
            "warm_solves": result.warm_solves,
            "lower_bound": None if result.lower_bound is None
            else str(result.lower_bound),
            "upper_bound": None if result.upper_bound is None
            else str(result.upper_bound),
            "tolerance": str(result.tolerance),
        }
        outcome.trace = trace
    outcome.task_seconds = time.perf_counter() - started
    return outcome


def plan_units(specs: Sequence[ScenarioSpec], pending: Sequence[int],
               chunks: int = 1,
               max_cells: Optional[int] = None) -> List[List[int]]:
    """Group pending scenario indices into warm execution units.

    Scenarios with equal :meth:`ScenarioSpec.encoding_group` keys (same
    resolved case, analyzer kind and state-infection flag) are batched so
    one warm analyzer serves them all.  Each group is split into at most
    ``chunks`` pieces (the sweep engine passes its worker count so
    grouping never *reduces* parallelism), and ``max_cells`` additionally
    caps the unit size — the distributed fabric uses that to keep lease
    durations bounded.  Shared by :class:`SweepEngine` and the fabric
    coordinator so both plan byte-identical units for one grid.
    """
    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    for idx in pending:
        try:
            key = specs[idx].encoding_group()
        except Exception:
            # An unresolvable spec cannot be grouped; run it alone so
            # its error surfaces through the legacy path.
            key = f"solo:{idx}"
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(idx)
    units: List[List[int]] = []
    for key in order:
        members = groups[key]
        pieces = max(1, min(max(1, chunks), len(members)))
        size = -(-len(members) // pieces)   # ceil division
        if max_cells is not None:
            size = max(1, min(size, max_cells))
        for start in range(0, len(members), size):
            units.append(members[start:start + size])
    return units


def build_analyzer(case, kind: str, warm: bool = False,
                   backend: Optional[str] = None):
    """The analyzer a resolved case runs on (warm = incremental SMT).

    ``backend`` picks the fast analyzer's linear-algebra path; the SMT
    analyzer works in exact rationals and ignores it.
    """
    if kind == "smt":
        return ImpactAnalyzer(case, incremental=warm)
    return FastImpactAnalyzer(case, backend=backend)


def execute_with_analyzer(spec: ScenarioSpec, fingerprint: str,
                          analyzer, kind: str,
                          budget: Optional[SolverBudget] = None,
                          self_check: Optional[bool] = None,
                          started: Optional[float] = None,
                          outcome: Optional[ScenarioOutcome] = None
                          ) -> ScenarioOutcome:
    """Run one scenario on an already-built (possibly warm) analyzer.

    The shared execution core behind the cold per-scenario path, the
    warm group runner and the analysis-service workers: runs the spec's
    decision or maximize query, maps analyzer statuses onto sweep
    statuses, and converts stray :class:`BudgetExhausted`/exceptions
    into ``unknown``/``error`` outcomes instead of letting them escape.
    """
    if started is None:
        started = time.perf_counter()
    if outcome is None:
        outcome = ScenarioOutcome(spec=spec, fingerprint=fingerprint,
                                  worker_pid=os.getpid())
    try:
        if budget is not None:
            budget.start()
        if spec.search == "maximize":
            result = _run_max_impact(spec, kind, analyzer, budget,
                                     self_check)
            return _outcome_from_max_result(outcome, result, started)
        report = analyzer.analyze(
            _analysis_query(spec, kind, budget, self_check))
    except BudgetExhausted as exc:
        # The analyzers convert in-loop exhaustion into partial reports;
        # this catches exhaustion outside those loops (e.g. the base OPF
        # during analyzer construction).
        outcome.status = UNKNOWN
        outcome.error = exc.reason
        outcome.task_seconds = time.perf_counter() - started
        return outcome
    except NumericalInstability as exc:
        # The session converts in-run instability into degraded reports;
        # this catches refusals outside analyze() (e.g. warm analyzer
        # machinery between scenarios).
        outcome.status = NUMERICAL_UNSTABLE
        outcome.error = exc.reason
        outcome.task_seconds = time.perf_counter() - started
        return outcome
    except Exception as exc:
        outcome.status = ERROR
        outcome.error = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        outcome.task_seconds = time.perf_counter() - started
        return outcome

    return _outcome_from_report(outcome, report, started)


def execute_scenario(spec: ScenarioSpec, fingerprint: str = "",
                     budget: Optional[SolverBudget] = None,
                     self_check: Optional[bool] = None
                     ) -> ScenarioOutcome:
    """Run one scenario in-process and record its outcome + trace."""
    started = time.perf_counter()
    outcome = ScenarioOutcome(spec=spec, fingerprint=fingerprint,
                              worker_pid=os.getpid())
    try:
        if budget is not None:
            budget.start()   # the deadline covers case build + analysis
        try:
            case = spec.resolve_case()
        except InputFormatError as exc:
            # A deterministic verdict about the input, not a runtime
            # failure: reject with a structured diagnostic.
            rejected = _rejected_outcome(
                spec, fingerprint, parse_failure_report(spec.case, exc))
            rejected.worker_pid = os.getpid()
            rejected.task_seconds = time.perf_counter() - started
            return rejected
        kind = spec.resolved_analyzer(case)
        # Maximize mode re-solves the same encoding at many thresholds,
        # so warm incremental mode pays off even within one scenario;
        # decision mode keeps the cold single-shot path (bit-identical
        # witnesses).
        analyzer = build_analyzer(case, kind,
                                  warm=spec.search == "maximize",
                                  backend=spec.resolved_backend(case))
    except BudgetExhausted as exc:
        outcome.status = UNKNOWN
        outcome.error = exc.reason
        outcome.task_seconds = time.perf_counter() - started
        return outcome
    except NumericalInstability as exc:
        outcome.status = NUMERICAL_UNSTABLE
        outcome.error = exc.reason
        outcome.task_seconds = time.perf_counter() - started
        return outcome
    except Exception as exc:
        outcome.status = ERROR
        outcome.error = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        outcome.task_seconds = time.perf_counter() - started
        return outcome

    return execute_with_analyzer(spec, fingerprint, analyzer, kind,
                                 budget, self_check, started=started,
                                 outcome=outcome)


def execute_scenario_group(specs: Sequence[ScenarioSpec],
                           fingerprints: Sequence[str],
                           budget_limits: Optional[Dict[str, Any]] = None,
                           self_check: Optional[bool] = None
                           ) -> List[ScenarioOutcome]:
    """Run scenarios sharing one encoding group through a warm analyzer.

    All specs must have equal :meth:`ScenarioSpec.encoding_group` keys —
    same resolved case, analyzer kind and state-infection flag, varying
    only per-query parameters (the target threshold, candidate caps,
    sampling seeds).  One analyzer is built for the whole group: the SMT
    strategy in incremental mode re-solves each threshold inside a
    solver ``push()``/``pop()`` scope of one
    :class:`~repro.core.encoding.AttackModelEncoding`; the fast
    strategy's PTDF factorization is per-case anyway.  Each scenario
    still gets a *fresh* budget built from ``budget_limits`` and its
    own outcome with per-scenario timings.

    Verdicts are deterministic either way; SAT *witness vectors* may
    depend on the warm solver's accumulated learned clauses (any model
    is valid, and certified mode re-checks each one independently).
    """
    outcomes: List[ScenarioOutcome] = []
    analyzer = None
    for spec, fingerprint in zip(specs, fingerprints):
        started = time.perf_counter()
        budget = SolverBudget.from_dict(budget_limits) \
            if budget_limits else None
        outcome = ScenarioOutcome(spec=spec, fingerprint=fingerprint,
                                  worker_pid=os.getpid())
        try:
            if budget is not None:
                budget.start()
            try:
                case = spec.resolve_case()
            except InputFormatError as exc:
                rejected = _rejected_outcome(
                    spec, fingerprint,
                    parse_failure_report(spec.case, exc))
                rejected.worker_pid = os.getpid()
                rejected.task_seconds = time.perf_counter() - started
                outcomes.append(rejected)
                continue
            kind = spec.resolved_analyzer(case)
            if analyzer is None:
                analyzer = build_analyzer(
                    case, kind, warm=True,
                    backend=spec.resolved_backend(case))
        except KeyboardInterrupt:
            # A SIGINT/SIGTERM mid-unit: hand the completed outcomes
            # back so the engine checkpoints them before re-raising —
            # per-cell resumability must not depend on unit boundaries.
            raise GroupInterrupted(outcomes)
        except BudgetExhausted as exc:
            outcome.status = UNKNOWN
            outcome.error = exc.reason
            outcome.task_seconds = time.perf_counter() - started
            outcomes.append(outcome)
            continue
        except NumericalInstability as exc:
            outcome.status = NUMERICAL_UNSTABLE
            outcome.error = exc.reason
            outcome.task_seconds = time.perf_counter() - started
            outcomes.append(outcome)
            continue
        except Exception as exc:
            outcome.status = ERROR
            outcome.error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
            outcome.task_seconds = time.perf_counter() - started
            outcomes.append(outcome)
            # The warm solver state may be mid-scope after an arbitrary
            # failure; rebuild for the remaining scenarios.
            analyzer = None
            continue
        try:
            finished = execute_with_analyzer(
                spec, fingerprint, analyzer, kind, budget, self_check,
                started=started, outcome=outcome)
        except KeyboardInterrupt:
            raise GroupInterrupted(outcomes)
        outcomes.append(finished)
        if finished.status == ERROR:
            analyzer = None
    return outcomes


def _worker_entry(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (picklable) process-pool entry point."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    budget_spec = payload.get("budget")
    budget = SolverBudget.from_dict(budget_spec) if budget_spec else None
    return execute_scenario(spec, payload["fingerprint"], budget,
                            self_check=payload.get("self_check")).to_dict()


def _group_worker_entry(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Top-level (picklable) pool entry point for a warm scenario group."""
    specs = [ScenarioSpec.from_dict(s) for s in payload["specs"]]
    outcomes = execute_scenario_group(
        specs, payload["fingerprints"], payload.get("budget"),
        self_check=payload.get("self_check"))
    return [outcome.to_dict() for outcome in outcomes]


def _verify_cached_max_impact(outcome: ScenarioOutcome,
                              spec: ScenarioSpec, base: Fraction,
                              threshold: Fraction) -> None:
    """Semantic re-verification of a cached maximize outcome.

    The bracket must parse, respect the spec's anchor and tolerance, and
    agree with the verdict fields mirrored onto the outcome; any
    inconsistency raises :class:`ValueError` (a cache miss upstream).
    """
    payload = outcome.max_impact
    if not isinstance(payload, dict):
        raise ValueError(
            "cached maximize outcome has no max_impact payload")
    status = payload.get("status")
    if status not in ("complete", "capped"):
        raise ValueError(
            f"cached maximize outcome has non-definitive search "
            f"status {status!r}")
    try:
        tolerance = Fraction(payload["tolerance"])
        lower = None if payload.get("lower_bound") is None \
            else Fraction(payload["lower_bound"])
        upper = None if payload.get("upper_bound") is None \
            else Fraction(payload["upper_bound"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"cached max_impact bounds unparsable: {exc}")
    if tolerance != (spec.tolerance_fraction() or DEFAULT_TOLERANCE):
        raise ValueError(
            "cached max_impact tolerance disagrees with the spec")
    anchor = spec.target_fraction() or Fraction(0)
    if bool(outcome.satisfiable) != (lower is not None):
        raise ValueError(
            "cached maximize verdict disagrees with its bounds")
    if lower is not None:
        if lower < anchor:
            raise ValueError(
                "cached max_impact lower bound is below the spec anchor")
        if threshold != base * (1 + lower / 100):
            raise ValueError(
                "cached maximize threshold is inconsistent with I*")
        if outcome.believed_min_cost is None:
            raise ValueError("cached sat maximize outcome has no "
                             "believed cost")
        try:
            believed = Fraction(outcome.believed_min_cost)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cached believed cost is unparsable: {exc}")
        if float(believed) < float(threshold) * (1 - 1e-6) - 1e-9:
            raise ValueError(
                "cached maximize witness cost is below its threshold")
        if outcome.achieved_increase_percent is not None:
            expected = float((believed / base - 1) * 100)
            if abs(outcome.achieved_increase_percent - expected) > 1e-6:
                raise ValueError(
                    "cached achieved-increase disagrees with its costs")
        if status == "complete" and (upper is None
                                     or upper - lower > tolerance):
            raise ValueError(
                "cached complete maximize bracket is wider than its "
                "tolerance")
        if status == "capped" and upper is not None:
            raise ValueError(
                "cached capped maximize outcome carries an upper bound")
    else:
        if status != "complete" or upper is None or upper != anchor:
            raise ValueError(
                "cached unsat maximize outcome must close the bracket "
                "at its anchor")
        if threshold != base * (1 + upper / 100):
            raise ValueError(
                "cached maximize threshold is inconsistent with the "
                "anchor bound")
        if outcome.believed_min_cost is not None:
            raise ValueError(
                "cached unsat maximize outcome carries a believed cost")


def verify_cached_outcome(outcome: ScenarioOutcome, spec: ScenarioSpec,
                          require_certified: bool = False) -> None:
    """Re-verify a cache-served outcome before trusting it.

    Structural validation (:meth:`ScenarioOutcome.from_dict`) already ran;
    this checks the *semantics*: the recorded numbers must be internally
    consistent with the spec's query, and in certified mode the outcome
    must have been produced with its certificates verified.  Raises
    :class:`ValueError` on any inconsistency — the engine treats that as
    a cache miss and recomputes.
    """
    if outcome.status in REJECTED_STATUSES:
        # Structural validation already guaranteed fatal diagnostics
        # matching the status; re-run preflight on the resolved case so a
        # stale rejection (case since repaired, or aliased) is recomputed
        # instead of served.  Preflight involves no solver answers, so
        # certified sweeps may serve rejections too.
        try:
            case = spec.resolve_case()
        except InputFormatError:
            raise ValueError(
                "cached rejection is for a case that no longer parses")
        report = validate_case(case, observability=False)
        if report.fatal_status() != outcome.status:
            raise ValueError(
                f"cached {outcome.status} rejection no longer matches "
                f"preflight (now {report.fatal_status()!r})")
        return
    if outcome.status == NUMERICAL_UNSTABLE:
        # Deterministic for a given case and numerics policy — and the
        # active policy is part of the fingerprint, so a threshold change
        # misses the cache instead of serving a stale refusal.  The
        # numeric reason is guaranteed by structural validation; costs
        # may legitimately be absent or zero (the guard can refuse
        # before the base OPF exists).  No solver answer is involved, so
        # certified sweeps may serve these like rejections.
        if outcome.satisfiable is True:
            raise ValueError(
                "cached numerical_unstable outcome claims a verdict")
        return
    if outcome.status != OK:
        raise ValueError(
            f"cached outcome has non-definitive status {outcome.status!r}")
    if outcome.satisfiable is None:
        raise ValueError("cached ok outcome has no verdict")
    try:
        base = Fraction(outcome.base_cost)
        threshold = Fraction(outcome.threshold)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"cached outcome has unparsable costs: {exc}")
    if base <= 0:
        raise ValueError(f"cached base cost {base} is not positive")
    if spec.search == "maximize":
        _verify_cached_max_impact(outcome, spec, base, threshold)
        if require_certified and outcome.certified is not True:
            raise ValueError(
                "certified sweep: cached outcome was not produced with "
                "certificates verified")
        return
    target = spec.target_fraction()
    if target is not None and threshold != base * (1 + target / 100):
        raise ValueError(
            "cached threshold is inconsistent with the spec's target")
    if outcome.satisfiable:
        if outcome.believed_min_cost is None:
            raise ValueError("cached sat outcome has no believed cost")
        try:
            believed = Fraction(outcome.believed_min_cost)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cached believed cost is unparsable: {exc}")
        # The fast analyzer's believed cost travels through floats, so
        # allow the same relative slack its certification uses.
        if float(believed) < float(threshold) * (1 - 1e-6) - 1e-9:
            raise ValueError(
                "cached sat outcome's believed cost is below threshold")
        if outcome.achieved_increase_percent is not None:
            expected = float((believed / base - 1) * 100)
            if abs(outcome.achieved_increase_percent - expected) > 1e-6:
                raise ValueError(
                    "cached achieved-increase disagrees with its costs")
    elif outcome.believed_min_cost is not None:
        # Definitive unsat outcomes carry no believed cost (partial ones
        # do, but those are never cached): a leftover cost means the
        # verdict was rewritten in place.
        raise ValueError("cached unsat outcome carries a believed cost")
    if require_certified and outcome.certified is not True:
        raise ValueError(
            "certified sweep: cached outcome was not produced with "
            "certificates verified")


class SweepEngine:
    """Runs scenario grids with caching, parallelism and retry."""

    def __init__(self, config: Optional[SweepConfig] = None,
                 task: Optional[Callable[[Dict[str, Any]],
                                         Dict[str, Any]]] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.config = config or SweepConfig()
        #: injectable for tests (e.g. a crashing task); must be a
        #: module-level callable so worker processes can unpickle it.
        self._task = task or _worker_entry
        #: injectable for tests (e.g. a cache whose writes fail).
        self._cache = cache

    # -- public API -----------------------------------------------------

    def run(self, specs: Sequence[ScenarioSpec]) -> SweepTrace:
        started = time.perf_counter()
        config = self.config
        if self._cache is not None:
            cache = self._cache if config.use_cache else None
        else:
            cache = ResultCache(config.cache_dir) \
                if config.use_cache and config.cache_dir else None

        # Fingerprinting resolves the case; a spec that cannot resolve
        # (unknown name, unparsable text) is recorded as an error outcome
        # rather than aborting the whole sweep.
        fingerprints: List[str] = []
        outcomes: List[Optional[ScenarioOutcome]] = [None] * len(specs)
        for idx, spec in enumerate(specs):
            try:
                fingerprints.append(spec.fingerprint())
            except InputFormatError as exc:
                # The case text does not parse: a deterministic verdict
                # about the input (no fingerprint, so never cached).
                fingerprints.append("")
                outcomes[idx] = _rejected_outcome(
                    spec, "", parse_failure_report(spec.case, exc))
            except Exception as exc:
                fingerprints.append("")
                outcomes[idx] = ScenarioOutcome(
                    spec=spec, fingerprint="", status=ERROR,
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip())
        certify = self_check_default(config.self_check)
        cache_rejected = 0
        pending: List[int] = []
        for idx, fingerprint in enumerate(fingerprints):
            if outcomes[idx] is not None:
                continue
            hit = cache.get(fingerprint) if cache else None
            if hit is None:
                pending.append(idx)
                continue
            try:
                outcome = ScenarioOutcome.from_dict(hit)
                verify_cached_outcome(outcome, specs[idx],
                                      require_certified=certify)
            except ValueError:
                # Malformed, stale or semantically inconsistent cached
                # payload: a miss — recompute (and overwrite the bad
                # entry on completion).
                cache_rejected += 1
                pending.append(idx)
                continue
            outcome.cache_hit = True
            outcomes[idx] = outcome

        mode = "serial"
        if pending:
            units = self._plan_units(specs, pending)
            if config.workers > 1 and len(units) > 1:
                if self._run_parallel(specs, fingerprints, units,
                                      outcomes, cache):
                    mode = "parallel"
                # else: _run_parallel already fell back to serial
            else:
                self._run_serial(specs, fingerprints, units, outcomes,
                                 cache)

        return SweepTrace(
            outcomes=[o for o in outcomes if o is not None],
            wall_seconds=time.perf_counter() - started,
            workers=config.workers if mode == "parallel" else 1,
            mode=mode,
            cache_dir=str(cache.root) if cache else None,
            cache_rejected=cache_rejected)

    # -- unit planning ----------------------------------------------------

    def _plan_units(self, specs: Sequence[ScenarioSpec],
                    pending: Sequence[int]) -> List[List[int]]:
        """Execution units for this engine (see :func:`plan_units`).

        Singleton units keep the exact legacy per-scenario protocol, and
        an injected ``task`` (test seams, fault injection) only speaks
        that protocol, so it always gets singleton units.
        """
        if self._task is not _worker_entry:
            return [[idx] for idx in pending]
        return plan_units(specs, pending,
                          chunks=max(1, self.config.workers))

    # -- task plumbing ---------------------------------------------------

    def _task_budget(self) -> Optional[Dict[str, Any]]:
        """Per-task budget limits (a fresh budget is built per task)."""
        config = self.config
        limits = dict(config.budget.to_dict()) \
            if config.budget is not None else {}
        if config.task_timeout is not None:
            wall = limits.get("wall_seconds")
            limits["wall_seconds"] = config.task_timeout if wall is None \
                else min(wall, config.task_timeout)
        return limits or None

    def _task_payload(self, spec: ScenarioSpec,
                      fingerprint: str) -> Dict[str, Any]:
        payload = {"spec": spec.to_dict(), "fingerprint": fingerprint}
        budget = self._task_budget()
        if budget is not None:
            payload["budget"] = budget
        if self.config.self_check is not None:
            payload["self_check"] = self.config.self_check
        return payload

    def _group_payload(self, unit: Sequence[int], specs,
                       fingerprints) -> Dict[str, Any]:
        """Like :meth:`_task_payload`, for a multi-scenario warm unit."""
        payload = {
            "specs": [specs[idx].to_dict() for idx in unit],
            "fingerprints": [fingerprints[idx] for idx in unit],
        }
        budget = self._task_budget()
        if budget is not None:
            payload["budget"] = budget
        if self.config.self_check is not None:
            payload["self_check"] = self.config.self_check
        return payload

    def _execute_unit(self, unit: Sequence[int], specs,
                      fingerprints) -> List[Dict[str, Any]]:
        """Run one unit in-process: one outcome payload per index."""
        if len(unit) == 1:
            idx = unit[0]
            return [self._task(self._task_payload(
                specs[idx], fingerprints[idx]))]
        return _group_worker_entry(
            self._group_payload(unit, specs, fingerprints))

    def _pool_wait(self, size: int = 1) -> Optional[float]:
        """Pool-level wait: the in-solver deadline plus grace, so a
        solver-bound task reports ``unknown`` (with statistics) before
        the blunt pool ``timeout`` backstop fires.  A multi-scenario
        warm unit runs its scenarios sequentially, each with its own
        fresh in-solver deadline, so the unit's wait scales with its
        size."""
        timeout = self.config.task_timeout
        if timeout is None:
            return None
        return timeout * 1.25 * max(1, size) + 0.25

    def _record(self, idx: int, outcome: ScenarioOutcome, spec,
                fingerprints, outcomes,
                cache: Optional[ResultCache]) -> None:
        """Commit an outcome and checkpoint it to the cache immediately.

        Definitive ``ok`` outcomes, deterministic preflight rejections
        (``invalid_input``/``degenerate_case``) and numeric refusals
        (``numerical_unstable`` — deterministic for a given case and
        numerics policy, and the policy is part of the fingerprint) are
        cached; budget-dependent (``unknown``/``timeout``) and transient
        failures must recompute next run.  The outcome's spec must equal the
        submitted spec — a worker that analyzed something else (fault
        injection, memory corruption) must not poison the submitted
        spec's cache slot.  A failed write degrades to
        ``cache_write_error``.
        """
        outcomes[idx] = outcome
        cacheable = outcome.status == OK \
            or outcome.status in REJECTED_STATUSES \
            or outcome.status == NUMERICAL_UNSTABLE
        if cache is not None and cacheable and fingerprints[idx] \
                and outcome.spec.to_dict() == spec.to_dict():
            error = cache.try_put(fingerprints[idx], outcome.to_dict())
            if error is not None:
                outcome.cache_write_error = error

    # -- execution strategies -------------------------------------------

    def _parse_unit_payloads(self, unit, payloads, specs,
                             fingerprints) -> List[ScenarioOutcome]:
        """Outcomes of a finished unit; ERROR outcomes on bad payloads."""
        try:
            if len(payloads) != len(unit):
                raise ValueError(
                    f"unit returned {len(payloads)} outcomes for "
                    f"{len(unit)} scenarios")
            return [ScenarioOutcome.from_dict(p) for p in payloads]
        except Exception as exc:
            message = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
            return [ScenarioOutcome(
                spec=specs[idx], fingerprint=fingerprints[idx],
                status=ERROR, error=message) for idx in unit]

    def _run_serial(self, specs, fingerprints, units, outcomes,
                    cache) -> None:
        for unit in units:
            try:
                payloads = self._execute_unit(unit, specs, fingerprints)
                parsed = self._parse_unit_payloads(
                    unit, payloads, specs, fingerprints)
            except GroupInterrupted as exc:
                # Checkpoint what the interrupted warm unit completed,
                # then propagate as the interrupt it is: the sweep stays
                # resumable at per-cell granularity.
                for idx, outcome in zip(unit, exc.outcomes):
                    self._record(idx, outcome, specs[idx], fingerprints,
                                 outcomes, cache)
                raise KeyboardInterrupt from None
            except Exception as exc:
                # KeyboardInterrupt deliberately propagates: completed
                # outcomes are already checkpointed, so an interrupted
                # sweep resumes from the cache.
                message = "".join(traceback.format_exception_only(
                    type(exc), exc)).strip()
                parsed = [ScenarioOutcome(
                    spec=specs[idx], fingerprint=fingerprints[idx],
                    status=ERROR, error=message) for idx in unit]
            for idx, outcome in zip(unit, parsed):
                self._record(idx, outcome, specs[idx], fingerprints,
                             outcomes, cache)

    def _run_parallel(self, specs, fingerprints, units, outcomes,
                      cache) -> bool:
        """Returns False when it had to degrade to serial execution."""
        config = self.config
        attempts = {tuple(unit): 0 for unit in units}
        to_run = [list(unit) for unit in units]
        while to_run:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(config.workers, len(to_run)))
            except (OSError, ValueError, ImportError):
                # No usable multiprocessing primitives here (sandboxes,
                # missing /dev/shm, ...): degrade to serial.
                self._run_serial(specs, fingerprints, to_run, outcomes,
                                 cache)
                return False
            next_round: List[List[int]] = []
            suspects: List[Tuple[List[int], BaseException]] = []
            try:
                futures = {}
                for unit in to_run:
                    key = tuple(unit)
                    attempts[key] += 1
                    if len(unit) == 1:
                        idx = unit[0]
                        futures[key] = pool.submit(
                            self._task, self._task_payload(
                                specs[idx], fingerprints[idx]))
                    else:
                        futures[key] = pool.submit(
                            _group_worker_entry, self._group_payload(
                                unit, specs, fingerprints))
                # Waiting in submission order gives every unit up to
                # the pool wait of dedicated time on top of whatever
                # overlap it had with earlier waits — an approximate but
                # cheap per-task budget.
                timed_out = False
                for unit in to_run:
                    key = tuple(unit)
                    future = futures[key]
                    if timed_out and not future.done():
                        # A timeout poisoned this pool: hung workers
                        # cannot be cancelled, and tasks queued behind
                        # them (already handed to the call queue, so
                        # cancel() fails for them too) would inherit the
                        # dead slots.  Reschedule everything unfinished
                        # on a fresh pool — tasks are deterministic and
                        # workers side-effect-free, so the possible
                        # double execution of a genuinely-running task
                        # is safe.
                        future.cancel()
                        attempts[key] -= 1
                        next_round.append(unit)
                        continue
                    try:
                        payload = future.result(
                            timeout=self._pool_wait(len(unit)))
                    except GroupInterrupted as exc:
                        # A signal reached the worker (e.g. Ctrl-C to
                        # the process group): checkpoint what the unit
                        # completed and surface the interrupt.
                        for idx, outcome in zip(unit, exc.outcomes):
                            self._record(idx, outcome, specs[idx],
                                         fingerprints, outcomes, cache)
                        raise KeyboardInterrupt from None
                    except FuturesTimeoutError:
                        timed_out = True
                        future.cancel()
                        for idx in unit:
                            self._record(idx, ScenarioOutcome(
                                spec=specs[idx],
                                fingerprint=fingerprints[idx],
                                status=TIMEOUT, attempts=attempts[key],
                                error=f"exceeded {config.task_timeout}s "
                                      f"task budget"),
                                specs[idx], fingerprints, outcomes,
                                cache)
                    except BrokenExecutor as exc:
                        if attempts[key] <= config.retries:
                            next_round.append(unit)
                        else:
                            # One worker death fails every in-flight
                            # future of the shared pool, so this unit
                            # may have exhausted its budget as
                            # collateral without ever crashing itself.
                            # Decide with one isolated dispatch below
                            # (own pool: breakage is unambiguous).
                            suspects.append((unit, exc))
                    except Exception as exc:  # pickling and kin
                        message = "".join(
                            traceback.format_exception_only(
                                type(exc), exc)).strip()
                        for idx in unit:
                            self._record(idx, ScenarioOutcome(
                                spec=specs[idx],
                                fingerprint=fingerprints[idx],
                                status=ERROR, attempts=attempts[key],
                                error=message),
                                specs[idx], fingerprints, outcomes,
                                cache)
                    else:
                        payloads = [payload] if len(unit) == 1 \
                            else payload
                        parsed = self._parse_unit_payloads(
                            unit, payloads, specs, fingerprints)
                        for idx, outcome in zip(unit, parsed):
                            outcome.attempts = attempts[key]
                            self._record(idx, outcome, specs[idx],
                                         fingerprints, outcomes, cache)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            for unit, exc in suspects:
                self._isolated_attempt(unit, exc, attempts, specs,
                                       fingerprints, outcomes, cache)
            to_run = next_round
        return True

    def _isolated_attempt(self, unit, exc, attempts, specs,
                          fingerprints, outcomes, cache) -> None:
        """Last-chance dispatch for a unit whose pool broke with its
        retry budget already spent.

        A single worker death fails every in-flight future of the
        shared pool, so a unit can exhaust its budget without ever
        having crashed itself.  Re-running it alone in a fresh
        single-worker pool makes breakage unambiguous: success clears
        the unit, a second breakage convicts it as ``crashed``.
        """
        key = tuple(unit)

        def convict(error: str) -> None:
            for idx in unit:
                self._record(idx, ScenarioOutcome(
                    spec=specs[idx], fingerprint=fingerprints[idx],
                    status=CRASHED, attempts=attempts[key],
                    error=error or "worker process died"),
                    specs[idx], fingerprints, outcomes, cache)

        try:
            pool = ProcessPoolExecutor(max_workers=1)
        except (OSError, ValueError, ImportError):
            # No pool, no safe way to re-run a suspected crasher
            # in-process: keep the conviction.
            convict(str(exc))
            return
        try:
            if len(unit) == 1:
                idx = unit[0]
                future = pool.submit(self._task, self._task_payload(
                    specs[idx], fingerprints[idx]))
            else:
                future = pool.submit(
                    _group_worker_entry,
                    self._group_payload(unit, specs, fingerprints))
            try:
                payload = future.result(
                    timeout=self._pool_wait(len(unit)))
            except GroupInterrupted as interrupted:
                for idx, outcome in zip(unit, interrupted.outcomes):
                    self._record(idx, outcome, specs[idx],
                                 fingerprints, outcomes, cache)
                raise KeyboardInterrupt from None
            except FuturesTimeoutError:
                future.cancel()
                for idx in unit:
                    self._record(idx, ScenarioOutcome(
                        spec=specs[idx],
                        fingerprint=fingerprints[idx],
                        status=TIMEOUT, attempts=attempts[key],
                        error=f"exceeded {self.config.task_timeout}s "
                              f"task budget"),
                        specs[idx], fingerprints, outcomes, cache)
            except BrokenExecutor as broken:
                convict(str(broken))
            except Exception as error:  # pickling and kin
                message = "".join(traceback.format_exception_only(
                    type(error), error)).strip()
                for idx in unit:
                    self._record(idx, ScenarioOutcome(
                        spec=specs[idx],
                        fingerprint=fingerprints[idx],
                        status=ERROR, attempts=attempts[key],
                        error=message),
                        specs[idx], fingerprints, outcomes, cache)
            else:
                payloads = [payload] if len(unit) == 1 else payload
                parsed = self._parse_unit_payloads(
                    unit, payloads, specs, fingerprints)
                for idx, outcome in zip(unit, parsed):
                    outcome.attempts = attempts[key]
                    self._record(idx, outcome, specs[idx],
                                 fingerprints, outcomes, cache)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
