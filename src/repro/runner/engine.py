"""The parallel scenario-sweep engine.

The paper's evaluation grids — (case × target-% × attacker-scenario)
cells, each an independent impact analysis — are embarrassingly parallel,
so :class:`SweepEngine` fans :class:`~repro.runner.spec.ScenarioSpec`
tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* results are served from the on-disk :class:`~repro.runner.cache.
  ResultCache` when the (case, query, code) fingerprint matches a prior
  run, so repeated sweeps and benchmark reruns short-circuit;
* each finished ``ok`` outcome is checkpointed to the cache *as it
  completes*, so a killed or interrupted sweep resumes from where it
  left off instead of recomputing;
* each task has an optional wall-clock budget (``task_timeout``) that is
  shipped into the worker as an in-solver
  :class:`~repro.smt.budget.SolverBudget` deadline: a solver-bound task
  comes back as ``unknown`` with partial statistics.  The pool-level
  ``timeout`` verdict remains as a backstop for tasks stuck outside the
  solvers; when it fires, pending tasks are migrated to a fresh pool so
  hung workers cannot starve the rest of the sweep;
* a worker-process crash (OOM kill, segfault in a native library) breaks
  the pool — the engine rebuilds it and retries the affected scenarios up
  to ``retries`` times before recording them as ``crashed``;
* when process pools are unavailable (restricted environments) or
  ``workers <= 1``, the engine degrades gracefully to in-process serial
  execution with identical results (including budget enforcement — the
  in-solver deadline works the same in-process).

Execution is deterministic per scenario, so parallel and serial runs are
interchangeable; only wall-clock differs.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from fractions import Fraction

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.exceptions import BudgetExhausted, CaseFieldError, \
    InputFormatError
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import (
    CERTIFICATE_ERROR,
    CRASHED,
    ERROR,
    INVALID_INPUT,
    OK,
    REJECTED_STATUSES,
    TIMEOUT,
    UNKNOWN,
    ScenarioOutcome,
    SweepTrace,
)
from repro.smt.budget import SolverBudget
from repro.smt.certificates import self_check_default
from repro.validation import FATAL, ValidationReport, validate_case


def parse_failure_report(subject: str,
                         exc: Exception) -> ValidationReport:
    """A one-finding report for a case text that failed to parse."""
    report = ValidationReport(subject=subject)
    components = [f"field:{exc.path}"] \
        if isinstance(exc, CaseFieldError) else []
    report.add("parse.malformed", FATAL, str(exc), components,
               hint="fix the case text at the reported field path"
               if components else "the case text does not follow the "
               "paper's input format")
    return report


def _rejected_outcome(spec: ScenarioSpec, fingerprint: str,
                      report: ValidationReport) -> ScenarioOutcome:
    """An outcome for an input preflight (or the parser) refused."""
    fatal = [d.code for d in report.fatal]
    return ScenarioOutcome(
        spec=spec, fingerprint=fingerprint,
        status=report.fatal_status() or INVALID_INPUT,
        error="; ".join(fatal),
        diagnostics=report.to_dict())


@dataclass
class SweepConfig:
    """Engine knobs."""

    workers: int = 4
    #: per-task wall-clock budget in seconds (None: unlimited).  Enforced
    #: cooperatively inside the solvers in *both* modes (tasks come back
    #: ``unknown`` with partial statistics); parallel mode additionally
    #: keeps the pool-level wait as a backstop for hung workers.
    task_timeout: Optional[float] = None
    #: how many times a scenario is resubmitted after its worker crashed.
    retries: int = 1
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    use_cache: bool = True
    #: extra per-task resource limits (conflicts/decisions/pivots/wall);
    #: every task gets a *fresh* budget built from these limits, with
    #: ``task_timeout`` folded in as a wall-clock bound.
    budget: Optional[SolverBudget] = None
    #: certified mode for every scenario: each analyzer answer is checked
    #: against an independent certificate before it is reported, and
    #: cache hits must additionally carry ``certified=True`` to be
    #: served.  None (the default) defers to ``REPRO_SELF_CHECK`` —
    #: resolved inside each worker, so the environment variable works in
    #: parallel mode too.
    self_check: Optional[bool] = None


def execute_scenario(spec: ScenarioSpec, fingerprint: str = "",
                     budget: Optional[SolverBudget] = None,
                     self_check: Optional[bool] = None
                     ) -> ScenarioOutcome:
    """Run one scenario in-process and record its outcome + trace."""
    started = time.perf_counter()
    outcome = ScenarioOutcome(spec=spec, fingerprint=fingerprint,
                              worker_pid=os.getpid())
    try:
        if budget is not None:
            budget.start()   # the deadline covers case build + analysis
        try:
            case = spec.resolve_case()
        except InputFormatError as exc:
            # A deterministic verdict about the input, not a runtime
            # failure: reject with a structured diagnostic.
            rejected = _rejected_outcome(
                spec, fingerprint, parse_failure_report(spec.case, exc))
            rejected.worker_pid = os.getpid()
            rejected.task_seconds = time.perf_counter() - started
            return rejected
        kind = spec.resolved_analyzer(case)
        if kind == "smt":
            analyzer = ImpactAnalyzer(case)
            report = analyzer.analyze(ImpactQuery(
                target_increase_percent=spec.target_fraction(),
                with_state_infection=spec.with_state_infection,
                max_candidates=spec.max_candidates,
                budget=budget,
                self_check=self_check))
        else:
            fast = FastImpactAnalyzer(case)
            report = fast.analyze(FastQuery(
                target_increase_percent=spec.target_fraction(),
                with_state_infection=spec.with_state_infection,
                state_samples=spec.state_samples,
                seed=spec.sample_seed,
                budget=budget,
                self_check=self_check))
    except BudgetExhausted as exc:
        # The analyzers convert in-loop exhaustion into partial reports;
        # this catches exhaustion outside those loops (e.g. the base OPF
        # during analyzer construction).
        outcome.status = UNKNOWN
        outcome.error = exc.reason
        outcome.task_seconds = time.perf_counter() - started
        return outcome
    except Exception as exc:
        outcome.status = ERROR
        outcome.error = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        outcome.task_seconds = time.perf_counter() - started
        return outcome

    if report.status == "budget_exhausted":
        outcome.status = UNKNOWN
        outcome.error = report.budget_reason or "resource budget exhausted"
    elif report.status == "certificate_error":
        # The verdict failed its independent check: never record it as
        # sat/unsat.
        outcome.status = CERTIFICATE_ERROR
        outcome.error = report.certificate_error or "certificate rejected"
    elif report.is_rejected:
        # Preflight refused the input: a deterministic verdict with the
        # findings attached, not an error.
        outcome.status = report.status
        outcome.error = "; ".join(
            d.code for d in report.diagnostics.fatal)
    outcome.certified = report.certified
    if report.diagnostics is not None:
        outcome.diagnostics = report.diagnostics.to_dict()
    outcome.satisfiable = report.satisfiable
    outcome.base_cost = str(report.base_cost)
    outcome.threshold = str(report.threshold)
    if report.believed_min_cost is not None:
        outcome.believed_min_cost = str(report.believed_min_cost)
    if report.achieved_increase_percent is not None:
        outcome.achieved_increase_percent = float(
            report.achieved_increase_percent)
    outcome.candidates_examined = report.candidates_examined
    outcome.solver_calls = report.solver_calls
    outcome.analysis_seconds = report.elapsed_seconds
    if report.trace is not None:
        outcome.trace = report.trace.to_dict()
    outcome.task_seconds = time.perf_counter() - started
    return outcome


def _worker_entry(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (picklable) process-pool entry point."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    budget_spec = payload.get("budget")
    budget = SolverBudget.from_dict(budget_spec) if budget_spec else None
    return execute_scenario(spec, payload["fingerprint"], budget,
                            self_check=payload.get("self_check")).to_dict()


def verify_cached_outcome(outcome: ScenarioOutcome, spec: ScenarioSpec,
                          require_certified: bool = False) -> None:
    """Re-verify a cache-served outcome before trusting it.

    Structural validation (:meth:`ScenarioOutcome.from_dict`) already ran;
    this checks the *semantics*: the recorded numbers must be internally
    consistent with the spec's query, and in certified mode the outcome
    must have been produced with its certificates verified.  Raises
    :class:`ValueError` on any inconsistency — the engine treats that as
    a cache miss and recomputes.
    """
    if outcome.status in REJECTED_STATUSES:
        # Structural validation already guaranteed fatal diagnostics
        # matching the status; re-run preflight on the resolved case so a
        # stale rejection (case since repaired, or aliased) is recomputed
        # instead of served.  Preflight involves no solver answers, so
        # certified sweeps may serve rejections too.
        try:
            case = spec.resolve_case()
        except InputFormatError:
            raise ValueError(
                "cached rejection is for a case that no longer parses")
        report = validate_case(case, observability=False)
        if report.fatal_status() != outcome.status:
            raise ValueError(
                f"cached {outcome.status} rejection no longer matches "
                f"preflight (now {report.fatal_status()!r})")
        return
    if outcome.status != OK:
        raise ValueError(
            f"cached outcome has non-definitive status {outcome.status!r}")
    if outcome.satisfiable is None:
        raise ValueError("cached ok outcome has no verdict")
    try:
        base = Fraction(outcome.base_cost)
        threshold = Fraction(outcome.threshold)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"cached outcome has unparsable costs: {exc}")
    if base <= 0:
        raise ValueError(f"cached base cost {base} is not positive")
    target = spec.target_fraction()
    if target is not None and threshold != base * (1 + target / 100):
        raise ValueError(
            "cached threshold is inconsistent with the spec's target")
    if outcome.satisfiable:
        if outcome.believed_min_cost is None:
            raise ValueError("cached sat outcome has no believed cost")
        try:
            believed = Fraction(outcome.believed_min_cost)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cached believed cost is unparsable: {exc}")
        # The fast analyzer's believed cost travels through floats, so
        # allow the same relative slack its certification uses.
        if float(believed) < float(threshold) * (1 - 1e-6) - 1e-9:
            raise ValueError(
                "cached sat outcome's believed cost is below threshold")
        if outcome.achieved_increase_percent is not None:
            expected = float((believed / base - 1) * 100)
            if abs(outcome.achieved_increase_percent - expected) > 1e-6:
                raise ValueError(
                    "cached achieved-increase disagrees with its costs")
    elif outcome.believed_min_cost is not None:
        # Definitive unsat outcomes carry no believed cost (partial ones
        # do, but those are never cached): a leftover cost means the
        # verdict was rewritten in place.
        raise ValueError("cached unsat outcome carries a believed cost")
    if require_certified and outcome.certified is not True:
        raise ValueError(
            "certified sweep: cached outcome was not produced with "
            "certificates verified")


class SweepEngine:
    """Runs scenario grids with caching, parallelism and retry."""

    def __init__(self, config: Optional[SweepConfig] = None,
                 task: Optional[Callable[[Dict[str, Any]],
                                         Dict[str, Any]]] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.config = config or SweepConfig()
        #: injectable for tests (e.g. a crashing task); must be a
        #: module-level callable so worker processes can unpickle it.
        self._task = task or _worker_entry
        #: injectable for tests (e.g. a cache whose writes fail).
        self._cache = cache

    # -- public API -----------------------------------------------------

    def run(self, specs: Sequence[ScenarioSpec]) -> SweepTrace:
        started = time.perf_counter()
        config = self.config
        if self._cache is not None:
            cache = self._cache if config.use_cache else None
        else:
            cache = ResultCache(config.cache_dir) \
                if config.use_cache and config.cache_dir else None

        # Fingerprinting resolves the case; a spec that cannot resolve
        # (unknown name, unparsable text) is recorded as an error outcome
        # rather than aborting the whole sweep.
        fingerprints: List[str] = []
        outcomes: List[Optional[ScenarioOutcome]] = [None] * len(specs)
        for idx, spec in enumerate(specs):
            try:
                fingerprints.append(spec.fingerprint())
            except InputFormatError as exc:
                # The case text does not parse: a deterministic verdict
                # about the input (no fingerprint, so never cached).
                fingerprints.append("")
                outcomes[idx] = _rejected_outcome(
                    spec, "", parse_failure_report(spec.case, exc))
            except Exception as exc:
                fingerprints.append("")
                outcomes[idx] = ScenarioOutcome(
                    spec=spec, fingerprint="", status=ERROR,
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip())
        certify = self_check_default(config.self_check)
        cache_rejected = 0
        pending: List[int] = []
        for idx, fingerprint in enumerate(fingerprints):
            if outcomes[idx] is not None:
                continue
            hit = cache.get(fingerprint) if cache else None
            if hit is None:
                pending.append(idx)
                continue
            try:
                outcome = ScenarioOutcome.from_dict(hit)
                verify_cached_outcome(outcome, specs[idx],
                                      require_certified=certify)
            except ValueError:
                # Malformed, stale or semantically inconsistent cached
                # payload: a miss — recompute (and overwrite the bad
                # entry on completion).
                cache_rejected += 1
                pending.append(idx)
                continue
            outcome.cache_hit = True
            outcomes[idx] = outcome

        mode = "serial"
        if pending:
            if config.workers > 1 and len(pending) > 1:
                if self._run_parallel(specs, fingerprints, pending,
                                      outcomes, cache):
                    mode = "parallel"
                # else: _run_parallel already fell back to serial
            else:
                self._run_serial(specs, fingerprints, pending, outcomes,
                                 cache)

        return SweepTrace(
            outcomes=[o for o in outcomes if o is not None],
            wall_seconds=time.perf_counter() - started,
            workers=config.workers if mode == "parallel" else 1,
            mode=mode,
            cache_dir=str(cache.root) if cache else None,
            cache_rejected=cache_rejected)

    # -- task plumbing ---------------------------------------------------

    def _task_budget(self) -> Optional[Dict[str, Any]]:
        """Per-task budget limits (a fresh budget is built per task)."""
        config = self.config
        limits = dict(config.budget.to_dict()) \
            if config.budget is not None else {}
        if config.task_timeout is not None:
            wall = limits.get("wall_seconds")
            limits["wall_seconds"] = config.task_timeout if wall is None \
                else min(wall, config.task_timeout)
        return limits or None

    def _task_payload(self, spec: ScenarioSpec,
                      fingerprint: str) -> Dict[str, Any]:
        payload = {"spec": spec.to_dict(), "fingerprint": fingerprint}
        budget = self._task_budget()
        if budget is not None:
            payload["budget"] = budget
        if self.config.self_check is not None:
            payload["self_check"] = self.config.self_check
        return payload

    def _pool_wait(self) -> Optional[float]:
        """Pool-level wait: the in-solver deadline plus grace, so a
        solver-bound task reports ``unknown`` (with statistics) before
        the blunt pool ``timeout`` backstop fires."""
        timeout = self.config.task_timeout
        if timeout is None:
            return None
        return timeout * 1.25 + 0.25

    def _record(self, idx: int, outcome: ScenarioOutcome, spec,
                fingerprints, outcomes,
                cache: Optional[ResultCache]) -> None:
        """Commit an outcome and checkpoint it to the cache immediately.

        Definitive ``ok`` outcomes and deterministic preflight rejections
        (``invalid_input``/``degenerate_case``) are cached;
        budget-dependent (``unknown``/``timeout``) and transient failures
        must recompute next run.  The outcome's spec must equal the
        submitted spec — a worker that analyzed something else (fault
        injection, memory corruption) must not poison the submitted
        spec's cache slot.  A failed write degrades to
        ``cache_write_error``.
        """
        outcomes[idx] = outcome
        cacheable = outcome.status == OK \
            or outcome.status in REJECTED_STATUSES
        if cache is not None and cacheable and fingerprints[idx] \
                and outcome.spec.to_dict() == spec.to_dict():
            error = cache.try_put(fingerprints[idx], outcome.to_dict())
            if error is not None:
                outcome.cache_write_error = error

    # -- execution strategies -------------------------------------------

    def _run_serial(self, specs, fingerprints, indices, outcomes,
                    cache) -> None:
        for idx in indices:
            try:
                payload = self._task(self._task_payload(
                    specs[idx], fingerprints[idx]))
                outcome = ScenarioOutcome.from_dict(payload)
            except Exception as exc:
                # KeyboardInterrupt deliberately propagates: completed
                # outcomes are already checkpointed, so an interrupted
                # sweep resumes from the cache.
                outcome = ScenarioOutcome(
                    spec=specs[idx], fingerprint=fingerprints[idx],
                    status=ERROR,
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip())
            self._record(idx, outcome, specs[idx], fingerprints,
                         outcomes, cache)

    def _run_parallel(self, specs, fingerprints, indices, outcomes,
                      cache) -> bool:
        """Returns False when it had to degrade to serial execution."""
        config = self.config
        attempts = {idx: 0 for idx in indices}
        to_run = list(indices)
        while to_run:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(config.workers, len(to_run)))
            except (OSError, ValueError, ImportError):
                # No usable multiprocessing primitives here (sandboxes,
                # missing /dev/shm, ...): degrade to serial.
                self._run_serial(specs, fingerprints, to_run, outcomes,
                                 cache)
                return False
            next_round: List[int] = []
            try:
                futures = {}
                for idx in to_run:
                    attempts[idx] += 1
                    futures[idx] = pool.submit(
                        self._task, self._task_payload(
                            specs[idx], fingerprints[idx]))
                # Waiting in submission order gives every task up to
                # the pool wait of dedicated time on top of whatever
                # overlap it had with earlier waits — an approximate but
                # cheap per-task budget.
                timed_out = False
                for idx in to_run:
                    future = futures[idx]
                    if timed_out and not future.done():
                        # A timeout poisoned this pool: hung workers
                        # cannot be cancelled, and tasks queued behind
                        # them (already handed to the call queue, so
                        # cancel() fails for them too) would inherit the
                        # dead slots.  Reschedule everything unfinished
                        # on a fresh pool — tasks are deterministic and
                        # workers side-effect-free, so the possible
                        # double execution of a genuinely-running task
                        # is safe.
                        future.cancel()
                        attempts[idx] -= 1
                        next_round.append(idx)
                        continue
                    try:
                        payload = future.result(timeout=self._pool_wait())
                    except FuturesTimeoutError:
                        timed_out = True
                        future.cancel()
                        self._record(idx, ScenarioOutcome(
                            spec=specs[idx],
                            fingerprint=fingerprints[idx],
                            status=TIMEOUT, attempts=attempts[idx],
                            error=f"exceeded {config.task_timeout}s "
                                  f"task budget"),
                            specs[idx], fingerprints, outcomes, cache)
                    except BrokenExecutor as exc:
                        if attempts[idx] <= config.retries:
                            next_round.append(idx)
                        else:
                            self._record(idx, ScenarioOutcome(
                                spec=specs[idx],
                                fingerprint=fingerprints[idx],
                                status=CRASHED, attempts=attempts[idx],
                                error=str(exc) or "worker process died"),
                                specs[idx], fingerprints, outcomes,
                                cache)
                    except Exception as exc:  # pickling and kin
                        self._record(idx, ScenarioOutcome(
                            spec=specs[idx],
                            fingerprint=fingerprints[idx],
                            status=ERROR, attempts=attempts[idx],
                            error="".join(
                                traceback.format_exception_only(
                                    type(exc), exc)).strip()),
                            specs[idx], fingerprints, outcomes, cache)
                    else:
                        outcome = ScenarioOutcome.from_dict(payload)
                        outcome.attempts = attempts[idx]
                        self._record(idx, outcome, specs[idx],
                                     fingerprints, outcomes, cache)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            to_run = next_round
        return True
