"""The parallel scenario-sweep engine.

The paper's evaluation grids — (case × target-% × attacker-scenario)
cells, each an independent impact analysis — are embarrassingly parallel,
so :class:`SweepEngine` fans :class:`~repro.runner.spec.ScenarioSpec`
tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* results are served from the on-disk :class:`~repro.runner.cache.
  ResultCache` when the (case, query, code) fingerprint matches a prior
  run, so repeated sweeps and benchmark reruns short-circuit;
* each task has an optional wall-clock budget (``task_timeout``); a task
  that exceeds it is recorded as ``timeout`` and the sweep moves on;
* a worker-process crash (OOM kill, segfault in a native library) breaks
  the pool — the engine rebuilds it and retries the affected scenarios up
  to ``retries`` times before recording them as ``crashed``;
* when process pools are unavailable (restricted environments) or
  ``workers <= 1``, the engine degrades gracefully to in-process serial
  execution with identical results.

Execution is deterministic per scenario, so parallel and serial runs are
interchangeable; only wall-clock differs.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import (
    CRASHED,
    ERROR,
    OK,
    TIMEOUT,
    ScenarioOutcome,
    SweepTrace,
)


@dataclass
class SweepConfig:
    """Engine knobs."""

    workers: int = 4
    #: per-task wall-clock budget in seconds (None: unlimited).  Enforced
    #: in parallel mode; serial fallback runs tasks to completion.
    task_timeout: Optional[float] = None
    #: how many times a scenario is resubmitted after its worker crashed.
    retries: int = 1
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    use_cache: bool = True


def execute_scenario(spec: ScenarioSpec,
                     fingerprint: str = "") -> ScenarioOutcome:
    """Run one scenario in-process and record its outcome + trace."""
    started = time.perf_counter()
    outcome = ScenarioOutcome(spec=spec, fingerprint=fingerprint,
                              worker_pid=os.getpid())
    try:
        case = spec.resolve_case()
        kind = spec.resolved_analyzer(case)
        if kind == "smt":
            analyzer = ImpactAnalyzer(case)
            report = analyzer.analyze(ImpactQuery(
                target_increase_percent=spec.target_fraction(),
                with_state_infection=spec.with_state_infection,
                max_candidates=spec.max_candidates))
        else:
            fast = FastImpactAnalyzer(case)
            report = fast.analyze(FastQuery(
                target_increase_percent=spec.target_fraction(),
                with_state_infection=spec.with_state_infection,
                state_samples=spec.state_samples,
                seed=spec.sample_seed))
    except Exception as exc:
        outcome.status = ERROR
        outcome.error = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        outcome.task_seconds = time.perf_counter() - started
        return outcome

    outcome.satisfiable = report.satisfiable
    outcome.base_cost = str(report.base_cost)
    outcome.threshold = str(report.threshold)
    if report.believed_min_cost is not None:
        outcome.believed_min_cost = str(report.believed_min_cost)
    if report.achieved_increase_percent is not None:
        outcome.achieved_increase_percent = float(
            report.achieved_increase_percent)
    outcome.candidates_examined = report.candidates_examined
    outcome.solver_calls = report.solver_calls
    outcome.analysis_seconds = report.elapsed_seconds
    if report.trace is not None:
        outcome.trace = report.trace.to_dict()
    outcome.task_seconds = time.perf_counter() - started
    return outcome


def _worker_entry(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (picklable) process-pool entry point."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    return execute_scenario(spec, payload["fingerprint"]).to_dict()


class SweepEngine:
    """Runs scenario grids with caching, parallelism and retry."""

    def __init__(self, config: Optional[SweepConfig] = None,
                 task: Optional[Callable[[Dict[str, Any]],
                                         Dict[str, Any]]] = None) -> None:
        self.config = config or SweepConfig()
        #: injectable for tests (e.g. a crashing task); must be a
        #: module-level callable so worker processes can unpickle it.
        self._task = task or _worker_entry

    # -- public API -----------------------------------------------------

    def run(self, specs: Sequence[ScenarioSpec]) -> SweepTrace:
        started = time.perf_counter()
        config = self.config
        cache = ResultCache(config.cache_dir) \
            if config.use_cache and config.cache_dir else None

        # Fingerprinting resolves the case; a spec that cannot resolve
        # (unknown name, unparsable text) is recorded as an error outcome
        # rather than aborting the whole sweep.
        fingerprints: List[str] = []
        outcomes: List[Optional[ScenarioOutcome]] = [None] * len(specs)
        for idx, spec in enumerate(specs):
            try:
                fingerprints.append(spec.fingerprint())
            except Exception as exc:
                fingerprints.append("")
                outcomes[idx] = ScenarioOutcome(
                    spec=spec, fingerprint="", status=ERROR,
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip())
        pending: List[int] = []
        for idx, fingerprint in enumerate(fingerprints):
            if outcomes[idx] is not None:
                continue
            hit = cache.get(fingerprint) if cache else None
            if hit is not None:
                outcome = ScenarioOutcome.from_dict(hit)
                outcome.cache_hit = True
                outcomes[idx] = outcome
            else:
                pending.append(idx)

        mode = "serial"
        if pending:
            if config.workers > 1 and len(pending) > 1:
                if self._run_parallel(specs, fingerprints, pending,
                                      outcomes):
                    mode = "parallel"
                # else: _run_parallel already fell back to serial
            else:
                self._run_serial(specs, fingerprints, pending, outcomes)

        if cache is not None:
            for idx in pending:
                outcome = outcomes[idx]
                if outcome is not None and outcome.status == OK:
                    cache.put(fingerprints[idx], outcome.to_dict())

        return SweepTrace(
            outcomes=[o for o in outcomes if o is not None],
            wall_seconds=time.perf_counter() - started,
            workers=config.workers if mode == "parallel" else 1,
            mode=mode,
            cache_dir=str(cache.root) if cache else None)

    # -- execution strategies -------------------------------------------

    def _run_serial(self, specs, fingerprints, indices, outcomes) -> None:
        for idx in indices:
            payload = self._task({"spec": specs[idx].to_dict(),
                                  "fingerprint": fingerprints[idx]})
            outcomes[idx] = ScenarioOutcome.from_dict(payload)

    def _run_parallel(self, specs, fingerprints, indices,
                      outcomes) -> bool:
        """Returns False when it had to degrade to serial execution."""
        config = self.config
        attempts = {idx: 0 for idx in indices}
        to_run = list(indices)
        while to_run:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(config.workers, len(to_run)))
            except (OSError, ValueError, ImportError):
                # No usable multiprocessing primitives here (sandboxes,
                # missing /dev/shm, ...): degrade to serial.
                self._run_serial(specs, fingerprints, to_run, outcomes)
                return False
            retry: List[int] = []
            try:
                futures = {}
                for idx in to_run:
                    attempts[idx] += 1
                    futures[idx] = pool.submit(
                        self._task, {"spec": specs[idx].to_dict(),
                                     "fingerprint": fingerprints[idx]})
                # Waiting in submission order gives every task up to
                # ``task_timeout`` of dedicated wait on top of whatever
                # overlap it had with earlier waits — an approximate but
                # cheap per-task budget.
                for idx in to_run:
                    future = futures[idx]
                    try:
                        payload = future.result(
                            timeout=config.task_timeout)
                    except FuturesTimeoutError:
                        future.cancel()
                        outcomes[idx] = ScenarioOutcome(
                            spec=specs[idx],
                            fingerprint=fingerprints[idx],
                            status=TIMEOUT, attempts=attempts[idx],
                            error=f"exceeded {config.task_timeout}s "
                                  f"task budget")
                    except BrokenExecutor as exc:
                        if attempts[idx] <= config.retries:
                            retry.append(idx)
                        else:
                            outcomes[idx] = ScenarioOutcome(
                                spec=specs[idx],
                                fingerprint=fingerprints[idx],
                                status=CRASHED, attempts=attempts[idx],
                                error=str(exc) or "worker process died")
                    except Exception as exc:  # pickling and kin
                        outcomes[idx] = ScenarioOutcome(
                            spec=specs[idx],
                            fingerprint=fingerprints[idx],
                            status=ERROR, attempts=attempts[idx],
                            error="".join(
                                traceback.format_exception_only(
                                    type(exc), exc)).strip())
                    else:
                        outcome = ScenarioOutcome.from_dict(payload)
                        outcome.attempts = attempts[idx]
                        outcomes[idx] = outcome
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            to_run = retry
        return True
