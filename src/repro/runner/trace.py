"""Structured sweep tracing.

:class:`ScenarioOutcome` is the JSON-able record of one executed (or
cache-served) scenario: verdict summary, work counters, and the
:class:`~repro.core.results.AnalysisTrace` threaded up from the analyzers
(SMT decisions/conflicts/simplex pivots, OPF solve counts and times,
per-stage wall timings).  :class:`SweepTrace` aggregates outcomes plus
engine-level metadata into the per-sweep trace JSON that ``python -m
repro sweep --trace`` emits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.spec import ScenarioSpec, code_fingerprint
from repro.validation.diagnostics import ValidationReport

#: outcome statuses.
OK = "ok"
ERROR = "error"        # the analysis itself raised (deterministic; no retry)
TIMEOUT = "timeout"    # exceeded the per-task budget
CRASHED = "crashed"    # worker process died and retries were exhausted
UNKNOWN = "unknown"    # the in-solver resource budget ran out mid-search
#: self-check mode rejected an answer's certificate: the verdict is not
#: trusted and deliberately never rendered as sat/unsat.
CERTIFICATE_ERROR = "certificate_error"
#: preflight validation rejected the input before any encoding:
#: structurally malformed (``invalid_input``) or well-formed but
#: analytically degenerate, e.g. an islanded topology
#: (``degenerate_case``).  Both carry structured ``diagnostics``.
INVALID_INPUT = "invalid_input"
DEGENERATE_CASE = "degenerate_case"
#: the guarded linear-algebra layer refused to return an unverified
#: result (ill-conditioned matrices, unverifiable solves).  A graceful
#: degradation like ``unknown``: the verdict is withheld, never rendered
#: as sat/unsat.  Deterministic for a given case and numerics policy
#: (the policy is part of the cache fingerprint), so cacheable.
NUMERICAL_UNSTABLE = "numerical_unstable"

_KNOWN_STATUSES = (OK, ERROR, TIMEOUT, CRASHED, UNKNOWN,
                   CERTIFICATE_ERROR, INVALID_INPUT, DEGENERATE_CASE,
                   NUMERICAL_UNSTABLE)
#: statuses that are deterministic verdicts about the *input* — safe to
#: cache (unlike transient errors/timeouts) and served like OK hits.
REJECTED_STATUSES = (INVALID_INPUT, DEGENERATE_CASE)


@dataclass
class ScenarioOutcome:
    """Everything the sweep records about one scenario."""

    spec: ScenarioSpec
    fingerprint: str
    status: str = OK
    satisfiable: Optional[bool] = None
    base_cost: Optional[str] = None            # str(Fraction): exact
    threshold: Optional[str] = None
    believed_min_cost: Optional[str] = None
    achieved_increase_percent: Optional[float] = None
    candidates_examined: int = 0
    solver_calls: int = 0
    analysis_seconds: float = 0.0              # the analyzer's own timer
    task_seconds: float = 0.0                  # incl. case build/decode
    cache_hit: bool = False
    worker_pid: Optional[int] = None
    attempts: int = 1
    error: Optional[str] = None
    #: the outcome itself is fine but checkpointing it failed (disk full,
    #: permissions, ...); the sweep degrades instead of aborting.
    cache_write_error: Optional[str] = None
    #: True when the analysis ran in certified mode and every answer
    #: passed its independent check; False when a check failed (status is
    #: then ``certificate_error``); None when self-check was off.
    certified: Optional[bool] = None
    #: structured preflight findings (a ``ValidationReport`` payload);
    #: always present for rejected outcomes, may carry degraded/warning
    #: findings on accepted ones.  Round-trips through the result cache.
    diagnostics: Optional[Dict[str, Any]] = None
    #: maximize-mode payload (a ``MaxImpactResult.to_dict()``): the I*
    #: bracket, witness vector and per-probe log.  Present exactly when
    #: the spec's ``search`` is ``"maximize"`` and the run was accepted.
    max_impact: Optional[Dict[str, Any]] = None
    trace: Dict[str, Any] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        if self.status != OK:
            return self.status
        return "sat" if self.satisfiable else "unsat"

    def diagnostics_report(self) -> Optional[ValidationReport]:
        """The findings as a :class:`ValidationReport` (None if absent)."""
        if self.diagnostics is None:
            return None
        return ValidationReport.from_dict(self.diagnostics)

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["spec"] = self.spec.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioOutcome":
        """Rebuild an outcome, validating shape and field types.

        Raises :class:`ValueError` on any malformation, so a corrupt or
        stale cached payload is detected at the boundary (and treated as
        a cache miss by the engine) instead of poisoning a sweep.
        """
        if not isinstance(payload, dict):
            raise ValueError("outcome payload is not a JSON object")
        data = dict(payload)
        spec = data.get("spec")
        if not isinstance(spec, dict):
            raise ValueError("outcome payload has no spec object")
        try:
            data["spec"] = ScenarioSpec.from_dict(spec)
        except TypeError as exc:
            raise ValueError(f"malformed scenario spec: {exc}") from exc
        data["trace"] = dict(data.get("trace") or {})
        try:
            outcome = cls(**data)
        except TypeError as exc:
            raise ValueError(f"malformed outcome payload: {exc}") from exc
        outcome._validate()
        return outcome

    def _validate(self) -> None:
        if self.status not in _KNOWN_STATUSES:
            raise ValueError(f"unknown outcome status {self.status!r}")
        checks = (
            ("fingerprint", self.fingerprint, str, False),
            ("satisfiable", self.satisfiable, bool, True),
            ("base_cost", self.base_cost, str, True),
            ("threshold", self.threshold, str, True),
            ("believed_min_cost", self.believed_min_cost, str, True),
            ("achieved_increase_percent", self.achieved_increase_percent,
             (int, float), True),
            ("candidates_examined", self.candidates_examined, int, False),
            ("solver_calls", self.solver_calls, int, False),
            ("analysis_seconds", self.analysis_seconds, (int, float),
             False),
            ("task_seconds", self.task_seconds, (int, float), False),
            ("cache_hit", self.cache_hit, bool, False),
            ("worker_pid", self.worker_pid, int, True),
            ("attempts", self.attempts, int, False),
            ("error", self.error, str, True),
            ("cache_write_error", self.cache_write_error, str, True),
            ("certified", self.certified, bool, True),
            ("diagnostics", self.diagnostics, dict, True),
            ("max_impact", self.max_impact, dict, True),
            ("trace", self.trace, dict, False),
        )
        for name, value, types, optional in checks:
            if optional and value is None:
                continue
            if not isinstance(value, types):
                raise ValueError(f"outcome field {name!r} has invalid "
                                 f"value {value!r}")
        if self.diagnostics is not None:
            # Raises ValueError on malformed entries — a corrupt cached
            # diagnostics payload is a cache miss, not a crash.
            ValidationReport.from_dict(self.diagnostics)
        if self.status in REJECTED_STATUSES:
            report = self.diagnostics_report()
            if report is None or report.fatal_status() != self.status:
                raise ValueError(
                    f"{self.status} outcome must carry fatal diagnostics "
                    f"matching its status")
        if self.status == NUMERICAL_UNSTABLE and self.error is None:
            raise ValueError(
                "numerical_unstable outcome must carry its numeric "
                "reason in the error field")
        search = getattr(self.spec, "search", "decision")
        if self.status == OK:
            if search == "maximize" and self.max_impact is None:
                raise ValueError(
                    "ok maximize outcome must carry a max_impact payload")
            if search != "maximize" and self.max_impact is not None:
                raise ValueError(
                    "decision outcome must not carry a max_impact payload")


#: outcome fields that legitimately differ between two correct runs of
#: the same scenario: timings, process identity, retry counts, cache
#: luck and the per-run trace counters.  Everything else — the verdict,
#: the exact costs, the diagnostics — must be bit-identical.
VOLATILE_OUTCOME_FIELDS = ("analysis_seconds", "task_seconds",
                           "cache_hit", "worker_pid", "attempts",
                           "cache_write_error", "trace")


def deterministic_outcome_view(payload: Dict[str, Any]
                               ) -> Dict[str, Any]:
    """The outcome payload minus its run-volatile fields.

    Differential checks (fabric vs. serial sweep, resume vs. fresh run)
    compare outcomes through this view: two executions of the same
    scenario must agree on it exactly, even though their timings, worker
    pids and cache histories differ.  ``max_impact`` probe logs carry
    per-probe timings too, so those are stripped from the nested payload
    the same way.
    """
    view = {key: value for key, value in payload.items()
            if key not in VOLATILE_OUTCOME_FIELDS}
    max_impact = view.get("max_impact")
    if isinstance(max_impact, dict):
        # Per-probe timings and session-warmth counters (how many
        # encodings a probe built depends on which unit it shared a
        # session with) are volatile too.
        max_impact = {k: v for k, v in max_impact.items()
                      if k not in ("elapsed_seconds", "warm_solves",
                                   "encodings_built")}
        probes = max_impact.get("probes")
        if isinstance(probes, list):
            max_impact["probes"] = [
                {k: v for k, v in probe.items() if k != "seconds"}
                if isinstance(probe, dict) else probe
                for probe in probes]
        view["max_impact"] = max_impact
    return view


@dataclass
class SweepTrace:
    """The sweep-level trace: engine metadata plus all outcomes."""

    outcomes: List[ScenarioOutcome]
    wall_seconds: float
    workers: int
    mode: str                                  # "parallel" | "serial"
    cache_dir: Optional[str] = None
    #: cached payloads that failed the load-time re-verification and were
    #: recomputed instead of served (stale/corrupt entries).
    cache_rejected: int = 0

    @property
    def cache_hits(self) -> int:
        return sum(outcome.cache_hit for outcome in self.outcomes)

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.status != OK]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generator": "repro sweep",
            "code_fingerprint": code_fingerprint(),
            "workers": self.workers,
            "mode": self.mode,
            "cache_dir": self.cache_dir,
            "totals": {
                "scenarios": len(self.outcomes),
                "cache_hits": self.cache_hits,
                "cache_rejected": self.cache_rejected,
                "failures": len(self.failures),
                "unknown": sum(o.status == UNKNOWN
                               for o in self.outcomes),
                "certificate_errors": sum(o.status == CERTIFICATE_ERROR
                                          for o in self.outcomes),
                "invalid_input": sum(o.status == INVALID_INPUT
                                     for o in self.outcomes),
                "degenerate_case": sum(o.status == DEGENERATE_CASE
                                       for o in self.outcomes),
                "numerical_unstable": sum(o.status == NUMERICAL_UNSTABLE
                                          for o in self.outcomes),
                "certified": sum(o.certified is True
                                 for o in self.outcomes),
                "max_impact_cells": sum(o.max_impact is not None
                                        for o in self.outcomes),
                "cache_write_errors": sum(
                    o.cache_write_error is not None
                    for o in self.outcomes),
                "wall_seconds": self.wall_seconds,
                "analysis_seconds": sum(o.analysis_seconds
                                        for o in self.outcomes),
                "solver_calls": sum(o.solver_calls
                                    for o in self.outcomes),
                "opf_solves": sum(o.trace.get("opf", {}).get("solves", 0)
                                  for o in self.outcomes),
                "encodings_built": sum(
                    o.trace.get("session", {}).get("encodings_built", 0)
                    for o in self.outcomes),
                "encode_seconds": sum(
                    o.trace.get("session", {}).get("encode_seconds", 0.0)
                    for o in self.outcomes),
            },
            "scenarios": [outcome.to_dict()
                          for outcome in self.outcomes],
        }

    def write(self, path) -> Path:
        """Write the trace JSON; returns the path written."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)
        return target
