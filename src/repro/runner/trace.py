"""Structured sweep tracing.

:class:`ScenarioOutcome` is the JSON-able record of one executed (or
cache-served) scenario: verdict summary, work counters, and the
:class:`~repro.core.results.AnalysisTrace` threaded up from the analyzers
(SMT decisions/conflicts/simplex pivots, OPF solve counts and times,
per-stage wall timings).  :class:`SweepTrace` aggregates outcomes plus
engine-level metadata into the per-sweep trace JSON that ``python -m
repro sweep --trace`` emits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.spec import ScenarioSpec, code_fingerprint

#: outcome statuses.
OK = "ok"
ERROR = "error"        # the analysis itself raised (deterministic; no retry)
TIMEOUT = "timeout"    # exceeded the per-task budget
CRASHED = "crashed"    # worker process died and retries were exhausted


@dataclass
class ScenarioOutcome:
    """Everything the sweep records about one scenario."""

    spec: ScenarioSpec
    fingerprint: str
    status: str = OK
    satisfiable: Optional[bool] = None
    base_cost: Optional[str] = None            # str(Fraction): exact
    threshold: Optional[str] = None
    believed_min_cost: Optional[str] = None
    achieved_increase_percent: Optional[float] = None
    candidates_examined: int = 0
    solver_calls: int = 0
    analysis_seconds: float = 0.0              # the analyzer's own timer
    task_seconds: float = 0.0                  # incl. case build/decode
    cache_hit: bool = False
    worker_pid: Optional[int] = None
    attempts: int = 1
    error: Optional[str] = None
    trace: Dict[str, Any] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        if self.status != OK:
            return self.status
        return "sat" if self.satisfiable else "unsat"

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["spec"] = self.spec.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioOutcome":
        data = dict(payload)
        data["spec"] = ScenarioSpec.from_dict(data["spec"])
        data["trace"] = dict(data.get("trace") or {})
        return cls(**data)


@dataclass
class SweepTrace:
    """The sweep-level trace: engine metadata plus all outcomes."""

    outcomes: List[ScenarioOutcome]
    wall_seconds: float
    workers: int
    mode: str                                  # "parallel" | "serial"
    cache_dir: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        return sum(outcome.cache_hit for outcome in self.outcomes)

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.status != OK]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generator": "repro sweep",
            "code_fingerprint": code_fingerprint(),
            "workers": self.workers,
            "mode": self.mode,
            "cache_dir": self.cache_dir,
            "totals": {
                "scenarios": len(self.outcomes),
                "cache_hits": self.cache_hits,
                "failures": len(self.failures),
                "wall_seconds": self.wall_seconds,
                "analysis_seconds": sum(o.analysis_seconds
                                        for o in self.outcomes),
                "solver_calls": sum(o.solver_calls
                                    for o in self.outcomes),
                "opf_solves": sum(o.trace.get("opf", {}).get("solves", 0)
                                  for o in self.outcomes),
            },
            "scenarios": [outcome.to_dict()
                          for outcome in self.outcomes],
        }

    def write(self, path) -> Path:
        """Write the trace JSON; returns the path written."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)
        return target
