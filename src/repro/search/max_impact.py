"""Maximum-impact search: the largest achievable cost increase I*.

The analyzers answer *decision* queries — does a stealthy attack exist
that raises the believed-optimal OPF cost by at least I percent?  The
verdict is monotone in I: an attack meeting a threshold also meets every
smaller one (paper Eq. 37 asks for an increase of *at least* I%), so the
satisfiable region is an interval ``[0, I*]`` and the attacker's real
question — the maximum achievable impact I* — is answered by bisection.

:class:`MaxImpactSearch` runs that bisection through
:meth:`~repro.core.session.AnalysisSession.solve_at`, so on a warm
(incremental) session every probe re-solves against the retained clause
database instead of re-encoding: I* to tolerance epsilon costs
O(log((hi-lo)/epsilon)) warm re-solves where a linear threshold sweep at
the same resolution costs (hi-lo)/epsilon.  The mitigation framing is
from "Hidden Attacks on Power Grid: Optimal Attack Strategies and
Mitigation" (arXiv:1401.3274): report I* per scenario, then plan
defenses that drive it down (:mod:`repro.defense`).

Exactness: every bound and midpoint is a :class:`~fractions.Fraction`
and the session's threshold derivation (``base * (1 + I/100)``) is
exact rational arithmetic, so the reported I* never disagrees with a
subsequent decision query: ``solve_at(I*)`` is satisfiable and
``solve_at(I* + tolerance)`` is not (both verdicts were *proved* during
the search — with ``self_check`` they carry a checked SAT model and a
checked UNSAT proof respectively).  The default bounds and tolerance
are dyadic rationals, so bisection midpoints stay exactly representable
as floats and the fast analyzer's float target conversion is lossless.

Resource budgets span the whole search: one
:class:`~repro.smt.budget.SolverBudget` is shared by every probe
(counters are cumulative, the deadline is armed once), and on
exhaustion the search stops with the partial bracket proved so far
(``status="budget_exhausted"``, ``lower_bound``/``upper_bound`` report
``I* in [lo, hi)``) instead of discarding the work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional

from repro.core.encoding import AttackVectorSolution
from repro.core.results import ImpactReport
from repro.exceptions import ModelError
from repro.smt.budget import SolverBudget
from repro.smt.rational import to_fraction
from repro.validation import ValidationReport

#: default bisection tolerance (dyadic, so fast-path float targets stay
#: exact and bisection midpoints never grow non-binary denominators).
DEFAULT_TOLERANCE = Fraction(1, 8)
#: default upper cap of the galloping phase: no bundled case admits an
#: attack anywhere near a 64% cost increase (the paper's five-bus tops
#: out below 9%), so the cap only bounds pathological inputs.
DEFAULT_HI_CAP = Fraction(64)

#: terminal search statuses.
COMPLETE = "complete"            # bracket narrowed to <= tolerance
CAPPED = "capped"                # still satisfiable at the upper cap
BUDGET_EXHAUSTED = "budget_exhausted"
CERTIFICATE_ERROR = "certificate_error"


@dataclass
class MaxImpactResult:
    """What the bisection proved about the maximum achievable impact.

    ``lower_bound`` is the largest percentage *proved satisfiable* (its
    witness is attached), ``upper_bound`` the smallest *proved
    unsatisfiable*; I* lies in ``[lower_bound, upper_bound)``.  With
    ``status="complete"`` the bracket is at most ``tolerance`` wide and
    :attr:`max_increase_percent` reports I* = ``lower_bound``; a
    budget-exhausted search reports whatever partial bracket it reached
    (either bound may be None when no probe of that polarity finished).
    """

    status: str
    satisfiable: bool
    base_cost: Fraction
    tolerance: Fraction
    lower_bound: Optional[Fraction] = None
    upper_bound: Optional[Fraction] = None
    witness: Optional[AttackVectorSolution] = None
    witness_cost: Optional[Fraction] = None
    #: the full report of the probe that established ``lower_bound``.
    witness_report: Optional[ImpactReport] = None
    #: the last probe's report (trace/source even when no witness exists).
    last_report: Optional[ImpactReport] = None
    #: one entry per ``solve_at`` probe, in execution order.
    probes: List[Dict[str, Any]] = field(default_factory=list)
    solve_at_calls: int = 0
    solver_calls: int = 0
    candidates_examined: int = 0
    encodings_built: int = 0
    warm_solves: int = 0
    elapsed_seconds: float = 0.0
    budget_reason: Optional[str] = None
    certificate_error: Optional[str] = None
    certified: Optional[bool] = None
    diagnostics: Optional[ValidationReport] = None

    @property
    def max_increase_percent(self) -> Optional[Fraction]:
        """I* (the bracket's proved-satisfiable end), None without one."""
        return self.lower_bound if self.satisfiable else None

    @property
    def is_rejected(self) -> bool:
        return self.status in ("invalid_input", "degenerate_case")

    @property
    def is_definitive(self) -> bool:
        return self.status in (COMPLETE, CAPPED)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able payload (exact bounds as ``str(Fraction)``)."""
        witness = None
        if self.witness is not None:
            witness = {
                "excluded": list(self.witness.excluded),
                "included": list(self.witness.included),
                "infected_states": list(self.witness.infected_states),
                "altered_measurements":
                    list(self.witness.altered_measurements),
                "compromised_buses": list(self.witness.compromised_buses),
            }
        return {
            "status": self.status,
            "satisfiable": self.satisfiable,
            "max_increase_percent":
                None if self.max_increase_percent is None
                else str(self.max_increase_percent),
            "lower_bound": None if self.lower_bound is None
                else str(self.lower_bound),
            "upper_bound": None if self.upper_bound is None
                else str(self.upper_bound),
            "tolerance": str(self.tolerance),
            "base_cost": str(self.base_cost),
            "witness_cost": None if self.witness_cost is None
                else str(self.witness_cost),
            "witness": witness,
            "probes": list(self.probes),
            "solve_at_calls": self.solve_at_calls,
            "solver_calls": self.solver_calls,
            "candidates_examined": self.candidates_examined,
            "encodings_built": self.encodings_built,
            "warm_solves": self.warm_solves,
            "elapsed_seconds": self.elapsed_seconds,
            "budget_reason": self.budget_reason,
            "certificate_error": self.certificate_error,
            "certified": self.certified,
        }


class MaxImpactSearch:
    """Bisection for I* over one (preferably warm) analysis session.

    ``analyzer`` is anything with the facade ``solve_at`` surface —
    :class:`~repro.core.framework.ImpactAnalyzer` (pass
    ``incremental=True`` for warm re-solves),
    :class:`~repro.core.fast.FastImpactAnalyzer`, or a bare
    :class:`~repro.core.session.AnalysisSession`.  The search itself is
    analyzer-agnostic; extra per-query fields (``with_state_infection``,
    ``max_candidates``, ``state_samples`` ...) pass through
    :meth:`run`'s keyword arguments.
    """

    def __init__(self, analyzer, tolerance=DEFAULT_TOLERANCE,
                 lo=Fraction(0), hi=None, hi_cap=DEFAULT_HI_CAP,
                 budget: Optional[SolverBudget] = None,
                 self_check: Optional[bool] = None) -> None:
        self.analyzer = analyzer
        self.tolerance = to_fraction(tolerance)
        if self.tolerance <= 0:
            raise ModelError("bisection tolerance must be positive")
        self.lo = to_fraction(lo)
        if self.lo < 0:
            raise ModelError("the impact bracket cannot start below 0%")
        self.hi = None if hi is None else to_fraction(hi)
        self.hi_cap = to_fraction(hi_cap) if self.hi is None \
            else to_fraction(hi)
        if self.hi is not None and self.hi <= self.lo:
            raise ModelError("the impact bracket's hi must exceed lo")
        if self.hi_cap <= self.lo:
            raise ModelError("hi_cap must exceed the bracket's lo")
        self.budget = budget
        self.self_check = self_check

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------

    def run(self, **query_attrs) -> MaxImpactResult:
        """Bisect to I*; returns the proved bracket and its witness."""
        started = time.perf_counter()
        self._probes: List[Dict[str, Any]] = []
        self._counters = {"solve_at_calls": 0, "solver_calls": 0,
                          "candidates_examined": 0, "encodings_built": 0,
                          "warm_solves": 0}
        self._lo: Optional[Fraction] = None    # proved satisfiable
        self._hi: Optional[Fraction] = None    # proved unsatisfiable
        self._sat_report: Optional[ImpactReport] = None
        self._last_report: Optional[ImpactReport] = None
        self._abort: Optional[ImpactReport] = None
        self._certified_all = True

        attrs = dict(query_attrs)
        if self.budget is not None:
            attrs["budget"] = self.budget
        if self.self_check is not None:
            attrs["self_check"] = self.self_check

        # 1. Anchor: the bracket's low end must be achievable at all.
        verdict = self._probe(self.lo, attrs)
        if verdict is None:
            return self._finish(None, started)
        if not verdict:
            return self._finish(COMPLETE, started)

        # 2. Gallop to an unsatisfiable upper bound (doubling steps keep
        #    every probe dyadic when lo and the step are).  An explicit
        #    hi skips the gallop; staying satisfiable at the cap ends the
        #    search with the bracket [cap, None).
        if self.hi is not None:
            verdict = self._probe(self.hi, attrs)
            if verdict is None:
                return self._finish(None, started)
            if verdict:
                return self._finish(CAPPED, started)
        else:
            step = Fraction(1)
            while True:
                percent = self.lo + step
                if percent >= self.hi_cap:
                    percent = self.hi_cap
                verdict = self._probe(percent, attrs)
                if verdict is None:
                    return self._finish(None, started)
                if not verdict:
                    break
                if percent == self.hi_cap:
                    return self._finish(CAPPED, started)
                step *= 2

        # 3. Bisect the bracket down to the tolerance.
        while self._hi - self._lo > self.tolerance:
            mid = (self._lo + self._hi) / 2
            if self._probe(mid, attrs) is None:
                return self._finish(None, started)
        return self._finish(COMPLETE, started)

    # ------------------------------------------------------------------
    # Probe bookkeeping
    # ------------------------------------------------------------------

    def _probe(self, percent: Fraction,
               attrs: Dict[str, Any]) -> Optional[bool]:
        """One decision query; None means the search must stop.

        A budget-exhausted *satisfiable* answer still carries a valid
        witness (monotonicity only needs the model's existence), so it
        tightens the lower bound before the search stops; an exhausted
        unsatisfiable answer proves nothing and is discarded.
        """
        report = self.analyzer.solve_at(percent, **attrs)
        self._last_report = report
        counters = self._counters
        counters["solve_at_calls"] += 1
        counters["solver_calls"] += report.solver_calls
        counters["candidates_examined"] += report.candidates_examined
        session = report.trace.session if report.trace is not None else {}
        counters["encodings_built"] += int(
            session.get("encodings_built", 0))
        counters["warm_solves"] += 1 if session.get("warm") else 0
        if report.certified is not True:
            self._certified_all = False
        definitive = report.status == "complete"
        self._probes.append({
            "percent": str(percent),
            "verdict": "sat" if report.satisfiable else "unsat",
            "status": report.status,
            "seconds": report.elapsed_seconds,
        })
        if report.satisfiable and (definitive
                                   or report.status == "budget_exhausted"):
            if self._lo is None or percent > self._lo:
                self._lo = percent
                self._sat_report = report
        elif definitive and not report.satisfiable:
            if self._hi is None or percent < self._hi:
                self._hi = percent
        if not definitive:
            self._abort = report
            return None
        return report.satisfiable

    def _finish(self, status: Optional[str],
                started: float) -> MaxImpactResult:
        abort = self._abort
        budget_reason = None
        certificate_error = None
        diagnostics = None
        if status is None:
            status = abort.status
            budget_reason = abort.budget_reason
            certificate_error = abort.certificate_error
            diagnostics = abort.diagnostics
        report = self._sat_report or self._last_report
        base_cost = Fraction(0)
        if report is not None and not report.is_rejected:
            base_cost = report.base_cost
        if diagnostics is None and report is not None:
            diagnostics = report.diagnostics
        certified: Optional[bool] = None
        if status == CERTIFICATE_ERROR:
            certified = False
        elif self.self_check or (self._last_report is not None
                                 and self._last_report.certified
                                 is not None):
            certified = self._certified_all
        witness = self._sat_report
        return MaxImpactResult(
            status=status,
            satisfiable=self._lo is not None,
            base_cost=base_cost,
            tolerance=self.tolerance,
            lower_bound=self._lo,
            upper_bound=self._hi,
            witness=None if witness is None else witness.attack,
            witness_cost=None if witness is None
                else witness.believed_min_cost,
            witness_report=witness,
            last_report=self._last_report,
            probes=self._probes,
            solve_at_calls=self._counters["solve_at_calls"],
            solver_calls=self._counters["solver_calls"],
            candidates_examined=self._counters["candidates_examined"],
            encodings_built=self._counters["encodings_built"],
            warm_solves=self._counters["warm_solves"],
            elapsed_seconds=time.perf_counter() - started,
            budget_reason=budget_reason,
            certificate_error=certificate_error,
            certified=certified,
            diagnostics=diagnostics)
