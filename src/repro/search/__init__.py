"""Optimization-layer searches on top of warm analysis sessions.

* :mod:`repro.search.max_impact` — :class:`MaxImpactSearch`: exact
  bisection over the cost-increase percentage that turns the repo's
  decision queries ("is a >= k% attack possible?") into the attacker's
  optimization answer ("what is the maximum achievable impact I*?"),
  in O(log((hi-lo)/tolerance)) warm re-solves instead of a linear
  threshold sweep.
"""

from repro.search.max_impact import (
    DEFAULT_TOLERANCE,
    MaxImpactResult,
    MaxImpactSearch,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "MaxImpactResult",
    "MaxImpactSearch",
]
