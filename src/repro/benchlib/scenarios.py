"""Randomized attack scenarios for the scalability evaluation.

Paper Section IV-B: "At each problem size, we perform three experiments
taking different random scenarios, especially in terms of the attacker's
resource limitation."  This module produces those scenario variants
deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional

from repro.grid.caseio import CaseDefinition, MeasurementSpec


def scenario_seeds(count: int = 3, base: int = 2014) -> List[int]:
    """The per-size scenario seeds (2014: the paper's year)."""
    return [base + i for i in range(count)]


def randomize_attacker(case: CaseDefinition, seed: int) -> CaseDefinition:
    """A scenario variant with randomized attacker resources.

    Varies the resource budgets (the paper's emphasis) and sprinkles
    additional measurement protection, while keeping the grid itself —
    and therefore the OPF — untouched.
    """
    rng = random.Random(seed)
    total = case.num_potential_measurements
    buses = case.num_buses

    measurement_budget = max(4, int(total * rng.uniform(0.05, 0.25)))
    bus_budget = max(2, int(buses * rng.uniform(0.15, 0.45)))

    secured_fraction = rng.uniform(0.0, 0.15)
    new_specs = []
    for spec in case.measurement_specs:
        secured = spec.secured or rng.random() < secured_fraction
        new_specs.append(MeasurementSpec(spec.index, spec.taken,
                                         secured, spec.alterable))

    return CaseDefinition(
        name=f"{case.name}-scenario{seed}",
        line_specs=list(case.line_specs),
        measurement_specs=new_specs,
        bus_types=list(case.bus_types),
        generators=list(case.generators),
        loads=list(case.loads),
        resource_measurements=measurement_budget,
        resource_buses=bus_budget,
        base_cost=case.base_cost,
        min_increase_percent=case.min_increase_percent,
    )


def combined_spec(name: str, seed: Optional[int], with_state: bool,
                  percent, analyzer: str = "auto",
                  max_candidates: int = 20, state_samples: int = 8):
    """A sweep-engine :class:`~repro.runner.spec.ScenarioSpec` for one
    Fig.-4 cell: bundled case *name*, attacker randomized with *seed*
    (None: as-is), at impact target *percent*.

    The returned spec reproduces exactly what the pre-engine benchmarks
    ran inline: the same randomized case, query and (for the fast
    analyzer) sampling seed.
    """
    from repro.runner.spec import ScenarioSpec
    return ScenarioSpec.build(
        name, analyzer=analyzer, attacker_seed=seed, target=percent,
        with_state_infection=with_state, max_candidates=max_candidates,
        state_samples=state_samples,
        sample_seed=0 if seed is None else seed)
