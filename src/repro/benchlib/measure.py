"""Time and memory measurement helpers for the evaluation harness."""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass
class MemoryProfile:
    """Peak allocation during a measured run (paper Table IV analogue)."""

    peak_bytes: int
    elapsed_seconds: float

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024 * 1024)


def measured(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """(result, wall-clock seconds) of a call."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def profile_memory(fn: Callable[[], Any]) -> Tuple[Any, MemoryProfile]:
    """Run *fn* under tracemalloc; returns (result, profile).

    The paper reports the SMT solver's memory by model; we report the
    peak Python allocation of building + solving the model, which plays
    the same role (growth *shape* with problem size).

    Reentrancy-safe: when a tracemalloc session is already running (for
    example the sweep engine profiling a task that itself profiles), the
    outer session is left running — only its peak counter is reset so the
    inner measurement stays meaningful.
    """
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    started = time.perf_counter()
    try:
        result = fn()
    finally:
        _, peak = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
    elapsed = time.perf_counter() - started
    return result, MemoryProfile(peak, elapsed)
