"""Time and memory measurement helpers for the evaluation harness."""

from __future__ import annotations

import resource
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass
class MemoryProfile:
    """Peak allocation during a measured run (paper Table IV analogue)."""

    peak_bytes: int
    elapsed_seconds: float

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024 * 1024)


@dataclass
class ResourceProfile:
    """Time + allocation + process-RSS footprint of a measured run.

    ``peak_alloc_bytes`` is tracemalloc's Python-heap high-water mark
    *within the run* — it excludes numpy buffer reuse noise and resets
    per measurement.  ``peak_rss_bytes`` is the OS-reported maximum
    resident set of the whole process so far (``ru_maxrss``); it is a
    monotone high-water mark, so deltas between successive profiles of
    growing problem sizes trace the real memory growth curve.
    """

    peak_alloc_bytes: int
    peak_rss_bytes: int
    elapsed_seconds: float

    @property
    def peak_alloc_mb(self) -> float:
        return self.peak_alloc_bytes / (1024 * 1024)

    @property
    def peak_rss_mb(self) -> float:
        return self.peak_rss_bytes / (1024 * 1024)


def measured(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """(result, wall-clock seconds) of a call."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def profile_memory(fn: Callable[[], Any]) -> Tuple[Any, MemoryProfile]:
    """Run *fn* under tracemalloc; returns (result, profile).

    The paper reports the SMT solver's memory by model; we report the
    peak Python allocation of building + solving the model, which plays
    the same role (growth *shape* with problem size).

    Reentrancy-safe: when a tracemalloc session is already running (for
    example the sweep engine profiling a task that itself profiles), the
    outer session is left running — only its peak counter is reset so the
    inner measurement stays meaningful.
    """
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    started = time.perf_counter()
    try:
        result = fn()
    finally:
        _, peak = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
    elapsed = time.perf_counter() - started
    return result, MemoryProfile(peak, elapsed)


def _max_rss_bytes() -> int:
    """Process max resident set in bytes (``ru_maxrss`` is kB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def profile_resources(fn: Callable[[], Any]
                      ) -> Tuple[Any, ResourceProfile]:
    """Run *fn* under tracemalloc + RSS tracking; (result, profile).

    Reentrant the same way :func:`profile_memory` is: an outer
    tracemalloc session is left running and only its peak counter is
    reset, so nested measurements (a benchmark stage inside a profiled
    sweep) each see their own high-water mark.
    """
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    started = time.perf_counter()
    try:
        result = fn()
    finally:
        _, peak = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
    elapsed = time.perf_counter() - started
    return result, ResourceProfile(peak, _max_rss_bytes(), elapsed)
