"""Benchmark harness support: scenario randomization, time/memory
measurement and paper-style table formatting."""

from repro.benchlib.measure import (
    measured,
    MemoryProfile,
    ResourceProfile,
    profile_memory,
    profile_resources,
)
from repro.benchlib.scenarios import (
    combined_spec,
    randomize_attacker,
    scenario_seeds,
)
from repro.benchlib.tables import format_series, format_table

__all__ = [
    "MemoryProfile",
    "ResourceProfile",
    "combined_spec",
    "format_series",
    "format_table",
    "measured",
    "profile_memory",
    "profile_resources",
    "randomize_attacker",
    "scenario_seeds",
]
