"""Paper-style output formatting for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """A plain ASCII table with a title bar."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(columns)]

    def line(row):
        return " | ".join(v.ljust(w) for v, w in zip(row, widths))

    bar = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", line(cells[0]), bar]
    out.extend(line(r) for r in cells[1:])
    return "\n".join(out)


def format_series(title: str, x_label: str, y_label: str,
                  points: Dict, width: int = 40) -> str:
    """An ASCII bar series: one bar per x value (paper figure analogue)."""
    values = {k: float(v) for k, v in points.items()}
    peak = max(values.values()) if values else 1.0
    peak = peak if peak > 0 else 1.0
    out = [f"== {title} ==", f"   ({y_label} by {x_label})"]
    for key, value in values.items():
        bar = "#" * max(1, int(width * value / peak))
        out.append(f"  {str(key):>12} | {bar} {value:.4g}")
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
