"""Seeded, picklable fault injection for the sweep engine.

The harness wraps the engine's real worker entry point: a
:class:`FaultPlan` maps scenario labels to :class:`Fault` actions, and
:meth:`FaultPlan.task` yields a module-level partial that the engine can
ship to worker processes.  Before delegating to the real worker, the
wrapper consults the plan and — for the first ``fault.times`` attempts of
a faulted scenario — crashes the process, hangs, raises, corrupts the
case text, or replaces the task budget with an instantly-exhausted one.

Determinism: plans are frozen values built either explicitly
(:meth:`FaultPlan.single`) or from a seed (:meth:`FaultPlan.seeded`), and
attempt counting survives process boundaries via per-label marker files
under ``state_dir`` (one byte appended per attempt; ``O_APPEND`` keeps
concurrent workers consistent).  The same plan therefore injects the same
faults on every run.

Cache-side faults do not live in workers: :class:`FlakyResultCache` fails
its first N writes with ``ENOSPC`` and :func:`corrupt_cached_outcome`
mangles an entry in place, exercising the engine's degraded paths.

Certificate-corruption faults target certified solving
(:mod:`repro.smt.certificates`): :func:`tamper_model` bit-flips one
assignment of a satisfying model, :func:`truncate_proof` and
:func:`corrupt_proof` damage an UNSAT certificate, and
:func:`write_stale_cache_entry` plants a *structurally valid but
semantically wrong* cached outcome — the kind only the engine's
load-time re-verification can catch.  The chaos suite proves each of
these is surfaced as a certificate error (or recomputed), never silently
accepted as sat/unsat.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache

#: fault kinds.
CRASH_WORKER = "crash_worker"       # os._exit: the pool sees a dead worker
HANG_WORKER = "hang_worker"         # sleep past the task timeout
RAISE_ERROR = "raise_error"         # deterministic in-task exception
CORRUPT_CASE = "corrupt_case"       # unparsable case text reaches the task
EXHAUST_BUDGET = "exhaust_budget"   # instantly-exhausted solver budget
FAIL_CACHE_WRITE = "fail_cache_write"  # injected ENOSPC on cache writes
#: service-level kinds (the analysis daemon's chaos suite):
SLOW_RESPONSE = "slow_response"     # worker answers late but correctly
DROP_CONNECTION = "drop_connection"  # acceptor closes mid-response
#: fabric-level kinds (the distributed sweep's chaos suite):
STRAGGLER = "straggler"             # unit held idle: speculation target
PARTITION = "partition"             # heartbeats suppressed; work goes on
LEASE_LOSS = "lease_loss"           # unit silently abandoned, no commit
COORDINATOR_KILL = "coordinator_kill"  # coordinator dies post-commit

#: kinds a worker-side plan can apply.  CRASH_WORKER is excluded from
#: seeded defaults: in serial mode it would kill the host process.
WORKER_KINDS = (HANG_WORKER, RAISE_ERROR, CORRUPT_CASE, EXHAUST_BUDGET)

#: kinds a :class:`ServiceFaultPlan` can apply — crash/hang target the
#: service's worker processes, slow-response delays an answer without
#: corrupting it, drop-connection severs the client's socket (the
#: client must retry), and fail-cache-write injects ENOSPC into the
#: worker's checkpoint writes (the bounded retry must absorb it).
SERVICE_KINDS = (CRASH_WORKER, HANG_WORKER, SLOW_RESPONSE,
                 DROP_CONNECTION, FAIL_CACHE_WRITE)

#: kinds a :class:`FabricFaultPlan` can apply — crash/hang target a
#: fabric worker mid-unit, ``straggler`` holds a leased unit idle long
#: enough to trigger speculative re-dispatch, ``partition`` suppresses
#: heartbeats (the lease expires while the work continues),
#: ``lease_loss`` abandons the unit without committing, and
#: ``coordinator_kill`` makes the *coordinator* die right after
#: journaling a commit (the resume path's worst case).
FABRIC_KINDS = (CRASH_WORKER, HANG_WORKER, STRAGGLER, PARTITION,
                LEASE_LOSS, COORDINATOR_KILL)

_EXHAUSTED_BUDGET = {"wall_seconds": 0.0, "max_conflicts": 1,
                     "max_decisions": 1, "max_pivots": 1,
                     "check_interval": 1}

_GARBAGE_CASE = "this is not a case file {{{\n"


class InjectedFault(RuntimeError):
    """Raised by RAISE_ERROR faults (distinguishable from real bugs)."""


def _attempt_marker(state_dir: str, label: str) -> Path:
    digest = hashlib.sha256(label.encode()).hexdigest()[:16]
    return Path(state_dir) / f"{digest}.attempts"


def _record_attempt(state_dir: str, label: str) -> int:
    """Count an attempt cross-process; returns the 1-based number.

    One byte appended per attempt; ``O_APPEND`` keeps concurrent workers
    (and restarted ones — the whole point for the service plans)
    consistent.
    """
    marker = _attempt_marker(state_dir, label)
    marker.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
    try:
        os.write(fd, b".")
    finally:
        os.close(fd)
    return marker.stat().st_size


def _count_attempts(state_dir: str, label: str) -> int:
    marker = _attempt_marker(state_dir, label)
    return marker.stat().st_size if marker.exists() else 0


@dataclass(frozen=True)
class Fault:
    """One fault action, applied on the first ``times`` attempts."""

    kind: str
    times: int = 1
    sleep_seconds: float = 0.5

    def __post_init__(self) -> None:
        known = (CRASH_WORKER, HANG_WORKER, RAISE_ERROR, CORRUPT_CASE,
                 EXHAUST_BUDGET, SLOW_RESPONSE, DROP_CONNECTION,
                 FAIL_CACHE_WRITE, STRAGGLER, PARTITION, LEASE_LOSS,
                 COORDINATOR_KILL)
        if self.kind not in known:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "times": self.times,
                "sleep_seconds": self.sleep_seconds}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Fault":
        return cls(kind=payload["kind"],
                   times=int(payload.get("times", 1)),
                   sleep_seconds=float(payload.get("sleep_seconds", 0.5)))


@dataclass(frozen=True)
class FaultPlan:
    """Frozen label -> fault mapping with cross-process attempt counts."""

    state_dir: str
    faults: Tuple[Tuple[str, Fault], ...] = ()

    # -- construction ----------------------------------------------------

    @classmethod
    def single(cls, state_dir, label: str, fault: Fault) -> "FaultPlan":
        return cls(state_dir=str(state_dir), faults=((label, fault),))

    @classmethod
    def seeded(cls, state_dir, labels: Iterable[str], seed: int,
               rate: float = 0.5,
               kinds: Sequence[str] = WORKER_KINDS) -> "FaultPlan":
        """Deterministically fault a ``rate`` fraction of *labels*."""
        rng = random.Random(seed)
        faults = []
        for label in labels:
            if rng.random() < rate:
                kind = rng.choice(list(kinds))
                faults.append((label, Fault(kind, times=1,
                                            sleep_seconds=0.5)))
        return cls(state_dir=str(state_dir), faults=tuple(faults))

    # -- plan queries ----------------------------------------------------

    def fault_for(self, label: str) -> Optional[Fault]:
        for name, fault in self.faults:
            if name == label:
                return fault
        return None

    def _marker(self, label: str) -> Path:
        return _attempt_marker(self.state_dir, label)

    def record_attempt(self, label: str) -> int:
        """Count this attempt; returns the 1-based attempt number."""
        return _record_attempt(self.state_dir, label)

    def attempts(self, label: str) -> int:
        return _count_attempts(self.state_dir, label)

    # -- engine integration ----------------------------------------------

    def task(self):
        """A picklable SweepEngine task wrapping the real worker."""
        return functools.partial(faulty_worker, self)


def apply_fault(fault: Fault, payload: Dict[str, Any]) -> None:
    """Mutate *payload* / the process according to *fault*."""
    if fault.kind == CRASH_WORKER:
        # A hard death (no exception, no cleanup) — what an OOM kill or a
        # native-library segfault looks like to the pool.
        os._exit(23)
    elif fault.kind == HANG_WORKER:
        time.sleep(fault.sleep_seconds)
    elif fault.kind == RAISE_ERROR:
        raise InjectedFault(
            f"injected failure for {payload['spec'].get('label', '?')}")
    elif fault.kind == CORRUPT_CASE:
        payload["spec"] = dict(payload["spec"])
        payload["spec"]["case_text"] = _GARBAGE_CASE
    elif fault.kind == EXHAUST_BUDGET:
        payload["budget"] = dict(_EXHAUSTED_BUDGET)


def faulty_worker(plan: FaultPlan,
                  payload: Dict[str, Any]) -> Dict[str, Any]:
    """Module-level (picklable) worker: maybe fault, then run for real."""
    from repro.runner.engine import _worker_entry
    label = payload["spec"].get("label", "")
    attempt = plan.record_attempt(label)
    fault = plan.fault_for(label)
    if fault is not None and attempt <= fault.times:
        apply_fault(fault, payload)
    return _worker_entry(payload)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Frozen fault plan for the analysis service's chaos suite.

    Unlike :class:`FaultPlan` (which wraps the sweep engine's picklable
    task), a service plan crosses *process* boundaries by file: tests
    write it with :meth:`to_file` and hand the path to the server via
    ``ServiceConfig.fault_plan`` (or the ``REPRO_SERVICE_FAULTS``
    environment variable); workers and the acceptor re-read it per
    request.  Attempt counting shares the sweep harness's marker-file
    ledger, so a fault scheduled for the first N attempts of a label
    stays exhausted across worker restarts — exactly what "crash once,
    then succeed on retry" scenarios need.

    Worker-side kinds: ``crash_worker`` (``os._exit`` mid-request),
    ``hang_worker`` (sleep past the supervisor's hang deadline),
    ``slow_response`` (sleep, then answer correctly) and
    ``fail_cache_write`` (ENOSPC injected into checkpoint writes).
    Acceptor-side: ``drop_connection`` (the response socket is severed,
    so the client's retry loop must recover).
    """

    state_dir: str
    faults: Tuple[Tuple[str, Fault], ...] = ()

    #: kinds this plan class accepts; subclasses override.
    KINDS: Tuple[str, ...] = SERVICE_KINDS
    #: env var ``load`` falls back to; subclasses override.
    ENV_VAR: str = "REPRO_SERVICE_FAULTS"

    @classmethod
    def build(cls, state_dir,
              faults: Dict[str, Fault]) -> "ServiceFaultPlan":
        for fault in faults.values():
            if fault.kind not in cls.KINDS:
                raise ValueError(
                    f"{fault.kind!r} is not a {cls.__name__} kind")
        return cls(state_dir=str(state_dir),
                   faults=tuple(sorted(faults.items())))

    @classmethod
    def single(cls, state_dir, label: str,
               fault: Fault) -> "ServiceFaultPlan":
        return cls.build(state_dir, {label: fault})

    # -- file round-trip (crosses the daemon's process boundaries) -----

    def to_file(self, path) -> str:
        payload = {
            "state_dir": self.state_dir,
            "faults": [[label, fault.to_dict()]
                       for label, fault in self.faults],
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=1))
        return str(target)

    @classmethod
    def from_file(cls, path) -> "ServiceFaultPlan":
        payload = json.loads(Path(path).read_text())
        return cls(
            state_dir=payload["state_dir"],
            faults=tuple((label, Fault.from_dict(fault))
                         for label, fault in payload["faults"]))

    @classmethod
    def load(cls, path: Optional[str]) -> Optional["ServiceFaultPlan"]:
        """``from_file`` with env-var fallback; None when unconfigured."""
        path = path or os.environ.get(cls.ENV_VAR)
        if not path:
            return None
        return cls.from_file(path)

    # -- queries and application ---------------------------------------

    def fault_for(self, label: str,
                  kinds: Optional[Sequence[str]] = None
                  ) -> Optional[Fault]:
        for name, fault in self.faults:
            if name == label and (kinds is None or fault.kind in kinds):
                return fault
        return None

    def attempts(self, label: str) -> int:
        return _count_attempts(self.state_dir, label)

    def should_fire(self, label: str, fault: Fault,
                    channel: str = "") -> bool:
        """Record one attempt on *label* (per channel) and decide."""
        attempt = _record_attempt(self.state_dir, label + channel)
        return attempt <= fault.times

    def apply_worker_fault(self, label: str) -> None:
        """Crash/hang/slow this worker per the plan (called per job)."""
        fault = self.fault_for(
            label, (CRASH_WORKER, HANG_WORKER, SLOW_RESPONSE))
        if fault is None or not self.should_fire(label, fault):
            return
        if fault.kind == CRASH_WORKER:
            os._exit(23)
        time.sleep(fault.sleep_seconds)     # hang or slow-response

    def wrap_cache(self, label: str, cache):
        """The job's cache, flaky per the plan (or unchanged)."""
        fault = self.fault_for(label, (FAIL_CACHE_WRITE,))
        if fault is None or cache is None:
            return cache
        return PlannedFlakyCache(cache.root, self, label, fault.times)

    def should_drop_connection(self, label: str) -> bool:
        """Acceptor-side: sever this response's socket?"""
        fault = self.fault_for(label, (DROP_CONNECTION,))
        return fault is not None \
            and self.should_fire(label, fault, channel="#drop")


class PlannedFlakyCache(ResultCache):
    """A cache whose first N writes for a label fail with ENOSPC.

    Attempt counting lives in the plan's marker-file ledger, so the
    injected failures stay deterministic across worker restarts and
    across the retry loop inside :meth:`ResultCache.try_put`.
    """

    def __init__(self, root, plan: ServiceFaultPlan, label: str,
                 fail_writes: int) -> None:
        super().__init__(root)
        self._plan = plan
        self._label = label
        self._fail_writes = fail_writes

    def put(self, fingerprint: str, outcome: Dict[str, Any]) -> None:
        attempt = _record_attempt(self._plan.state_dir,
                                  self._label + "#cachewrite")
        if attempt <= self._fail_writes:
            raise OSError(28, "No space left on device (injected)")
        super().put(fingerprint, outcome)


@dataclass(frozen=True)
class FabricFaultPlan(ServiceFaultPlan):
    """Frozen fault plan for the distributed sweep fabric's chaos suite.

    Crosses process boundaries the same way :class:`ServiceFaultPlan`
    does (``to_file`` + the ``REPRO_FABRIC_FAULTS`` environment
    variable), but its kinds target the *fabric* failure model: a fault
    is keyed by scenario label and fires when a worker leases a unit
    containing that label (or, for ``coordinator_kill``, when the
    coordinator journals a commit for such a unit).

    Worker-side kinds — the worker loop interprets them:

    * ``crash_worker`` — ``os._exit`` mid-unit, before any commit;
    * ``hang_worker`` — sleep past the lease TTL with heartbeats
      stopped, then resume (the late commit must be a duplicate);
    * ``straggler`` — keep heartbeating but stall the computation, so
      only *speculative re-dispatch* can finish the unit on time;
    * ``partition`` — suppress heartbeats while computing normally (the
      coordinator expires the lease; the eventual commit races the
      re-dispatched copy — first one wins);
    * ``lease_loss`` — silently abandon the unit: no commit, no error,
      recovery rides entirely on lease expiry.

    Coordinator-side: ``coordinator_kill`` — ``os._exit(5)`` right
    after journaling the commit of a unit containing the label, the
    resume path's worst case (the commit is durable, the in-memory
    queue is gone).
    """

    KINDS: Tuple[str, ...] = FABRIC_KINDS
    ENV_VAR: str = "REPRO_FABRIC_FAULTS"

    #: kinds the worker loop applies when it leases a unit.
    WORKER_SIDE = (CRASH_WORKER, HANG_WORKER, STRAGGLER, PARTITION,
                   LEASE_LOSS)

    def unit_fault(self, labels: Sequence[str]
                   ) -> Optional[Tuple[str, Fault]]:
        """The worker-side fault to apply to a unit, if any fires.

        Checks each scenario label in the unit against the plan; the
        first matching worker-side fault whose attempt budget is not
        yet exhausted is recorded (marker-file ledger, so re-dispatched
        copies of the unit see it already spent) and returned.
        """
        for label in labels:
            fault = self.fault_for(label, self.WORKER_SIDE)
            if fault is not None \
                    and self.should_fire(label, fault, channel="#unit"):
                return label, fault
        return None

    def should_kill_coordinator(self, labels: Sequence[str]) -> bool:
        """Coordinator-side: die right after journaling this commit?"""
        for label in labels:
            fault = self.fault_for(label, (COORDINATOR_KILL,))
            if fault is not None \
                    and self.should_fire(label, fault, channel="#ckill"):
                return True
        return False


def interrupting_worker(state_dir: str, limit: int,
                        payload: Dict[str, Any]) -> Dict[str, Any]:
    """Serial-mode worker that raises KeyboardInterrupt after *limit*
    completed tasks (simulating a user hitting Ctrl-C mid-sweep)."""
    from repro.runner.engine import _worker_entry
    marker = Path(state_dir) / "interrupt.count"
    marker.parent.mkdir(parents=True, exist_ok=True)
    done = marker.stat().st_size if marker.exists() else 0
    if done >= limit:
        raise KeyboardInterrupt
    result = _worker_entry(payload)
    with open(marker, "a") as handle:
        handle.write(".")
    return result


def interrupt_after(state_dir, limit: int):
    """A picklable task that completes *limit* scenarios then interrupts."""
    return functools.partial(interrupting_worker, str(state_dir), limit)


class FlakyResultCache(ResultCache):
    """A result cache whose first ``fail_writes`` puts raise ENOSPC."""

    def __init__(self, root, fail_writes: int = 1) -> None:
        super().__init__(root)
        self.fail_writes = fail_writes
        self.write_attempts = 0

    def put(self, fingerprint: str, outcome: Dict[str, Any]) -> None:
        self.write_attempts += 1
        if self.write_attempts <= self.fail_writes:
            raise OSError(28, "No space left on device (injected)")
        super().put(fingerprint, outcome)


def corrupt_cached_outcome(cache: ResultCache, fingerprint: str,
                           field_name: str, value: Any) -> None:
    """Overwrite one field of a cached outcome in place (envelope stays
    valid JSON with the right version/fingerprint — only the outcome
    payload is malformed, exercising the validate-on-read path)."""
    path = cache._path(fingerprint)
    with open(path) as handle:
        envelope = json.load(handle)
    envelope["outcome"][field_name] = value
    with open(path, "w") as handle:
        json.dump(envelope, handle, indent=1)


# ---------------------------------------------------------------------------
# Certificate-corruption faults
# ---------------------------------------------------------------------------

def tamper_model(model, bool_var=None, real_var=None):
    """A copy of *model* with one assignment bit-flipped.

    Flips the named boolean variable (default: the first one in the
    model) or, when ``real_var`` is given, perturbs that real value by
    one — either way the result is a *plausible-looking* but wrong model
    that :func:`repro.smt.certificates.check_model` must reject.
    """
    from repro.smt.solver import Model
    bools = dict(model._bools)
    reals = dict(model._reals)
    if real_var is not None:
        reals[real_var] = reals[real_var] + 1
    else:
        if bool_var is None:
            if not bools:
                raise ValueError("model has no boolean variables to flip")
            bool_var = next(iter(bools))
        bools[bool_var] = not bools[bool_var]
    return Model(bools, reals)


def truncate_proof(certificate, drop: int = 1):
    """An UNSAT certificate missing its last *drop* proof steps — the
    refutation no longer closes, so the RUP check must fail."""
    from repro.smt.proof import UnsatCertificate
    return UnsatCertificate(certificate.proof,
                            max(0, certificate.num_steps - drop),
                            certificate.assumption_lits)


def corrupt_proof(certificate, step_index: Optional[int] = None):
    """An UNSAT certificate with one learned clause's literal rewritten.

    The first literal of a RUP step (the first one by default) is
    replaced with a literal over a *fresh* variable the proof has never
    seen.  Merely negating a literal can leave the clause derivable —
    once enough contradiction has accumulated, *any* clause is RUP — but
    a fresh variable has no occurrences to propagate over, so the
    tampered step can only pass if the preceding steps were already
    contradictory, which cannot happen in a verified prefix.
    """
    from repro.smt.proof import ProofLog, UnsatCertificate, RUP
    steps = list(certificate.steps)
    if step_index is None:
        candidates = [i for i, s in enumerate(steps) if s.kind == RUP
                      and s.lits]
        if not candidates:
            raise ValueError("certificate has no RUP step to corrupt")
        step_index = candidates[0]
    step = steps[step_index]
    if not step.lits:
        raise ValueError("cannot corrupt an empty clause")
    fresh = 1 + max((max(abs(l) for l in s.lits) for s in steps if s.lits),
                    default=0)
    tampered = (fresh,) + step.lits[1:]
    steps[step_index] = type(step)(step.kind, tampered, step.witness)
    log = ProofLog(steps)
    return UnsatCertificate(log, len(steps), certificate.assumption_lits)


def write_stale_cache_entry(cache: ResultCache, fingerprint: str,
                            outcome_payload: Dict[str, Any],
                            **mutations: Any) -> None:
    """Plant a *structurally valid* but semantically wrong cached entry.

    Unlike :func:`corrupt_cached_outcome` (which breaks the payload's
    shape), the mutated fields keep their types — e.g. a flipped
    ``satisfiable``, an inflated ``believed_min_cost`` or a cleared
    ``certified`` flag — so only the engine's semantic re-verification
    (:func:`repro.runner.engine.verify_cached_outcome`) can tell the
    entry is lying.
    """
    payload = json.loads(json.dumps(outcome_payload))   # deep copy
    payload.update(mutations)
    cache.put(fingerprint, payload)
