"""Deterministic fault injection for robustness testing.

:mod:`repro.testing.faults` provides picklable fault plans that make
sweep workers crash, hang, error, corrupt their inputs or exhaust their
solver budgets on demand — plus cache doubles whose writes fail or whose
entries are corrupted.  The chaos suite (``tests/chaos/``) drives the
sweep engine through these to assert it always terminates with one
outcome per scenario.
"""

from repro.testing.faults import (
    CRASH_WORKER,
    CORRUPT_CASE,
    EXHAUST_BUDGET,
    FAIL_CACHE_WRITE,
    HANG_WORKER,
    RAISE_ERROR,
    Fault,
    FaultPlan,
    FlakyResultCache,
    InjectedFault,
    corrupt_cached_outcome,
    interrupt_after,
)

__all__ = [
    "CRASH_WORKER",
    "CORRUPT_CASE",
    "EXHAUST_BUDGET",
    "FAIL_CACHE_WRITE",
    "HANG_WORKER",
    "RAISE_ERROR",
    "Fault",
    "FaultPlan",
    "FlakyResultCache",
    "InjectedFault",
    "corrupt_cached_outcome",
    "interrupt_after",
]
