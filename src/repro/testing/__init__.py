"""Deterministic fault injection for robustness testing.

:mod:`repro.testing.faults` provides picklable fault plans that make
sweep workers crash, hang, error, corrupt their inputs or exhaust their
solver budgets on demand — plus cache doubles whose writes fail or whose
entries are corrupted, and certificate-corruption helpers (tampered
models, truncated/corrupted UNSAT proofs, semantically stale cache
entries) for certified-mode testing.  The chaos suite (``tests/chaos/``)
drives the sweep engine through these to assert it always terminates
with one outcome per scenario and that corrupted certificates are never
silently accepted.

:mod:`repro.testing.fuzz` complements the fault harness with seeded
text-level *input* fuzzing: corrupted case files driven through the
parse → preflight → analyze path to prove no malformed input escapes as
an uncaught exception (``python -m repro fuzz``).

:mod:`repro.testing.degenerate` fuzzes case *numerics* instead of case
text: seeded ill-conditioned mutants (near-singular B matrices, extreme
admittance ratios, near-redundant measurement sets) driven through both
the float and the exact verdict paths to prove they never silently
disagree (``python -m repro fuzz --degenerate``).
"""

from repro.testing.fuzz import (
    ESCAPE,
    CaseFuzzer,
    FuzzRecord,
    FuzzReport,
    Mutant,
    analyze_text,
    fuzz_bundled_case,
    run_fuzz,
)
from repro.testing.degenerate import (
    SILENT_DISAGREEMENT,
    DegenerateFuzzer,
    DegenerateMutant,
    DegenerateRecord,
    DegenerateReport,
    fuzz_degenerate_case,
    run_degenerate_fuzz,
)
from repro.testing.faults import (
    COORDINATOR_KILL,
    CRASH_WORKER,
    CORRUPT_CASE,
    DROP_CONNECTION,
    EXHAUST_BUDGET,
    FABRIC_KINDS,
    FAIL_CACHE_WRITE,
    HANG_WORKER,
    LEASE_LOSS,
    PARTITION,
    RAISE_ERROR,
    SERVICE_KINDS,
    SLOW_RESPONSE,
    STRAGGLER,
    FabricFaultPlan,
    Fault,
    FaultPlan,
    FlakyResultCache,
    InjectedFault,
    PlannedFlakyCache,
    ServiceFaultPlan,
    corrupt_cached_outcome,
    corrupt_proof,
    interrupt_after,
    tamper_model,
    truncate_proof,
    write_stale_cache_entry,
)

__all__ = [
    "ESCAPE",
    "CaseFuzzer",
    "FuzzRecord",
    "FuzzReport",
    "Mutant",
    "analyze_text",
    "fuzz_bundled_case",
    "run_fuzz",
    "SILENT_DISAGREEMENT",
    "DegenerateFuzzer",
    "DegenerateMutant",
    "DegenerateRecord",
    "DegenerateReport",
    "fuzz_degenerate_case",
    "run_degenerate_fuzz",
    "COORDINATOR_KILL",
    "CRASH_WORKER",
    "CORRUPT_CASE",
    "DROP_CONNECTION",
    "EXHAUST_BUDGET",
    "FABRIC_KINDS",
    "FAIL_CACHE_WRITE",
    "HANG_WORKER",
    "LEASE_LOSS",
    "PARTITION",
    "RAISE_ERROR",
    "SERVICE_KINDS",
    "SLOW_RESPONSE",
    "STRAGGLER",
    "FabricFaultPlan",
    "Fault",
    "FaultPlan",
    "FlakyResultCache",
    "InjectedFault",
    "PlannedFlakyCache",
    "ServiceFaultPlan",
    "corrupt_cached_outcome",
    "corrupt_proof",
    "interrupt_after",
    "tamper_model",
    "truncate_proof",
    "write_stale_cache_entry",
]
