"""Seeded degeneracy fuzzing: ill-conditioned grids vs the guardrails.

Where :mod:`repro.testing.fuzz` corrupts case *text* against the
preflight boundary, this module corrupts case *numerics* against the
numerical-integrity layer: near-singular susceptance matrices (line
admittances scaled toward zero), extreme admittance ratios across the
grid, near-redundant measurement sets hovering at the observability
boundary, loads pinned against their plausibility bounds and squeezed
line capacities.

Every mutant is driven through the fast analyzer twice — once on the
normal float path, once with the Eq. 37 escalation band forced open so
the verdict is always re-decided on the exact rational path — plus a
*boundary probe* that replays any satisfiable verdict's achieved
increase back as the target, landing the query exactly on the Eq. 37
boundary.  Two invariants:

* **no escape** — no mutant may raise an uncaught exception; the
  guards must degrade it to ``numerical_unstable`` or the preflight
  must reject it, exactly like ``python -m repro analyze`` would;
* **no silent float/exact disagreement** — wherever both paths reach a
  verdict, they agree, or the float path's report shows the divergence
  (a ``numeric.boundary_escalated`` run note or a non-``complete``
  status).  A disagreement with neither marker is recorded and fails
  the run.

Mutants are seeded and per-iteration addressable
(``random.Random(f"{seed}:{iteration}")``), so a failure found in CI
replays locally with ``python -m repro fuzz --degenerate --seed ...``.
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.grid.caseio import CaseDefinition
from repro.testing.fuzz import ESCAPE

#: synthetic status for a recorded float/exact divergence that neither
#: escalated nor surfaced as a degraded status.
SILENT_DISAGREEMENT = "silent_disagreement"

#: run-note code the session attaches when a verdict was escalated.
_ESCALATION_CODE = "numeric.boundary_escalated"


def _clone(case: CaseDefinition) -> CaseDefinition:
    """A mutation-safe copy (the list fields are shared by replace())."""
    return replace(case,
                   line_specs=list(case.line_specs),
                   measurement_specs=list(case.measurement_specs),
                   bus_types=list(case.bus_types),
                   generators=list(case.generators),
                   loads=list(case.loads))


# -- degeneracy operators ------------------------------------------------
#
# Each operator mutates ``case`` in place and returns a description, or
# returns None when it has no applicable site.  All mutants stay
# *well-formed* (positive admittances, loads inside their bounds): the
# point is to stress the numerics, not the parser.

def _near_singular_line(rng: random.Random,
                        case: CaseDefinition) -> Optional[str]:
    """Scale one admittance toward zero: B drifts toward singular."""
    position = rng.randrange(len(case.line_specs))
    spec = case.line_specs[position]
    k = rng.randint(6, 12)
    case.line_specs[position] = replace(
        spec, admittance=spec.admittance / 10 ** k)
    return f"line {spec.index}: admittance /1e{k} (near-singular B)"


def _huge_admittance(rng: random.Random,
                     case: CaseDefinition) -> Optional[str]:
    position = rng.randrange(len(case.line_specs))
    spec = case.line_specs[position]
    k = rng.randint(4, 9)
    case.line_specs[position] = replace(
        spec, admittance=spec.admittance * 10 ** k)
    return f"line {spec.index}: admittance x1e{k}"


def _extreme_ratio(rng: random.Random,
                   case: CaseDefinition) -> Optional[str]:
    """Push two admittances apart: extreme ratios across the grid."""
    if len(case.line_specs) < 2:
        return None
    up, down = rng.sample(range(len(case.line_specs)), 2)
    k = rng.randint(3, 6)
    up_spec, down_spec = case.line_specs[up], case.line_specs[down]
    case.line_specs[up] = replace(
        up_spec, admittance=up_spec.admittance * 10 ** k)
    case.line_specs[down] = replace(
        down_spec, admittance=down_spec.admittance / 10 ** k)
    return (f"lines {up_spec.index}/{down_spec.index}: "
            f"admittance ratio stretched by 1e{2 * k}")


def _shed_measurements(rng: random.Random,
                       case: CaseDefinition) -> Optional[str]:
    """Clear taken flags: the measurement set nears unobservability."""
    taken = [i for i, m in enumerate(case.measurement_specs) if m.taken]
    if not taken:
        return None
    shed = rng.sample(taken, min(len(taken), rng.randint(1, 4)))
    for position in shed:
        case.measurement_specs[position] = replace(
            case.measurement_specs[position], taken=False)
    dropped = [case.measurement_specs[p].index for p in sorted(shed)]
    return f"measurements {dropped}: taken flag cleared"


def _load_to_bound(rng: random.Random,
                   case: CaseDefinition) -> Optional[str]:
    """Pin one existing load a hair inside its plausibility bound."""
    if not case.loads:
        return None
    position = rng.randrange(len(case.loads))
    load = case.loads[position]
    span = load.p_max - load.p_min
    if span <= 0:
        return None
    margin = span / 10 ** rng.randint(7, 10)
    if rng.random() < 0.5:
        existing, edge = load.p_max - margin, "p_max"
    else:
        existing, edge = load.p_min + margin, "p_min"
    case.loads[position] = replace(load, existing=existing)
    return f"load at bus {load.bus}: existing pinned near {edge}"


def _squeeze_capacity(rng: random.Random,
                      case: CaseDefinition) -> Optional[str]:
    position = rng.randrange(len(case.line_specs))
    spec = case.line_specs[position]
    divisor = rng.randint(2, 8)
    case.line_specs[position] = replace(
        spec, capacity=spec.capacity / divisor)
    return f"line {spec.index}: capacity /{divisor}"


#: operator pool; the conditioning attacks are repeated so roughly half
#: of all mutations target the susceptance matrix itself.
OPERATORS: Tuple[Callable[[random.Random, CaseDefinition],
                          Optional[str]], ...] = (
    _near_singular_line, _near_singular_line,
    _extreme_ratio, _extreme_ratio,
    _huge_admittance,
    _shed_measurements,
    _load_to_bound,
    _squeeze_capacity,
)


@dataclass(frozen=True)
class DegenerateMutant:
    """One ill-conditioned case, addressable by iteration number."""

    iteration: int
    case: CaseDefinition
    mutations: Tuple[str, ...]


class DegenerateFuzzer:
    """Deterministic stream of ill-conditioned case mutants.

    Mutant ``i`` depends only on ``(base case, seed, i)``, mirroring
    :class:`~repro.testing.fuzz.CaseFuzzer`.
    """

    def __init__(self, base: CaseDefinition, seed: int = 0,
                 max_mutations: int = 2) -> None:
        self.base = base
        self.seed = seed
        self.max_mutations = max_mutations

    def mutant(self, iteration: int) -> DegenerateMutant:
        rng = random.Random(f"{self.seed}:{iteration}")
        case = _clone(self.base)
        applied: List[str] = []
        wanted = rng.randint(1, self.max_mutations)
        for _ in range(10 * wanted):
            if len(applied) >= wanted:
                break
            description = rng.choice(OPERATORS)(rng, case)
            if description is not None:
                applied.append(description)
        case.name = f"{self.base.name}-degenerate-{iteration}"
        return DegenerateMutant(iteration, case, tuple(applied))


# -- driving mutants through both verdict paths --------------------------

def _fast_report(case: CaseDefinition, *,
                 escalation_band: Optional[float] = None,
                 target: Optional[Fraction] = None):
    from repro.core import FastImpactAnalyzer, FastQuery
    query = FastQuery(state_samples=2)
    if escalation_band is not None:
        query.escalation_band = escalation_band
    if target is not None:
        query.target_increase_percent = target
    return FastImpactAnalyzer(case).analyze(query)


def _verdict(report) -> str:
    if report.status == "complete":
        return "sat" if report.satisfiable else "unsat"
    return report.status


def _escalated(report) -> bool:
    if report.diagnostics is None:
        return False
    return any(d.code == _ESCALATION_CODE
               for d in report.diagnostics.diagnostics)


def _escalation_count(report) -> int:
    trace = getattr(report, "trace", None)
    if trace is None or not getattr(trace, "session", None):
        return 0
    return int(trace.session.get("boundary_escalations", 0) or 0)


@dataclass
class DegenerateRecord:
    """Outcome of one mutant across both verdict paths."""

    iteration: int
    status: str            # float-path verdict (or ESCAPE)
    exact_status: str      # forced-exact-path verdict
    mutations: Tuple[str, ...]
    probe_status: Optional[str] = None
    escalated: bool = False
    detail: Optional[str] = None


@dataclass
class DegenerateReport:
    """Aggregated result of a degeneracy fuzz run."""

    case: str
    seed: int
    iterations: int
    counts: Dict[str, int] = field(default_factory=dict)
    escapes: List[DegenerateRecord] = field(default_factory=list)
    disagreements: List[DegenerateRecord] = field(default_factory=list)
    escalations: int = 0
    boundary_probes: int = 0
    elapsed_seconds: float = 0.0
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.escapes and not self.disagreements

    def render(self) -> str:
        lines = [f"degenerate fuzz {self.case} (seed={self.seed}): "
                 f"{self.iterations} mutants in "
                 f"{self.elapsed_seconds:.1f}s"
                 + (" [truncated by time limit]" if self.truncated
                    else "")]
        for status in sorted(self.counts):
            lines.append(f"  {status:20s} {self.counts[status]}")
        lines.append(f"  boundary probes      {self.boundary_probes}")
        lines.append(f"  exact escalations    {self.escalations}")
        for record in self.escapes:
            lines.append(f"ESCAPE at iteration {record.iteration} "
                         f"(mutations: {', '.join(record.mutations)}):")
            for raw in (record.detail or "").rstrip().splitlines():
                lines.append(f"  {raw}")
        for record in self.disagreements:
            lines.append(
                f"SILENT DISAGREEMENT at iteration {record.iteration} "
                f"(mutations: {', '.join(record.mutations)}): "
                f"{record.detail}")
        if self.ok:
            lines.append("float and exact paths never silently disagreed")
        return "\n".join(lines)


def run_degenerate_fuzz(base: CaseDefinition, *, case: str = "case",
                        seed: int = 0, iterations: int = 200,
                        max_mutations: int = 2,
                        time_limit: Optional[float] = None,
                        on_record: Optional[
                            Callable[[DegenerateRecord], None]] = None,
                        ) -> DegenerateReport:
    """Fuzz ``base`` with degeneracy operators; tally both-path verdicts.

    Never raises on a misbehaving mutant: exceptions become ``escape``
    records, float/exact divergences without an escalation marker become
    ``silent_disagreement`` records, and :attr:`DegenerateReport.ok`
    summarizes the invariant.
    """
    fuzzer = DegenerateFuzzer(base, seed=seed,
                              max_mutations=max_mutations)
    report = DegenerateReport(case=case, seed=seed,
                              iterations=iterations)
    started = time.monotonic()
    for iteration in range(iterations):
        if time_limit is not None \
                and time.monotonic() - started > time_limit:
            report.truncated = True
            report.iterations = iteration
            break
        mutant = fuzzer.mutant(iteration)
        record = _examine(mutant, report)
        report.counts[record.status] = \
            report.counts.get(record.status, 0) + 1
        if record.status == ESCAPE:
            report.escapes.append(record)
        if on_record is not None:
            on_record(record)
    report.elapsed_seconds = time.monotonic() - started
    return report


def _examine(mutant: DegenerateMutant,
             report: DegenerateReport) -> DegenerateRecord:
    """Run one mutant through float path, exact path and boundary probe."""
    try:
        float_report = _fast_report(mutant.case)
        # The exact oracle: same candidate search, but the escalation
        # band forced open so the final verdict always comes from the
        # exact rational re-solve.
        exact_report = _fast_report(mutant.case,
                                    escalation_band=float("inf"))
    except Exception:
        return DegenerateRecord(mutant.iteration, ESCAPE, ESCAPE,
                                mutant.mutations,
                                detail=traceback.format_exc())
    record = DegenerateRecord(mutant.iteration, _verdict(float_report),
                              _verdict(exact_report), mutant.mutations,
                              escalated=_escalated(float_report))
    report.escalations += _escalation_count(float_report)
    if record.status in ("sat", "unsat") \
            and record.exact_status in ("sat", "unsat") \
            and record.status != record.exact_status \
            and not record.escalated:
        record.detail = (f"float path says {record.status}, exact path "
                         f"says {record.exact_status}, no escalation")
        report.disagreements.append(record)
        return record

    # Boundary probe: replay the achieved increase as the target, so the
    # query sits exactly on the Eq. 37 boundary.  Eq. 37 is inclusive:
    # the verdict must stay sat — or visibly escalate/degrade.
    if record.status == "sat" \
            and float_report.achieved_increase_percent is not None:
        report.boundary_probes += 1
        try:
            probe = _fast_report(
                mutant.case,
                target=float_report.achieved_increase_percent)
        except Exception:
            record.status = ESCAPE
            record.detail = traceback.format_exc()
            return record
        record.probe_status = _verdict(probe)
        report.escalations += _escalation_count(probe)
        if record.probe_status == "unsat" and not _escalated(probe):
            record.detail = (
                "boundary probe at the achieved increase flipped to "
                "unsat without escalation")
            report.disagreements.append(record)
    return record


def fuzz_degenerate_case(name: str, *, seed: int = 0,
                         iterations: int = 200,
                         max_mutations: int = 2,
                         time_limit: Optional[float] = None,
                         ) -> DegenerateReport:
    """Degeneracy-fuzz one bundled case by name."""
    from repro.grid.cases import get_case
    return run_degenerate_fuzz(get_case(name), case=name, seed=seed,
                               iterations=iterations,
                               max_mutations=max_mutations,
                               time_limit=time_limit)
