"""Seeded text-level case fuzzing against the preflight boundary.

:class:`CaseFuzzer` derives a deterministic stream of corrupted case
texts from a base case in the paper's input format: dropped, duplicated
and reordered rows, zeroed/negated/garbage tokens, dangling bus
references, truncated or padded rows, deleted section headers and
flipped status flags.  :func:`run_fuzz` drives every mutant through the
same path ``python -m repro analyze`` uses — parse, preflight
validation, analyzer — and tallies the outcomes.

The invariant under test: **no mutated input escapes as an uncaught
exception**.  Every mutant must either analyze to a definitive verdict
(``sat``/``unsat``) or be rejected with structured diagnostics
(``invalid_input``/``degenerate_case``).  A mutant that raises anything
instead is recorded as an ``escape`` — the failure mode the preflight
subsystem exists to eliminate.

Everything is seeded and per-iteration addressable: mutant ``i`` of
``(case, seed)`` is always the same text, so an escape found in CI
replays locally with ``python -m repro fuzz --case ... --seed ...``.
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import InputFormatError
from repro.grid.caseio import parse_case, write_case
from repro.validation import DEGENERATE_CASE, INVALID_INPUT

#: synthetic outcome status for a mutant that raised instead of being
#: analyzed or rejected.
ESCAPE = "escape"

#: replacement tokens chosen to hit distinct failure classes: zero and
#: negative parameters, a zero denominator, non-numeric junk, a
#: dangling index, and an absurd magnitude.
_GARBAGE_TOKENS = ("0", "-1", "1/0", "nan", "bogus", "97", "999999",
                   "-3/7", "0.0.1", "")


def _data_indices(rows: List[str]) -> List[int]:
    return [i for i, row in enumerate(rows)
            if row.strip() and not row.lstrip().startswith("#")]


def _header_indices(rows: List[str]) -> List[int]:
    return [i for i, row in enumerate(rows)
            if row.lstrip().startswith("#")]


def _pick_token(rng: random.Random, rows: List[str]):
    """A random (row index, token index, tokens) triple, or None."""
    candidates = _data_indices(rows)
    if not candidates:
        return None
    row = rng.choice(candidates)
    tokens = rows[row].split()
    return row, rng.randrange(len(tokens)), tokens


def _drop_row(rng: random.Random, rows: List[str]) -> Optional[str]:
    candidates = _data_indices(rows)
    if not candidates:
        return None
    removed = rows.pop(rng.choice(candidates))
    return f"drop row {removed!r}"


def _duplicate_row(rng, rows: List[str]) -> Optional[str]:
    candidates = _data_indices(rows)
    if not candidates:
        return None
    index = rng.choice(candidates)
    rows.insert(index, rows[index])
    return f"duplicate row {rows[index]!r}"


def _swap_rows(rng, rows: List[str]) -> Optional[str]:
    candidates = _data_indices(rows)
    if len(candidates) < 2:
        return None
    a, b = rng.sample(candidates, 2)
    rows[a], rows[b] = rows[b], rows[a]
    return f"swap rows {a} and {b}"


def _drop_header(rng, rows: List[str]) -> Optional[str]:
    candidates = _header_indices(rows)
    if not candidates:
        return None
    removed = rows.pop(rng.choice(candidates))
    return f"drop header {removed!r}"


def _corrupt_token(rng, rows: List[str]) -> Optional[str]:
    picked = _pick_token(rng, rows)
    if picked is None:
        return None
    row, col, tokens = picked
    garbage = rng.choice(_GARBAGE_TOKENS)
    old = tokens[col]
    tokens[col] = garbage
    rows[row] = " ".join(token for token in tokens if token)
    return f"row {row}: token {old!r} -> {garbage!r}"


def _negate_token(rng, rows: List[str]) -> Optional[str]:
    picked = _pick_token(rng, rows)
    if picked is None:
        return None
    row, col, tokens = picked
    old = tokens[col]
    tokens[col] = old[1:] if old.startswith("-") else "-" + old
    rows[row] = " ".join(tokens)
    return f"row {row}: negate {old!r}"


def _flip_flag(rng, rows: List[str]) -> Optional[str]:
    candidates = []
    for i in _data_indices(rows):
        for j, token in enumerate(rows[i].split()):
            if token in ("0", "1"):
                candidates.append((i, j))
    if not candidates:
        return None
    row, col = rng.choice(candidates)
    tokens = rows[row].split()
    tokens[col] = "1" if tokens[col] == "0" else "0"
    rows[row] = " ".join(tokens)
    return f"row {row}: flip flag {col}"


def _truncate_row(rng, rows: List[str]) -> Optional[str]:
    candidates = [i for i in _data_indices(rows)
                  if len(rows[i].split()) > 1]
    if not candidates:
        return None
    index = rng.choice(candidates)
    rows[index] = " ".join(rows[index].split()[:-1])
    return f"row {index}: drop last field"


def _pad_row(rng, rows: List[str]) -> Optional[str]:
    candidates = _data_indices(rows)
    if not candidates:
        return None
    index = rng.choice(candidates)
    rows[index] = rows[index] + " 1"
    return f"row {index}: append stray field"


#: all mutation operators; each either mutates ``rows`` in place and
#: returns a description, or returns None when not applicable.
OPERATORS: Tuple[Callable[[random.Random, List[str]],
                          Optional[str]], ...] = (
    _drop_row, _duplicate_row, _swap_rows, _drop_header,
    _corrupt_token, _corrupt_token, _negate_token, _flip_flag,
    _flip_flag, _truncate_row, _pad_row,
)


@dataclass(frozen=True)
class Mutant:
    """One corrupted case text, addressable by iteration number."""

    iteration: int
    text: str
    mutations: Tuple[str, ...]


class CaseFuzzer:
    """Deterministic stream of corrupted case texts.

    Mutant ``i`` depends only on ``(base_text, seed, i)`` — iterations
    are independently addressable, so one escaping mutant can be
    regenerated without replaying the stream.
    """

    def __init__(self, base_text: str, seed: int = 0,
                 max_mutations: int = 3) -> None:
        self.base_text = base_text
        self.seed = seed
        self.max_mutations = max_mutations

    def mutant(self, iteration: int) -> Mutant:
        rng = random.Random(f"{self.seed}:{iteration}")
        rows = self.base_text.splitlines()
        applied: List[str] = []
        wanted = rng.randint(1, self.max_mutations)
        # operators can decline (no applicable site); bound the retries
        # so a pathological base text still terminates.
        for _ in range(10 * wanted):
            if len(applied) >= wanted:
                break
            description = rng.choice(OPERATORS)(rng, rows)
            if description is not None:
                applied.append(description)
        return Mutant(iteration, "\n".join(rows) + "\n", tuple(applied))

    def mutants(self, count: int) -> Iterator[Mutant]:
        for iteration in range(count):
            yield self.mutant(iteration)


# -- driving mutants through the analyze path ---------------------------

def analyze_text(text: str, *, analyzer: str = "fast",
                 max_candidates: int = 8,
                 state_samples: int = 2) -> Tuple[str, Optional[str]]:
    """Drive one case text through parse → preflight → analysis.

    Returns ``(status, detail)`` where status is ``sat``/``unsat``, a
    rejection status, or the analyzer's own non-verdict status.  Parse
    failures come back as ``invalid_input`` — exactly what the CLI
    reports.  Anything raised past :class:`InputFormatError` propagates
    to the caller (and is an escape for the fuzz driver).
    """
    try:
        case = parse_case(text, name="fuzz")
    except InputFormatError as exc:
        return INVALID_INPUT, str(exc)
    if analyzer == "fast":
        from repro.core import FastImpactAnalyzer, FastQuery
        report = FastImpactAnalyzer(case).analyze(
            FastQuery(state_samples=state_samples))
    else:
        from repro.core import ImpactAnalyzer, ImpactQuery
        report = ImpactAnalyzer(case).analyze(
            ImpactQuery(max_candidates=max_candidates))
    if report.status == "complete":
        return ("sat" if report.satisfiable else "unsat"), None
    detail = None
    if report.diagnostics is not None:
        detail = "; ".join(d.code for d in report.diagnostics.fatal)
    return report.status, detail


@dataclass
class FuzzRecord:
    """Outcome of one mutant."""

    iteration: int
    status: str
    mutations: Tuple[str, ...]
    detail: Optional[str] = None  # fatal codes, or an escape traceback


@dataclass
class FuzzReport:
    """Aggregated result of a fuzz run."""

    case: str
    analyzer: str
    seed: int
    iterations: int
    counts: Dict[str, int] = field(default_factory=dict)
    escapes: List[FuzzRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: True when a ``time_limit`` stopped the run before ``iterations``
    #: mutants were examined (``iterations`` then holds the count done).
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.escapes

    def render(self) -> str:
        lines = [f"fuzz {self.case} (analyzer={self.analyzer}, "
                 f"seed={self.seed}): {self.iterations} mutants in "
                 f"{self.elapsed_seconds:.1f}s"
                 + (" [truncated by time limit]" if self.truncated
                    else "")]
        for status in sorted(self.counts):
            lines.append(f"  {status:16s} {self.counts[status]}")
        for record in self.escapes:
            lines.append(f"ESCAPE at iteration {record.iteration} "
                         f"(mutations: {', '.join(record.mutations)}):")
            for raw in (record.detail or "").rstrip().splitlines():
                lines.append(f"  {raw}")
        if self.ok:
            lines.append("no mutant escaped the preflight boundary")
        return "\n".join(lines)


def run_fuzz(base_text: str, *, case: str = "case", seed: int = 0,
             iterations: int = 100, analyzer: str = "fast",
             max_mutations: int = 3,
             time_limit: Optional[float] = None,
             on_record: Optional[Callable[[FuzzRecord], None]] = None,
             ) -> FuzzReport:
    """Fuzz ``base_text`` for ``iterations`` mutants; tally outcomes.

    Never raises on a misbehaving mutant: exceptions are captured as
    ``escape`` records with their tracebacks.  ``time_limit`` (seconds)
    bounds the whole run — exceeded, the report comes back truncated
    instead of the run overshooting a CI budget.  ``on_record`` (if
    given) observes every record as it is produced.
    """
    fuzzer = CaseFuzzer(base_text, seed=seed, max_mutations=max_mutations)
    report = FuzzReport(case=case, analyzer=analyzer, seed=seed,
                        iterations=iterations)
    started = time.monotonic()
    for mutant in fuzzer.mutants(iterations):
        if time_limit is not None \
                and time.monotonic() - started > time_limit:
            report.truncated = True
            report.iterations = mutant.iteration
            break
        try:
            status, detail = analyze_text(mutant.text, analyzer=analyzer)
        except Exception:
            status, detail = ESCAPE, traceback.format_exc()
        record = FuzzRecord(mutant.iteration, status, mutant.mutations,
                            detail)
        report.counts[status] = report.counts.get(status, 0) + 1
        if status == ESCAPE:
            report.escapes.append(record)
        if on_record is not None:
            on_record(record)
    report.elapsed_seconds = time.monotonic() - started
    return report


def fuzz_bundled_case(name: str, *, seed: int = 0,
                      iterations: int = 100, analyzer: str = "fast",
                      max_mutations: int = 3,
                      time_limit: Optional[float] = None) -> FuzzReport:
    """Fuzz one bundled case (by name) through the analyze path."""
    from repro.grid.cases import get_case
    base_text = write_case(get_case(name))
    return run_fuzz(base_text, case=name, seed=seed,
                    iterations=iterations, analyzer=analyzer,
                    max_mutations=max_mutations, time_limit=time_limit)
