"""A standalone exact linear-programming interface.

A thin, LP-shaped facade over the general simplex core
(:mod:`repro.smt.simplex`): variables with bounds, linear constraints with
lower/upper limits, a linear objective, exact `Fraction` arithmetic.  This
is the reference OPF oracle — slower than a floating-point solver but
immune to tolerance artifacts, which matters when the framework compares
costs against a threshold that differs by fractions of a percent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import SolverError, UnboundedError
from repro.smt.budget import SolverBudget
from repro.smt.rational import DeltaRational, to_fraction
from repro.smt.simplex import NO_LIT, Simplex

Num = Union[int, float, str, Fraction]


class LpStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LpResult:
    status: LpStatus
    objective: Optional[Fraction]
    values: List[Fraction]

    @property
    def is_optimal(self) -> bool:
        return self.status is LpStatus.OPTIMAL


class LinearProgram:
    """Exact LP: build with variables/constraints, then :meth:`solve`."""

    def __init__(self, budget: Optional[SolverBudget] = None) -> None:
        self._simplex = Simplex()
        # A shared task budget bounds the pivot loops of this LP too
        # (exhaustion raises BudgetExhausted out of solve()).
        self._simplex.budget = budget
        self._variables: List[int] = []
        self._objective: Dict[int, Fraction] = {}
        self._objective_const = Fraction(0)
        self._trivially_infeasible = False

    # -- construction --------------------------------------------------------

    def add_variable(self, lower: Optional[Num] = None,
                     upper: Optional[Num] = None, name: str = "") -> int:
        """Create a variable; returns its handle (dense 0-based id)."""
        var = self._simplex.new_variable()
        self._variables.append(var)
        handle = len(self._variables) - 1
        if lower is not None:
            conflict = self._simplex.assert_lower(
                var, DeltaRational(to_fraction(lower)), NO_LIT)
            if conflict is not None:
                self._trivially_infeasible = True
        if upper is not None:
            conflict = self._simplex.assert_upper(
                var, DeltaRational(to_fraction(upper)), NO_LIT)
            if conflict is not None:
                self._trivially_infeasible = True
        return handle

    def add_constraint(self, coeffs: Dict[int, Num],
                       lower: Optional[Num] = None,
                       upper: Optional[Num] = None) -> None:
        """Add ``lower <= sum(coeff * var) <= upper`` (either side optional)."""
        if lower is None and upper is None:
            raise SolverError("constraint needs at least one bound")
        row = {self._variables[handle]: to_fraction(value)
               for handle, value in coeffs.items() if to_fraction(value) != 0}
        if not row:
            lo = to_fraction(lower) if lower is not None else None
            hi = to_fraction(upper) if upper is not None else None
            if (lo is not None and lo > 0) or (hi is not None and hi < 0):
                # 0 constrained to be nonzero: mark as trivially infeasible.
                self._trivially_infeasible = True
            return
        slack = self._simplex.add_row(row)
        if lower is not None:
            conflict = self._simplex.assert_lower(
                slack, DeltaRational(to_fraction(lower)), NO_LIT)
            if conflict is not None:
                self._trivially_infeasible = True
        if upper is not None:
            conflict = self._simplex.assert_upper(
                slack, DeltaRational(to_fraction(upper)), NO_LIT)
            if conflict is not None:
                self._trivially_infeasible = True

    def add_equality(self, coeffs: Dict[int, Num], value: Num) -> None:
        self.add_constraint(coeffs, lower=value, upper=value)

    def set_objective(self, coeffs: Dict[int, Num],
                      constant: Num = 0) -> None:
        """Objective to *minimize*: ``sum(coeff * var) + constant``."""
        self._objective = {handle: to_fraction(value)
                           for handle, value in coeffs.items()}
        self._objective_const = to_fraction(constant)

    # -- solving --------------------------------------------------------

    def solve(self) -> LpResult:
        if self._trivially_infeasible:
            return LpResult(LpStatus.INFEASIBLE, None, [])
        conflict = self._simplex.check()
        if conflict is not None:
            return LpResult(LpStatus.INFEASIBLE, None, [])
        objective_row = {
            self._variables[handle]: coeff
            for handle, coeff in self._objective.items() if coeff != 0
        }
        if objective_row:
            objective_var = self._simplex.add_row(objective_row)
            try:
                minimum = self._simplex.minimize(objective_var)
            except UnboundedError:
                return LpResult(LpStatus.UNBOUNDED, None, [])
            objective_value = minimum.c + self._objective_const
        else:
            objective_value = self._objective_const
        values = self._extract_values()
        return LpResult(LpStatus.OPTIMAL, objective_value, values)

    def _extract_values(self) -> List[Fraction]:
        concrete = self._simplex.concrete_values()
        return [concrete[var] for var in self._variables]

    def value(self, result: LpResult, handle: int) -> Fraction:
        return result.values[handle]
