"""N-1 contingency analysis.

The EMS pipeline the paper describes (Fig. 1, Section III-E) runs
contingency analysis alongside OPF: after every re-dispatch, check that no
single line outage overloads the remaining network.  Two evaluation paths:

* ``screen_contingencies`` — fast LODF-based screening (one PTDF
  factorization, linear update per outage — the Sauer et al. factors),
* ``exact_outage_flows`` — full power-flow recompute, used as the oracle.

This module is also how the *real* impact of a topology-poisoning attack
shows up: the dispatch the fooled EMS issues can leave the physical grid
insecure even when every believed constraint is satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.grid.dcpf import net_injections, solve_dc_power_flow
from repro.grid.network import Grid
from repro.grid.sensitivities import (
    compute_ptdf,
    flows_after_exclusion,
)


@dataclass
class Overload:
    """One post-contingency limit violation."""

    outaged_line: int
    overloaded_line: int
    flow: float
    capacity: float

    @property
    def loading_percent(self) -> float:
        return 100.0 * abs(self.flow) / self.capacity


@dataclass
class ContingencyReport:
    """Outcome of an N-1 screening for one operating point."""

    secure: bool
    overloads: List[Overload] = field(default_factory=list)
    islanding_outages: List[int] = field(default_factory=list)

    def worst(self) -> Optional[Overload]:
        if not self.overloads:
            return None
        return max(self.overloads, key=lambda o: o.loading_percent)


def screen_contingencies(grid: Grid,
                         dispatch: Dict[int, float],
                         loads: Optional[Dict[int, float]] = None,
                         outages: Optional[Iterable[int]] = None,
                         tolerance: float = 1e-6) -> ContingencyReport:
    """LODF-based N-1 screening of a dispatch.

    ``outages`` defaults to every in-service line.  Bridge outages (which
    island part of the grid) are reported separately — they are security
    violations of a different kind, not overloads.
    """
    active = [line.index for line in grid.lines if line.in_service]
    if outages is None:
        outages = list(active)
    factors = compute_ptdf(grid, active)
    injections = net_injections(grid, dispatch, loads)
    base = factors.flows_for_injections(injections)

    overloads: List[Overload] = []
    islanding: List[int] = []
    for outage in outages:
        if outage not in factors.lines:
            raise ModelError(f"line {outage} is not in service")
        remaining = [i for i in active if i != outage]
        if not grid.is_connected(remaining):
            islanding.append(outage)
            continue
        post = flows_after_exclusion(factors, base, outage)
        for row, line_index in enumerate(factors.lines):
            if line_index == outage:
                continue
            capacity = float(grid.line(line_index).capacity)
            if abs(post[row]) > capacity + tolerance:
                overloads.append(Overload(outage, line_index,
                                          float(post[row]), capacity))
    secure = not overloads and not islanding
    return ContingencyReport(secure, overloads, islanding)


def exact_outage_flows(grid: Grid,
                       dispatch: Dict[int, float],
                       outage: int,
                       loads: Optional[Dict[int, float]] = None
                       ) -> Dict[int, float]:
    """Oracle: post-outage flows from a fresh power-flow solve."""
    remaining = [line.index for line in grid.lines
                 if line.in_service and line.index != outage]
    result = solve_dc_power_flow(grid, dispatch, loads,
                                 line_indices=remaining)
    return result.flows


def security_margin(grid: Grid, dispatch: Dict[int, float],
                    loads: Optional[Dict[int, float]] = None) -> float:
    """Smallest post-contingency capacity headroom, in percent.

    100% means some line is exactly at its limit after the worst single
    outage; below 0 the dispatch is N-1 insecure.  Islanding outages are
    ignored here (no meaningful loading number).
    """
    report = screen_contingencies(grid, dispatch, loads)
    if report.overloads:
        worst = report.worst()
        return 100.0 - worst.loading_percent
    # Secure: find the tightest loading across all outages.
    active = [line.index for line in grid.lines if line.in_service]
    factors = compute_ptdf(grid, active)
    injections = net_injections(grid, dispatch, loads)
    base = factors.flows_for_injections(injections)
    tightest = 0.0
    for outage in active:
        remaining = [i for i in active if i != outage]
        if not grid.is_connected(remaining):
            continue
        post = flows_after_exclusion(factors, base, outage)
        for row, line_index in enumerate(factors.lines):
            if line_index == outage:
                continue
            capacity = float(grid.line(line_index).capacity)
            loading = 100.0 * abs(float(post[row])) / capacity
            tightest = max(tightest, loading)
    return 100.0 - tightest
