"""Optimal Power Flow substrate: cost curves, an exact LP solver, the
angle-formulation DC-OPF and the shift-factor (PTDF/LODF/LCDF) fast OPF."""

from repro.opf.cost import CostSegment, PiecewiseLinearCost, total_cost
from repro.opf.dcopf import DcOpfResult, solve_dc_opf
from repro.opf.lp import LinearProgram, LpResult, LpStatus
from repro.opf.shift_factor import ShiftFactorOpf, TopologyChange

__all__ = [
    "CostSegment",
    "DcOpfResult",
    "LinearProgram",
    "LpResult",
    "LpStatus",
    "PiecewiseLinearCost",
    "ShiftFactorOpf",
    "TopologyChange",
    "solve_dc_opf",
    "total_cost",
]
