"""Shift-factor (PTDF) formulation of DC-OPF with LODF/LCDF corrections.

This is the paper's second scalability idea (Section IV-A): replace the
angle variables with generation-to-load distribution factors so the OPF
has only the generator outputs as decision variables, and handle a single
line exclusion (or inclusion) through line-outage / line-closure
distribution factors instead of rebuilding the network equations.

The formulation is mathematically equivalent to the angle formulation for
the same topology (verified in the tests) but solves much faster on the
57/118-bus systems because the LP drops from ``b + g`` variables and
``b + 2l`` constraints to ``g`` variables and ``2l + 1`` constraints, and
the PTDF matrix is computed once per base topology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ModelError
from repro.grid.matrices import active_lines, susceptance_matrix
from repro.grid.network import Grid
from repro.grid.sensitivities import (
    SensitivityFactors,
    compute_ptdf,
    lodf_column,
)
from repro.numerics import guarded_inverse
from repro.opf.dcopf import DcOpfResult
from repro.smt.rational import to_fraction


@dataclass
class TopologyChange:
    """A single-line deviation from the base topology."""

    kind: str          # "exclude" or "include"
    line_index: int

    def __post_init__(self) -> None:
        if self.kind not in ("exclude", "include"):
            raise ModelError(f"unknown topology change kind {self.kind!r}")


class ShiftFactorOpf:
    """Reusable PTDF-based OPF for one base topology.

    Build once, then call :meth:`solve` for many load vectors and
    single-line topology changes — the pattern of the framework's
    fast impact-analysis loop.
    """

    def __init__(self, grid: Grid,
                 base_topology: Optional[Iterable[int]] = None) -> None:
        self.grid = grid
        self.base_lines = active_lines(grid, base_topology)
        self.factors = compute_ptdf(grid, self.base_lines)
        self.gen_buses = sorted(grid.generators)
        #: cumulative work counters for sweep traces.
        self.solve_calls = 0
        self.solve_seconds = 0.0
        # Injection map: columns are generator outputs.
        self._gen_matrix = np.zeros((grid.num_buses, len(self.gen_buses)))
        for k, bus in enumerate(self.gen_buses):
            self._gen_matrix[bus - 1, k] = 1.0

    # -- flow model -----------------------------------------------------

    def _flow_operator(self, change: Optional[TopologyChange]
                       ) -> Tuple[np.ndarray, List[int]]:
        """(matrix mapping bus injections to flows, line order)."""
        M = self.factors.ptdf.copy()
        lines = list(self.factors.lines)
        if change is None:
            return M, lines
        if change.kind == "exclude":
            k = self.factors.row_of(change.line_index)
            column = lodf_column(self.factors, change.line_index)
            # flow_i' = flow_i + LODF_i * flow_k ; row k removed.
            M = M + np.outer(column, M[k])
            M = np.delete(M, k, axis=0)
            lines.pop(k)
            return M, lines
        # Inclusion: compute the closed line's flow as a linear operator.
        line = self.grid.line(change.line_index)
        if change.line_index in self.factors.lines:
            raise ModelError(
                f"line {change.line_index} is already in the base topology")
        grid = self.grid
        ref = grid.reference_bus - 1
        keep = [i for i in range(grid.num_buses) if i != ref]
        B_inv = guarded_inverse(
            susceptance_matrix(grid, self.base_lines, reduced=True),
            context="shift-factor base susceptance matrix")
        e = np.zeros(grid.num_buses)
        e[line.from_bus - 1] += 1.0
        e[line.to_bus - 1] -= 1.0
        x_thevenin = float(e[keep] @ B_inv @ e[keep])
        y = float(line.admittance)
        # delta-theta operator: row vector over injections.
        dtheta = np.zeros(grid.num_buses)
        dtheta[keep] = e[keep] @ B_inv
        new_row = (y / (1.0 + y * x_thevenin)) * dtheta
        column = -(self.factors.ptdf[:, line.from_bus - 1]
                   - self.factors.ptdf[:, line.to_bus - 1])
        M = M + np.outer(column, new_row)
        M = np.vstack([M, new_row])
        lines.append(change.line_index)
        return M, lines

    # -- solve ------------------------------------------------------------

    def solve(self, loads: Optional[Dict[int, Fraction]] = None,
              change: Optional[TopologyChange] = None,
              binding_tolerance: float = 1e-6) -> DcOpfResult:
        """OPF for the given loads and optional single-line change."""
        started = time.perf_counter()
        try:
            return self._solve(loads, change, binding_tolerance)
        finally:
            self.solve_calls += 1
            self.solve_seconds += time.perf_counter() - started

    def _solve(self, loads: Optional[Dict[int, Fraction]],
               change: Optional[TopologyChange],
               binding_tolerance: float) -> DcOpfResult:
        grid = self.grid
        if change is not None and change.kind == "exclude":
            remaining = [i for i in self.base_lines
                         if i != change.line_index]
            if not grid.is_connected(remaining):
                return DcOpfResult(False, None)

        demand = np.zeros(grid.num_buses)
        if loads is None:
            for load in grid.loads.values():
                demand[load.bus - 1] = float(load.existing)
        else:
            for bus, value in loads.items():
                demand[bus - 1] = float(value)

        M, line_order = self._flow_operator(change)
        # flows = M (G p - demand)
        flow_gen = M @ self._gen_matrix
        flow_base = -(M @ demand)

        num_gens = len(self.gen_buses)
        c = np.array([float(grid.generators[b].cost_beta)
                      for b in self.gen_buses])
        bounds = [(float(grid.generators[b].p_min),
                   float(grid.generators[b].p_max))
                  for b in self.gen_buses]
        capacities = np.array([float(grid.line(i).capacity)
                               for i in line_order])
        A_ub = np.vstack([flow_gen, -flow_gen])
        b_ub = np.concatenate([capacities - flow_base,
                               capacities + flow_base])
        A_eq = np.ones((1, num_gens))
        b_eq = np.array([float(demand.sum())])

        result = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                         bounds=bounds, method="highs")
        if not result.success:
            return DcOpfResult(False, None)

        constant = sum(float(g.cost_alpha) for g in grid.generators.values())
        dispatch = {bus: to_fraction(round(result.x[k], 12))
                    for k, bus in enumerate(self.gen_buses)}
        flow_values = flow_gen @ result.x + flow_base
        flows = {line_index: to_fraction(round(float(flow_values[r]), 12))
                 for r, line_index in enumerate(line_order)}
        binding = [line_index for r, line_index in enumerate(line_order)
                   if abs(capacities[r] - abs(flow_values[r]))
                   <= binding_tolerance]
        return DcOpfResult(True,
                           to_fraction(round(result.fun + constant, 9)),
                           dispatch, flows, {}, binding)
