"""Shift-factor (PTDF) formulation of DC-OPF with LODF/LCDF corrections.

This is the paper's second scalability idea (Section IV-A): replace the
angle variables with generation-to-load distribution factors so the OPF
has only the generator outputs as decision variables, and handle a single
line exclusion (or inclusion) through line-outage / line-closure
distribution factors instead of rebuilding the network equations.

The formulation is mathematically equivalent to the angle formulation for
the same topology (verified in the tests) but solves much faster because
the LP drops from ``b + g`` variables and ``b + 2l`` constraints to ``g``
variables and at most ``2l + 1`` constraints, and the susceptance
factorization is computed once per base topology.

Since the sparse-scaling refactor the flow model is built from the
*generator columns* of the PTDF (one batched factorized solve) plus one
solve per demand vector — the full l x b PTDF array is never formed.  On
the sparse backend the LP additionally uses *row generation*: it starts
with no line-capacity rows and adds only the rows a candidate dispatch
actually violates, so each solve touches the handful of shift-factor
rows it binds instead of all ``2l``.  (The restricted LP is a relaxation
of the full one, so an infeasible restriction proves infeasibility and a
violation-free optimum is the true optimum.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ModelError
from repro.grid.matrices import active_lines
from repro.grid.network import Grid
from repro.grid.sensitivities import (
    compute_ptdf,
    lcdf_column,
    lodf_column,
)
from repro.numerics import resolve_backend
from repro.opf.dcopf import DcOpfResult
from repro.smt.rational import to_fraction

#: Safety cap on row-generation rounds before falling back to the full LP.
_MAX_ROW_GENERATION_ROUNDS = 50


@dataclass
class TopologyChange:
    """A single-line deviation from the base topology."""

    kind: str          # "exclude" or "include"
    line_index: int

    def __post_init__(self) -> None:
        if self.kind not in ("exclude", "include"):
            raise ModelError(f"unknown topology change kind {self.kind!r}")


class ShiftFactorOpf:
    """Reusable PTDF-based OPF for one base topology.

    Build once, then call :meth:`solve` for many load vectors and
    single-line topology changes — the pattern of the framework's
    fast impact-analysis loop.
    """

    def __init__(self, grid: Grid,
                 base_topology: Optional[Iterable[int]] = None,
                 backend: Optional[str] = None) -> None:
        self.grid = grid
        self.base_lines = active_lines(grid, base_topology)
        self.backend = resolve_backend(backend, grid.num_buses)
        self.factors = compute_ptdf(grid, self.base_lines,
                                    backend=self.backend)
        self.gen_buses = sorted(grid.generators)
        #: cumulative work counters for sweep traces.
        self.solve_calls = 0
        self.solve_seconds = 0.0
        #: capacity rows materialized by row generation (sparse backend).
        self.rows_generated = 0
        self._row_generation = self.backend == "sparse"
        self._gen_flow: Optional[np.ndarray] = None
        # Warm-started active sets per topology change, so bisection
        # loops re-solve with yesterday's binding rows already present.
        self._active_rows: Dict[Optional[Tuple[str, int]],
                                Set[Tuple[int, int]]] = {}

    # -- flow model -----------------------------------------------------

    def gen_flow_matrix(self) -> np.ndarray:
        """Base-topology flows per unit generator output (l x g)."""
        if self._gen_flow is None:
            self._gen_flow = self.factors.columns(self.gen_buses)
        return self._gen_flow

    def _flow_model(self, change: Optional[TopologyChange],
                    demand: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """``(flow_gen, flow_base, line order)`` for a topology change.

        ``flows = flow_gen @ p + flow_base`` for generator outputs
        ``p``.  The base model is one batched solve for the generator
        columns plus one solve for the demand; changes are rank-1
        LODF/LCDF corrections of those vectors — never a new
        factorization.
        """
        flow_gen = self.gen_flow_matrix()
        flow_base = self.factors.flows_for_injections(-demand)
        lines = list(self.factors.lines)
        if change is None:
            return flow_gen, flow_base, lines
        if change.kind == "exclude":
            k = self.factors.row_of(change.line_index)
            column = lodf_column(self.factors, change.line_index)
            # flow_i' = flow_i + LODF_i * flow_k ; row k removed.
            flow_gen = flow_gen + np.outer(column, flow_gen[k])
            flow_base = flow_base + column * flow_base[k]
            flow_gen = np.delete(flow_gen, k, axis=0)
            flow_base = np.delete(flow_base, k)
            lines.pop(k)
            return flow_gen, flow_base, lines
        # Inclusion: the closed line's flow as a linear operator over
        # injections, from the cached base factorization.
        if change.line_index in self.factors.lines:
            raise ModelError(
                f"line {change.line_index} is already in the base topology")
        line = self.grid.line(change.line_index)
        y = float(line.admittance)
        x_thevenin = self.factors.thevenin_impedance(line.from_bus,
                                                     line.to_bus)
        scale = 1.0 / (1.0 + y * x_thevenin)
        # delta-theta sensitivity row over bus injections.
        dtheta = self.factors.open_line_flow_row(change.line_index)
        new_row_gen = scale * np.array(
            [dtheta[bus - 1] for bus in self.gen_buses])
        new_base = scale * float(dtheta @ (-demand))
        column = lcdf_column(self.factors, change.line_index)
        flow_gen = flow_gen + np.outer(column, new_row_gen)
        flow_base = flow_base + column * new_base
        flow_gen = np.vstack([flow_gen, new_row_gen])
        flow_base = np.append(flow_base, new_base)
        lines.append(change.line_index)
        return flow_gen, flow_base, lines

    # -- solve ------------------------------------------------------------

    def solve(self, loads: Optional[Dict[int, Fraction]] = None,
              change: Optional[TopologyChange] = None,
              binding_tolerance: float = 1e-6) -> DcOpfResult:
        """OPF for the given loads and optional single-line change."""
        started = time.perf_counter()
        try:
            return self._solve(loads, change, binding_tolerance)
        finally:
            self.solve_calls += 1
            self.solve_seconds += time.perf_counter() - started

    def _solve(self, loads: Optional[Dict[int, Fraction]],
               change: Optional[TopologyChange],
               binding_tolerance: float) -> DcOpfResult:
        grid = self.grid
        if change is not None and change.kind == "exclude":
            remaining = [i for i in self.base_lines
                         if i != change.line_index]
            if not grid.is_connected(remaining):
                return DcOpfResult(False, None)

        demand = np.zeros(grid.num_buses)
        if loads is None:
            for load in grid.loads.values():
                demand[load.bus - 1] = float(load.existing)
        else:
            for bus, value in loads.items():
                demand[bus - 1] = float(value)

        flow_gen, flow_base, line_order = self._flow_model(change, demand)

        num_gens = len(self.gen_buses)
        c = np.array([float(grid.generators[b].cost_beta)
                      for b in self.gen_buses])
        bounds = [(float(grid.generators[b].p_min),
                   float(grid.generators[b].p_max))
                  for b in self.gen_buses]
        capacities = np.array([float(grid.line(i).capacity)
                               for i in line_order])
        A_eq = np.ones((1, num_gens))
        b_eq = np.array([float(demand.sum())])

        if self._row_generation:
            result = self._solve_with_row_generation(
                change, c, bounds, A_eq, b_eq,
                flow_gen, flow_base, capacities)
        else:
            A_ub = np.vstack([flow_gen, -flow_gen])
            b_ub = np.concatenate([capacities - flow_base,
                                   capacities + flow_base])
            result = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                             bounds=bounds, method="highs")
        if result is None or not result.success:
            return DcOpfResult(False, None)

        constant = sum(float(g.cost_alpha) for g in grid.generators.values())
        dispatch = {bus: to_fraction(round(result.x[k], 12))
                    for k, bus in enumerate(self.gen_buses)}
        flow_values = flow_gen @ result.x + flow_base
        flows = {line_index: to_fraction(round(float(flow_values[r]), 12))
                 for r, line_index in enumerate(line_order)}
        binding = [line_index for r, line_index in enumerate(line_order)
                   if abs(capacities[r] - abs(flow_values[r]))
                   <= binding_tolerance]
        return DcOpfResult(True,
                           to_fraction(round(result.fun + constant, 9)),
                           dispatch, flows, {}, binding)

    def _solve_with_row_generation(self, change: Optional[TopologyChange],
                                   c: np.ndarray, bounds, A_eq, b_eq,
                                   flow_gen: np.ndarray,
                                   flow_base: np.ndarray,
                                   capacities: np.ndarray):
        """Cutting-plane LP over the line-capacity rows.

        Each active row is a ``(line row, sign)`` pair for one side of
        ``|flow| <= capacity``.  The restricted LP is a relaxation of
        the full problem: infeasibility is conclusive, and an optimum
        violating no capacity is the full optimum.  The active set is
        warm-started per topology change across calls.
        """
        key = (change.kind, change.line_index) if change else None
        active = self._active_rows.setdefault(key, set())
        active = {(r, s) for r, s in active if r < flow_gen.shape[0]}
        feasibility_slack = 1e-9
        result = None
        for _ in range(_MAX_ROW_GENERATION_ROUNDS):
            if active:
                ordered = sorted(active)
                rows = np.array([r for r, _ in ordered])
                signs = np.array([float(s) for _, s in ordered])
                A_ub = signs[:, None] * flow_gen[rows]
                b_ub = capacities[rows] - signs * flow_base[rows]
            else:
                A_ub = None
                b_ub = None
            result = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq,
                             b_eq=b_eq, bounds=bounds, method="highs")
            if not result.success:
                return result       # relaxation infeasible => infeasible
            flows = flow_gen @ result.x + flow_base
            over = flows - capacities > feasibility_slack
            under = -flows - capacities > feasibility_slack
            violated = ([(int(r), 1) for r in np.flatnonzero(over)]
                        + [(int(r), -1) for r in np.flatnonzero(under)])
            fresh = [rs for rs in violated if rs not in active]
            if not fresh:
                self._active_rows[key] = active
                return result
            active.update(fresh)
            self.rows_generated += len(fresh)
        # Degenerate cycling safety net: solve the full LP once.
        A_ub = np.vstack([flow_gen, -flow_gen])
        b_ub = np.concatenate([capacities - flow_base,
                               capacities + flow_base])
        return linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                       bounds=bounds, method="highs")
