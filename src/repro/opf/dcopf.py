"""DC Optimal Power Flow (paper Eqs. 3-6 / 30-36).

Angle formulation: decision variables are the non-reference bus angles and
the generator outputs; constraints are the bus power balances, line
capacities and dispatch limits; the objective is total linear generation
cost.

Two solution paths:

* ``method="exact"`` — the in-repo rational simplex
  (:class:`~repro.opf.lp.LinearProgram`); exact optima, used wherever the
  framework compares costs to thresholds.
* ``method="highs"`` — scipy's HiGHS, for the large scalability sweeps.

Both paths build the identical constraint system and are cross-checked in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, ModelError
from repro.grid.matrices import active_lines
from repro.grid.network import Grid
from repro.opf.lp import LinearProgram, LpStatus
from repro.smt.budget import SolverBudget
from repro.smt.rational import to_fraction


@dataclass
class DcOpfResult:
    """An OPF solution.

    ``cost`` includes the fixed alpha terms.  ``binding_lines`` lists the
    lines whose capacity constraint is tight at the optimum — the
    congestion that topology attacks manipulate.
    """

    feasible: bool
    cost: Optional[Fraction]
    dispatch: Dict[int, Fraction] = field(default_factory=dict)
    flows: Dict[int, Fraction] = field(default_factory=dict)
    angles: Dict[int, Fraction] = field(default_factory=dict)
    binding_lines: List[int] = field(default_factory=list)

    def require_feasible(self) -> "DcOpfResult":
        if not self.feasible:
            raise InfeasibleError("OPF has no feasible dispatch")
        return self


def solve_dc_opf(grid: Grid,
                 loads: Optional[Dict[int, Fraction]] = None,
                 line_indices: Optional[Iterable[int]] = None,
                 method: str = "exact",
                 binding_tolerance: float = 1e-6,
                 budget: Optional[SolverBudget] = None) -> DcOpfResult:
    """Minimize generation cost subject to the DC network constraints.

    Parameters
    ----------
    loads:
        bus -> demand; defaults to each load's ``existing`` value.  This is
        where the framework injects attack-shifted estimated loads.
    line_indices:
        The topology OPF believes (defaults to in-service lines) — the
        believed view from the topology processor, *not* necessarily the
        physical truth.
    binding_tolerance:
        Absolute slack under which a line's capacity constraint counts
        as binding.  Applied verbatim by *both* solution paths (the
        shift-factor OPF uses the same default), so exact and HiGHS
        runs report identical binding sets away from the tolerance
        boundary.
    budget:
        Optional shared :class:`~repro.smt.budget.SolverBudget`; with
        ``method="exact"`` its pivot/wall limits bound the rational
        simplex (exhaustion raises
        :class:`~repro.exceptions.BudgetExhausted`).
    """
    if method not in ("exact", "highs"):
        raise ModelError(f"unknown OPF method {method!r}")
    lines = active_lines(grid, line_indices)
    if not grid.is_connected(lines):
        return DcOpfResult(False, None)
    demand = {}
    if loads is None:
        demand = {l.bus: l.existing for l in grid.loads.values()}
    else:
        demand = {bus: to_fraction(v) for bus, v in loads.items()}

    if method == "exact":
        return _solve_exact(grid, demand, lines, binding_tolerance, budget)
    return _solve_highs(grid, demand, lines, binding_tolerance)


def _solve_exact(grid: Grid, demand: Dict[int, Fraction],
                 lines: List[int], binding_tolerance: float,
                 budget: Optional[SolverBudget] = None) -> DcOpfResult:
    lp = LinearProgram(budget=budget)
    # Variables: angles (all buses; reference fixed via equality bounds),
    # then generator outputs.
    theta = {}
    for bus in grid.buses:
        if bus.index == grid.reference_bus:
            theta[bus.index] = lp.add_variable(0, 0, f"theta{bus.index}")
        else:
            theta[bus.index] = lp.add_variable(None, None,
                                               f"theta{bus.index}")
    gen_vars = {}
    for gen in grid.generators.values():
        gen_vars[gen.bus] = lp.add_variable(gen.p_min, gen.p_max,
                                            f"g{gen.bus}")

    # Line capacity: -cap <= d_i (theta_f - theta_e) <= cap  (Eq. 5/34).
    line_rows: Dict[int, Dict[int, Fraction]] = {}
    for line_index in lines:
        line = grid.line(line_index)
        row = {theta[line.from_bus]: line.admittance,
               theta[line.to_bus]: -line.admittance}
        line_rows[line_index] = row
        lp.add_constraint(row, lower=-line.capacity, upper=line.capacity)

    # Bus power balance (Eqs. 32-33): sum(in flows) - sum(out flows)
    #   = demand - generation.
    active = set(lines)
    for bus in grid.buses:
        coeffs: Dict[int, Fraction] = {}

        def accumulate(row: Dict[int, Fraction], sign: int) -> None:
            for var, coeff in row.items():
                coeffs[var] = coeffs.get(var, Fraction(0)) + sign * coeff

        for line in grid.lines_in(bus.index):
            if line.index in active:
                accumulate(line_rows[line.index], +1)
        for line in grid.lines_out(bus.index):
            if line.index in active:
                accumulate(line_rows[line.index], -1)
        if bus.index in gen_vars:
            coeffs[gen_vars[bus.index]] = coeffs.get(
                gen_vars[bus.index], Fraction(0)) + 1
        lp.add_equality(coeffs, demand.get(bus.index, Fraction(0)))

    objective = {gen_vars[gen.bus]: gen.cost_beta
                 for gen in grid.generators.values()}
    constant = sum((gen.cost_alpha for gen in grid.generators.values()),
                   Fraction(0))
    lp.set_objective(objective, constant)

    result = lp.solve()
    if result.status is not LpStatus.OPTIMAL:
        return DcOpfResult(False, None)

    angles = {bus.index: result.values[theta[bus.index]]
              for bus in grid.buses}
    dispatch = {bus: result.values[var] for bus, var in gen_vars.items()}
    flows: Dict[int, Fraction] = {}
    binding: List[int] = []
    for line_index in lines:
        line = grid.line(line_index)
        flow = line.admittance * (angles[line.from_bus] - angles[line.to_bus])
        flows[line_index] = flow
        if abs(float(line.capacity - abs(flow))) <= binding_tolerance:
            binding.append(line_index)
    return DcOpfResult(True, result.objective, dispatch, flows, angles,
                       binding)


def _solve_highs(grid: Grid, demand: Dict[int, Fraction],
                 lines: List[int], binding_tolerance: float) -> DcOpfResult:
    buses = grid.num_buses
    gens = sorted(grid.generators)
    n = buses + len(gens)  # angles then generator outputs
    gen_pos = {bus: buses + k for k, bus in enumerate(gens)}

    c = np.zeros(n)
    for bus in gens:
        c[gen_pos[bus]] = float(grid.generators[bus].cost_beta)

    bounds: List[tuple] = []
    for bus in grid.buses:
        if bus.index == grid.reference_bus:
            bounds.append((0.0, 0.0))
        else:
            bounds.append((None, None))
    for bus in gens:
        gen = grid.generators[bus]
        bounds.append((float(gen.p_min), float(gen.p_max)))

    A_ub_rows, b_ub = [], []
    for line_index in lines:
        line = grid.line(line_index)
        y = float(line.admittance)
        row = np.zeros(n)
        row[line.from_bus - 1] = y
        row[line.to_bus - 1] = -y
        A_ub_rows.append(row.copy())
        b_ub.append(float(line.capacity))
        A_ub_rows.append(-row)
        b_ub.append(float(line.capacity))

    A_eq_rows, b_eq = [], []
    active = set(lines)
    for bus in grid.buses:
        row = np.zeros(n)
        for line in grid.lines_in(bus.index):
            if line.index in active:
                y = float(line.admittance)
                row[line.from_bus - 1] += y
                row[line.to_bus - 1] -= y
        for line in grid.lines_out(bus.index):
            if line.index in active:
                y = float(line.admittance)
                row[line.from_bus - 1] -= y
                row[line.to_bus - 1] += y
        if bus.index in gen_pos:
            row[gen_pos[bus.index]] = 1.0
        A_eq_rows.append(row)
        b_eq.append(float(demand.get(bus.index, 0)))

    result = linprog(c, A_ub=np.array(A_ub_rows), b_ub=np.array(b_ub),
                     A_eq=np.array(A_eq_rows), b_eq=np.array(b_eq),
                     bounds=bounds, method="highs")
    if not result.success:
        return DcOpfResult(False, None)

    constant = sum(float(g.cost_alpha) for g in grid.generators.values())
    angles = {bus.index: to_fraction(round(result.x[bus.index - 1], 12))
              for bus in grid.buses}
    dispatch = {bus: to_fraction(round(result.x[gen_pos[bus]], 12))
                for bus in gens}
    flows: Dict[int, Fraction] = {}
    binding: List[int] = []
    for line_index in lines:
        line = grid.line(line_index)
        flow = line.admittance * (angles[line.from_bus] - angles[line.to_bus])
        flows[line_index] = flow
        if abs(float(line.capacity - abs(flow))) <= binding_tolerance:
            binding.append(line_index)
    return DcOpfResult(True, to_fraction(round(result.fun + constant, 9)),
                       dispatch, flows, angles, binding)
