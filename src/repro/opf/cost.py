"""Generator cost functions.

The paper models costs as piecewise-linear convex functions and uses the
single-segment form ``C(P) = alpha + beta * P`` in its case studies.  We
implement the general multi-segment form (what "many electric utilities
prefer", paper Section III-E) and treat the single segment as the common
special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple, Union

from repro.exceptions import ModelError
from repro.grid.components import Generator
from repro.smt.rational import to_fraction

Num = Union[int, float, str, Fraction]


@dataclass(frozen=True)
class CostSegment:
    """One linear segment: valid for output in [start, end] with slope."""

    start: Fraction
    end: Fraction
    slope: Fraction

    def __post_init__(self) -> None:
        for name in ("start", "end", "slope"):
            object.__setattr__(self, name, to_fraction(getattr(self, name)))
        if self.end < self.start:
            raise ModelError("segment end before start")


class PiecewiseLinearCost:
    """A convex piecewise-linear cost curve.

    ``base`` is the cost at the first breakpoint (the alpha of the paper's
    single-segment form); segments must be contiguous with non-decreasing
    slopes (convexity), which is what lets OPF treat each segment as an
    independent dispatch variable.
    """

    def __init__(self, base: Num, segments: Sequence[CostSegment]) -> None:
        if not segments:
            raise ModelError("at least one cost segment required")
        self.base = to_fraction(base)
        self.segments: List[CostSegment] = list(segments)
        previous_end = None
        previous_slope = None
        for segment in self.segments:
            if previous_end is not None and segment.start != previous_end:
                raise ModelError("cost segments must be contiguous")
            if previous_slope is not None and segment.slope < previous_slope:
                raise ModelError("cost curve must be convex "
                                 "(non-decreasing slopes)")
            previous_end = segment.end
            previous_slope = segment.slope

    @classmethod
    def single_segment(cls, generator: Generator) -> "PiecewiseLinearCost":
        """The paper's ``alpha + beta P`` over the dispatch range."""
        return cls(generator.cost_alpha + generator.cost_beta * generator.p_min,
                   [CostSegment(generator.p_min, generator.p_max,
                                generator.cost_beta)])

    @property
    def p_min(self) -> Fraction:
        return self.segments[0].start

    @property
    def p_max(self) -> Fraction:
        return self.segments[-1].end

    def evaluate(self, output: Num) -> Fraction:
        """Total cost at *output* (must lie within the dispatch range)."""
        output = to_fraction(output)
        if not (self.p_min <= output <= self.p_max):
            raise ModelError(
                f"output {output} outside [{self.p_min}, {self.p_max}]")
        total = self.base
        for segment in self.segments:
            if output <= segment.start:
                break
            span = min(output, segment.end) - segment.start
            total += segment.slope * span
        return total

    def marginal_cost(self, output: Num) -> Fraction:
        """Slope of the active segment at *output*."""
        output = to_fraction(output)
        for segment in self.segments:
            if output <= segment.end:
                return segment.slope
        return self.segments[-1].slope


def total_cost(generators: Sequence[Generator],
               dispatch: dict) -> Fraction:
    """Total system cost of a dispatch, paper Eq. 3 objective."""
    total = Fraction(0)
    for gen in generators:
        output = to_fraction(dispatch.get(gen.bus, 0))
        total += gen.cost(output)
    return total
