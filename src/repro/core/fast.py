"""Scalable impact analysis (paper Section IV-A enhancements).

The full SMT model becomes costly past ~14 buses (the paper reports the
same), so this analyzer restricts attention to *single-line* exclusion or
inclusion attacks — exactly the restriction the paper adopts for its
LODF/LCDF evaluation — and exploits problem structure:

* For a pure (no state infection) single-line attack the believed-load
  vector is a **one-parameter family**: both endpoint loads shift by the
  attacked line's flow ``f``.  The attacker-reachable range of ``f`` is
  an interval (an LP over operating points), the believed system's
  feasible range of ``f`` is an interval (parametric LP), and the
  believed optimal cost is convex in ``f`` — so the worst case sits at an
  interval endpoint, found by bisection + two OPF evaluations.

* OPF evaluations use the PTDF-based formulation with LODF/LCDF
  corrections (:class:`~repro.opf.shift_factor.ShiftFactorOpf`), so the
  network matrices are factored once per case.

* With state infection the believed loads gain extra degrees of freedom;
  the analyzer samples seeded vertices of the believed-load box
  (worst cases of a convex function lie on the boundary) and validates
  each sample against the attacker model by reconstructing the required
  state shift and measurement alterations.

Since the session refactor this module holds only the *search strategy*:
candidate enumeration and evaluation.  Preflight, budgets, certificate
bookkeeping, run notes and report assembly live once in
:class:`repro.core.session.AnalysisSession`; the
:class:`FastImpactAnalyzer` facade wires the two together.  The PTDF
factorization is inherently per-case, so the fast strategy is "warm"
from its second query onward — its ``encode_seconds`` is the one-time
pipeline build.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.attacks.model import AttackerModel
from repro.attacks.topology_poisoning import (
    craft_topology_attack,
    validate_against_attacker,
)
from repro.core.results import CandidateEvaluation, ImpactReport
from repro.core.session import AnalysisSession, SearchOutcome, SearchStrategy
from repro.exceptions import CertificateError
from repro.grid.caseio import CaseDefinition
from repro.grid.matrices import state_order
from repro.numerics import collect_diagnostics
from repro.opf.dcopf import solve_dc_opf
from repro.opf.shift_factor import ShiftFactorOpf, TopologyChange
from repro.smt.budget import SolverBudget
from repro.smt.rational import to_fraction

#: relative tolerance of the certified-mode cost recheck: the fast
#: analyzer's PTDF pipeline and the independent B-theta re-solve travel
#: different float paths, so bit-exact agreement is not expected.
_CERT_REL_TOL = 1e-6
#: absolute slack on Eq.-36 load-bound checks (believed loads are rounded
#: to 6 decimals when packed into the report).
_CERT_LOAD_TOL = 1e-5


@dataclass
class FastQuery:
    target_increase_percent: Optional[Fraction] = None
    with_state_infection: bool = False
    state_samples: int = 24
    seed: int = 0
    bisection_tolerance: float = 1e-4
    #: optional resource budget; checked between candidates (and between
    #: state-infection samples), so an exhausted run reports the best
    #: attack over the candidates already examined with
    #: ``status="budget_exhausted"``.
    budget: Optional[SolverBudget] = None
    #: certified mode: a SAT answer is re-verified by an *independent*
    #: exact OPF solve (B-theta formulation, not the PTDF pipeline that
    #: produced it) plus Eq.-36 load-bound and connectivity checks.  None
    #: defers to ``REPRO_SELF_CHECK``.  The fast analyzer's "unsat" is a
    #: bounded single-line search, so there is nothing to certify for it
    #: beyond "no check failed" — see the report's ``certified`` field.
    self_check: Optional[bool] = None
    #: Eq. 37 guard band (percentage points): when the best candidate's
    #: float cost increase lands within this band of the target, the
    #: verdict is not trusted to floating point — the believed OPF is
    #: re-solved on the exact rational path and the threshold comparison
    #: decided in Fractions (boundary escalation, noted on the report).
    #: The default is wide enough to cover the ``_CERT_REL_TOL`` slack
    #: region (1e-6 relative on cost is ~1e-4 percentage points), so a
    #: threshold replayed from an exact believed cost still escalates
    #: instead of being decided by the last bits of a float compare.
    escalation_band: float = 5e-4


class FastSearchStrategy(SearchStrategy):
    """Single-line LODF/LCDF candidate enumeration for a session."""

    kind = "fast"

    def __init__(self, case: CaseDefinition,
                 backend: Optional[str] = None) -> None:
        self.case = case
        self.backend = backend
        self._base_cost = Fraction(0)
        self.evaluations: List[CandidateEvaluation] = []
        self.attacker: Optional[AttackerModel] = None
        self.base_topology: List[int] = []
        self._sf_opf: Optional[ShiftFactorOpf] = None
        self._prepare_seconds = 0.0
        self._analyses = 0
        self._opf_calls_before = 0
        self._opf_seconds_before = 0.0

    @property
    def grid(self):
        return self.session.grid

    # ------------------------------------------------------------------
    # Session surface
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Build the per-case PTDF pipeline and solve the attack-free OPF.

        A :class:`~repro.exceptions.ModelError` propagates to the session
        (→ ``case.model_error`` rejection); an infeasible base OPF is
        reported through :meth:`AnalysisSession.note_base_infeasible`.
        """
        built = time.perf_counter()
        case, grid = self.case, self.session.grid
        self.attacker = AttackerModel.from_case(case, grid)
        self.base_topology = [l.index for l in grid.lines if l.in_service]
        self._sf_opf = ShiftFactorOpf(grid, self.base_topology,
                                      backend=self.backend)
        base = self._sf_opf.solve()
        self._prepare_seconds = time.perf_counter() - built
        if not base.feasible:
            self.session.note_base_infeasible(
                f"case {case.name}: attack-free OPF is infeasible")
            return
        self._base_cost = base.cost

    def base_cost(self) -> Fraction:
        return self._base_cost

    def make_query(self, percent: Fraction, **attrs) -> FastQuery:
        return FastQuery(target_increase_percent=percent, **attrs)

    def begin(self, query: FastQuery, threshold: Fraction) -> None:
        self.evaluations = []
        self._analyses += 1
        self._opf_calls_before = self._sf_opf.solve_calls
        self._opf_seconds_before = self._sf_opf.solve_seconds

    def search(self, query: FastQuery,
               threshold: Fraction) -> SearchOutcome:
        session = self.session
        budget = query.budget
        status = "complete"
        budget_reason: Optional[str] = None
        best: Optional[CandidateEvaluation] = None
        candidates = [("exclude", i)
                      for i in self.attacker.exclusion_candidates()]
        candidates += [("include", i)
                       for i in self.attacker.inclusion_candidates()]
        with collect_diagnostics() as search_warnings:
            for kind, line_index in candidates:
                if budget is not None and budget.exhausted():
                    status = "budget_exhausted"
                    budget_reason = budget.exhausted_reason
                    break
                evaluation = self._evaluate_candidate(
                    kind, line_index, threshold, query)
                self.evaluations.append(evaluation)
                session.record_candidate()
                if evaluation.best_increase_percent is None:
                    continue
                if best is None or (evaluation.best_increase_percent
                                    > best.best_increase_percent):
                    best = evaluation

        # The threshold encodes the target exactly, so this float equals
        # the query's target percentage bit-for-bit.
        target = float((threshold / self._base_cost - 1) * 100)
        # Eq. 37 boundary semantics: reaching the target exactly counts.
        satisfiable = best is not None \
            and best.best_increase_percent >= target
        believed_min: Optional[Fraction] = None
        in_band = best is not None \
            and abs(best.best_increase_percent - target) \
            <= query.escalation_band
        # A verdict computed under ill-conditioning warnings (from the
        # per-case PTDF build or this search's guarded solves) is never
        # trusted either, no matter how far from the boundary it lands.
        suspect = bool(search_warnings) or session.numerically_suspect
        if best is not None and (in_band or suspect):
            # Escalation: the float verdict either sits inside the guard
            # band around the Eq. 37 threshold or was computed on shaky
            # numerics, so it is re-decided on the exact path instead of
            # trusting the last few bits of a float comparison.
            exact = self._exact_verdict(best, threshold)
            if exact is None:
                satisfiable = False
            else:
                satisfiable, believed_min = exact
            session.note_boundary_escalation(
                best.kind, best.line_index, best.best_increase_percent,
                target, satisfiable,
                trigger=None if in_band else
                "was computed under ill-conditioning warnings")
        if satisfiable:
            if believed_min is None:
                believed_min = self._base_cost * to_fraction(
                    1 + best.best_increase_percent / 100)
            from repro.core.encoding import AttackVectorSolution
            solution = AttackVectorSolution(
                excluded=[best.line_index] if best.kind == "exclude" else [],
                included=[best.line_index] if best.kind == "include" else [],
                infected_states=[],
                altered_measurements=best.altered_measurements,
                compromised_buses=sorted(
                    {self.attacker.plan.location_of(m)
                     for m in best.altered_measurements}),
                believed_loads={b: to_fraction(round(v, 6))
                                for b, v in best.believed_loads.items()},
                state_shift={}, operating_dispatch={}, operating_flows={},
                operating_cost=Fraction(0))
            return SearchOutcome(satisfiable=True, solution=solution,
                                 believed_min=believed_min, status=status,
                                 budget_reason=budget_reason)
        return SearchOutcome(satisfiable=False, status=status,
                             budget_reason=budget_reason)

    def certify_outcome(self, outcome: SearchOutcome,
                        threshold: Fraction) -> None:
        stats = self._certify_solution(outcome.solution,
                                       outcome.believed_min, threshold)
        self.session.merge_cert_stats(stats)

    def _exact_verdict(self, best: CandidateEvaluation,
                       threshold: Fraction
                       ) -> Optional[Tuple[bool, Fraction]]:
        """Re-decide an Eq. 37 boundary verdict on the exact path.

        The best candidate's believed OPF is re-solved with the angle
        formulation — exact rational simplex up to 30 buses, mirroring
        the certified-mode method split — and the threshold comparison
        happens in Fractions, with the same :data:`_CERT_REL_TOL`
        relative slack the certified recheck applies (the candidate's
        loads travelled through the float PTDF pipeline, so demanding
        bit-exact threshold attainment would flip verdicts that
        certification itself accepts).  Returns ``(satisfiable,
        believed_cost)``, or None when the believed OPF is infeasible
        on the independent path (the candidate is then not trusted:
        verdict falls to unsat).
        """
        loads = {bus: to_fraction(round(value, 6))
                 for bus, value in best.believed_loads.items()}
        topology = self._believed_topology(best.kind, best.line_index)
        method = "exact" if self.grid.num_buses <= 30 else "highs"
        result = solve_dc_opf(self.grid, loads=loads,
                              line_indices=topology, method=method)
        if not result.feasible:
            return None
        satisfiable = result.cost >= threshold \
            or float(result.cost) \
            >= float(threshold) * (1 - _CERT_REL_TOL) - 1e-9
        return bool(satisfiable), to_fraction(result.cost)

    # ------------------------------------------------------------------
    # Trace hooks
    # ------------------------------------------------------------------

    def encode_info(self) -> Dict:
        if self._analyses <= 1:
            return {"warm": False, "encodings_built": 1,
                    "encode_seconds": self._prepare_seconds}
        return {"warm": True, "encodings_built": 0,
                "encode_seconds": 0.0}

    def opf_trace(self) -> Dict:
        if self._sf_opf is None:
            # prepare() degraded before the PTDF pipeline existed (e.g.
            # a numerically unstable susceptance matrix): no solves ran.
            return {"solves": 0, "seconds": 0.0}
        return {"solves": self._sf_opf.solve_calls - self._opf_calls_before,
                "seconds": (self._sf_opf.solve_seconds
                            - self._opf_seconds_before)}

    # ------------------------------------------------------------------
    # Certified recheck
    # ------------------------------------------------------------------

    def _certify_solution(self, solution, believed_min: Fraction,
                          threshold: Fraction) -> Dict:
        """Independently re-verify a fast-path SAT answer.

        The PTDF/LODF pipeline that found the attack is *not* reused: the
        believed system is re-solved from scratch with the B-theta OPF
        (exact rationals up to 30 buses, HiGHS beyond), and the believed
        topology, Eq.-36 load bounds and threshold claim are re-checked.
        Raises :class:`CertificateError` on any disagreement.
        """
        started = time.perf_counter()
        topology = solution.believed_topology(self.grid)
        if not self.grid.is_connected(topology):
            raise CertificateError(
                "certified recheck: believed topology is disconnected")
        for bus, value in solution.believed_loads.items():
            load = self.grid.loads.get(bus)
            if load is None:
                if abs(float(value)) > _CERT_LOAD_TOL:
                    raise CertificateError(
                        f"certified recheck: believed load at non-load "
                        f"bus {bus}")
                continue
            if float(value) < float(load.p_min) - _CERT_LOAD_TOL \
                    or float(value) > float(load.p_max) + _CERT_LOAD_TOL:
                raise CertificateError(
                    f"certified recheck: believed load at bus {bus} "
                    f"violates Eq. 36 bounds")
        method = "exact" if self.grid.num_buses <= 30 else "highs"
        result = solve_dc_opf(self.grid, loads=solution.believed_loads,
                              line_indices=topology, method=method)
        if not result.feasible:
            raise CertificateError(
                "certified recheck: believed OPF is infeasible (Eq. 38)")
        recomputed = float(result.cost)
        claimed = float(believed_min)
        if abs(recomputed - claimed) > _CERT_REL_TOL * max(
                1.0, abs(claimed)) + 1e-4 * abs(claimed):
            raise CertificateError(
                f"certified recheck: believed optimal cost {claimed:.6f} "
                f"disagrees with independent re-solve {recomputed:.6f}")
        if recomputed < float(threshold) * (1 - _CERT_REL_TOL) - 1e-9:
            raise CertificateError(
                f"certified recheck: re-solved cost {recomputed:.6f} is "
                f"below the threshold {float(threshold):.6f}")
        return {"enabled": True, "models_checked": 1,
                "recheck_method": method,
                "recheck_cost": recomputed,
                "seconds": time.perf_counter() - started}

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def _believed_topology(self, kind: str, line_index: int) -> List[int]:
        if kind == "exclude":
            return [i for i in self.base_topology if i != line_index]
        return self.base_topology + [line_index]

    def _note_islanding(self, kind: str, line_index: int) -> None:
        excluded = [line_index] if kind == "exclude" else []
        included = [line_index] if kind == "include" else []
        self.session.note_islanding(excluded, included)

    def _evaluate_candidate(self, kind: str, line_index: int,
                            threshold: Fraction,
                            query: FastQuery) -> CandidateEvaluation:
        # Post-attack revalidation *before* the PTDF/LODF pipeline: a
        # bridge-line exclusion makes the believed susceptance matrix
        # singular, which used to surface as a numpy LinAlgError.
        if not self.grid.is_connected(
                self._believed_topology(kind, line_index)):
            self._note_islanding(kind, line_index)
            return CandidateEvaluation(
                kind, line_index, False,
                "believed topology is disconnected")
        problems = self._required_alterations(kind, line_index)
        if isinstance(problems, str):
            return CandidateEvaluation(kind, line_index, False, problems)
        altered = problems

        flow_range = self._reachable_flow_range(kind, line_index)
        if flow_range is None:
            return CandidateEvaluation(kind, line_index, False,
                                       "flow unreachable in operation")
        lo, hi = flow_range

        # Believability bounds on the endpoint loads (Eq. 36) shrink the
        # usable flow range.
        line = self.grid.line(line_index)
        sign = 1.0 if kind == "exclude" else -1.0
        window = self._load_window(line.from_bus, sign)
        if window is None:
            return CandidateEvaluation(kind, line_index, False,
                                       "from-bus has no load headroom")
        lo, hi = max(lo, window[0]), min(hi, window[1])
        window = self._load_window(line.to_bus, -sign)
        if window is None:
            return CandidateEvaluation(kind, line_index, False,
                                       "to-bus has no load headroom")
        lo, hi = max(lo, window[0]), min(hi, window[1])
        if lo > hi:
            return CandidateEvaluation(kind, line_index, False,
                                       "believability bounds empty")

        best = self._maximize_over_interval(kind, line_index, lo, hi,
                                            query.bisection_tolerance)
        if best is None:
            return CandidateEvaluation(kind, line_index, False,
                                       "believed OPF never converges")
        best_f, best_cost, loads = best

        increase = 100 * (float(best_cost) / float(self._base_cost) - 1)
        evaluation = CandidateEvaluation(
            kind, line_index, True,
            best_increase_percent=increase,
            believed_loads=loads,
            altered_measurements=sorted(altered))

        if query.with_state_infection:
            sampled = self._state_infection_samples(
                kind, line_index, threshold, query)
            if sampled is not None and sampled[0] > increase:
                evaluation.best_increase_percent = sampled[0]
                evaluation.believed_loads = sampled[1]
                evaluation.altered_measurements = sampled[2]
        return evaluation

    def _required_alterations(self, kind: str, line_index: int):
        """Measurements a nonzero-flow single-line attack must alter."""
        plan = self.attacker.plan
        line = self.grid.line(line_index)
        l = self.grid.num_lines
        needed = set()
        for m in (line_index, l + line_index,
                  2 * l + line.from_bus, 2 * l + line.to_bus):
            if plan.is_taken(m):
                needed.add(m)
        if (plan.is_taken(line_index) or plan.is_taken(l + line_index)) \
                and not self.attacker.knows_admittance(line_index):
            return f"admittance of line {line_index} unknown"
        problems = self.attacker.check_alteration_set(needed)
        if problems:
            return "; ".join(problems)
        return needed

    def _reachable_flow_range(self, kind: str, line_index: int
                              ) -> Optional[Tuple[float, float]]:
        """Range of the attacked line's (would-be) flow over feasible
        operating points — an LP over dispatches."""
        grid = self.grid
        gens = sorted(grid.generators)
        factors = self._sf_opf.factors
        demand = np.zeros(grid.num_buses)
        for load in grid.loads.values():
            demand[load.bus - 1] = float(load.existing)

        if kind == "exclude":
            row = factors.row(line_index)
        else:
            # Would-be flow of the open line: d * (theta_f - theta_e),
            # a cached factorized solve on the base susceptance matrix.
            row = factors.open_line_flow_row(line_index)

        flow_gen = np.array([row[bus - 1] for bus in gens])
        flow_const = -float(row @ demand)

        # Operating constraints: all base-topology line capacities.
        M = self._sf_opf.gen_flow_matrix()
        base = factors.flows_for_injections(-demand)
        capacities = np.array([float(grid.line(i).capacity)
                               for i in factors.lines])
        A_ub = np.vstack([M, -M])
        b_ub = np.concatenate([capacities - base, capacities + base])
        A_eq = np.ones((1, len(gens)))
        b_eq = np.array([float(demand.sum())])
        bounds = [(float(grid.generators[b].p_min),
                   float(grid.generators[b].p_max)) for b in gens]

        extremes = []
        for direction in (1.0, -1.0):
            result = linprog(direction * flow_gen, A_ub=A_ub, b_ub=b_ub,
                             A_eq=A_eq, b_eq=b_eq, bounds=bounds,
                             method="highs")
            if not result.success:
                return None
            extremes.append(float(flow_gen @ result.x) + flow_const)
        low, high = min(extremes), max(extremes)
        cap = float(self.grid.line(line_index).capacity)
        return max(low, -cap), min(high, cap)

    def _load_window(self, bus: int, sign: float
                     ) -> Optional[Tuple[float, float]]:
        """Flow interval keeping ``load + sign*f`` within Eq.-36 bounds."""
        load = self.grid.loads.get(bus)
        if load is None:
            # No load to absorb the change: only f = 0 is consistent,
            # which is a no-op attack.
            return None
        low = float(load.p_min - load.existing)
        high = float(load.p_max - load.existing)
        if sign > 0:
            return low, high
        return -high, -low

    def _believed_cost(self, kind: str, line_index: int,
                       f: float) -> Optional[Fraction]:
        line = self.grid.line(line_index)
        sign = 1.0 if kind == "exclude" else -1.0
        loads = {bus: float(load.existing)
                 for bus, load in self.grid.loads.items()}
        loads[line.from_bus] = loads.get(line.from_bus, 0.0) + sign * f
        loads[line.to_bus] = loads.get(line.to_bus, 0.0) - sign * f
        change = TopologyChange(kind, line_index)
        result = self._sf_opf.solve(
            loads={b: to_fraction(round(v, 9)) for b, v in loads.items()},
            change=change)
        if not result.feasible:
            return None
        return result.cost

    def _maximize_over_interval(self, kind: str, line_index: int,
                                lo: float, hi: float, tolerance: float
                                ) -> Optional[Tuple[float, Fraction, Dict]]:
        """Max believed cost over the flow interval (convex => endpoints).

        The believed system's feasible flow-set is itself an interval; its
        boundaries are located by bisection before evaluating the cost at
        the two boundary points.
        """
        feasible_points = [f for f in (lo, hi, 0.5 * (lo + hi))
                           if self._believed_cost(kind, line_index, f)
                           is not None]
        if not feasible_points:
            # Scan for any feasible point before giving up.
            probes = np.linspace(lo, hi, 9)
            feasible_points = [
                float(f) for f in probes
                if self._believed_cost(kind, line_index, float(f))
                is not None]
            if not feasible_points:
                return None
        anchor = feasible_points[0]

        def boundary(toward: float) -> float:
            good, bad = anchor, toward
            if self._believed_cost(kind, line_index, toward) is not None:
                return toward
            while abs(bad - good) > tolerance:
                mid = 0.5 * (good + bad)
                if self._believed_cost(kind, line_index, mid) is not None:
                    good = mid
                else:
                    bad = mid
            return good

        left = boundary(lo)
        right = boundary(hi)
        best = None
        for f in {left, right}:
            cost = self._believed_cost(kind, line_index, f)
            if cost is None:
                continue
            if best is None or cost > best[1]:
                line = self.grid.line(line_index)
                sign = 1.0 if kind == "exclude" else -1.0
                loads = {bus: float(load.existing)
                         for bus, load in self.grid.loads.items()}
                loads[line.from_bus] += sign * f
                loads[line.to_bus] -= sign * f
                best = (f, cost, loads)
        return best

    # ------------------------------------------------------------------
    # State-infection sampling
    # ------------------------------------------------------------------

    def _state_infection_samples(self, kind: str, line_index: int,
                                 threshold: Fraction, query: FastQuery
                                 ) -> Optional[Tuple[float, Dict, List[int]]]:
        """Seeded boundary samples of the believed-load box.

        Each sample is validated by reconstructing the state shift that
        realizes it (least squares on the consumption operator) and
        checking the induced measurement alterations against the attacker
        model.
        """
        grid = self.grid
        rng = random.Random(query.seed * 7919 + line_index)
        load_buses = sorted(grid.loads)
        if len(load_buses) < 2:
            return None
        believed_topology = [i for i in self.base_topology
                             if i != line_index] \
            if kind == "exclude" else self.base_topology + [line_index]
        if not grid.is_connected(believed_topology):
            return None

        # Consumption-change operator over the believed topology:
        # delta_B = C @ delta_theta (reduced states).
        order = state_order(grid)
        C = np.zeros((grid.num_buses, len(order)))
        for line in grid.lines:
            if line.index not in set(believed_topology):
                continue
            y = float(line.admittance)
            f, t = line.from_bus, line.to_bus
            for bus, s in ((f, -1.0), (t, 1.0)):
                # d(consumption at from) = -y*(dth_f - dth_t), at to: +y*...
                if f != grid.reference_bus:
                    C[bus - 1, order.index(f)] += s * y
                if t != grid.reference_bus:
                    C[bus - 1, order.index(t)] -= s * y

        best: Optional[Tuple[float, Dict, List[int]]] = None
        operating = solve_dc_opf(grid, method="highs")
        if not operating.feasible:
            return None
        flows = {i: float(v) for i, v in operating.flows.items()}
        angles = {b: float(v) for b, v in operating.angles.items()}

        for _ in range(query.state_samples):
            if query.budget is not None and query.budget.exhausted():
                break
            target: Dict[int, float] = {}
            total_shift = 0.0
            chosen = rng.sample(load_buses,
                                min(len(load_buses), rng.randint(2, 4)))
            for bus in chosen[:-1]:
                load = grid.loads[bus]
                extreme = float(load.p_max) if rng.random() < 0.5 \
                    else float(load.p_min)
                target[bus] = extreme
                total_shift += extreme - float(load.existing)
            balance_bus = chosen[-1]
            load = grid.loads[balance_bus]
            balanced = float(load.existing) - total_shift
            if not float(load.p_min) <= balanced <= float(load.p_max):
                continue
            target[balance_bus] = balanced

            delta_b = np.zeros(grid.num_buses)
            for bus, value in target.items():
                delta_b[bus - 1] = value - float(grid.loads[bus].existing)
            # Account for the topology part of the load change.
            line = grid.line(line_index)
            f_now = flows.get(line_index, 0.0) if kind == "exclude" else \
                float(line.admittance) * (angles[line.from_bus]
                                          - angles[line.to_bus])
            sign = 1.0 if kind == "exclude" else -1.0
            topo_part = np.zeros(grid.num_buses)
            topo_part[line.from_bus - 1] += sign * f_now
            topo_part[line.to_bus - 1] -= sign * f_now
            residual_target = delta_b - topo_part

            dtheta, residuals, _, _ = np.linalg.lstsq(
                C, residual_target, rcond=None)
            if np.linalg.norm(C @ dtheta - residual_target) > 1e-8:
                continue  # load vector not realizable by state shifts

            shift = {bus: float(dtheta[pos])
                     for pos, bus in enumerate(order)
                     if abs(dtheta[pos]) > 1e-10}
            attack = craft_topology_attack(
                grid, flows, angles,
                excluded=[line_index] if kind == "exclude" else [],
                included=[line_index] if kind == "include" else [],
                state_shift=shift)
            if validate_against_attacker(attack, self.attacker):
                continue

            loads = {bus: float(load.existing) + delta_b[bus - 1]
                     for bus, load in grid.loads.items()}
            result = self._sf_opf.solve(
                loads={b: to_fraction(round(v, 9))
                       for b, v in loads.items()},
                change=TopologyChange(kind, line_index))
            if not result.feasible:
                continue
            increase = 100 * (float(result.cost)
                              / float(self._base_cost) - 1)
            if best is None or increase > best[0]:
                best = (increase, loads, attack.altered_measurements)
        return best


class FastImpactAnalyzer:
    """Single-line topology-attack impact analysis at IEEE-118 scale.

    A thin facade over :class:`AnalysisSession` +
    :class:`FastSearchStrategy`; the PTDF pipeline is built once in the
    constructor and reused across :meth:`analyze` calls.
    """

    def __init__(self, case: CaseDefinition,
                 preflight: bool = True,
                 backend: Optional[str] = None) -> None:
        self._strategy = FastSearchStrategy(case, backend=backend)
        self.session = AnalysisSession(case, self._strategy,
                                       preflight=preflight,
                                       backend=backend)

    @property
    def case(self) -> CaseDefinition:
        return self.session.case

    @property
    def preflight(self):
        return self.session.preflight

    @property
    def grid(self):
        return self.session.grid

    @property
    def base_cost(self) -> Fraction:
        return self._strategy.base_cost()

    @property
    def evaluations(self) -> List[CandidateEvaluation]:
        return self._strategy.evaluations

    @property
    def attacker(self) -> Optional[AttackerModel]:
        return self._strategy.attacker

    @property
    def base_topology(self) -> List[int]:
        return self._strategy.base_topology

    @property
    def _sf_opf(self) -> Optional[ShiftFactorOpf]:
        return self._strategy._sf_opf

    def threshold_for(self, percent) -> Fraction:
        return self.session.threshold_for(percent)

    def analyze(self, query: Optional[FastQuery] = None) -> ImpactReport:
        return self.session.analyze(query or FastQuery())

    def solve_at(self, percent=None, **attrs) -> ImpactReport:
        """Analyze at a new target percentage, reusing the warm pipeline."""
        return self.session.solve_at(percent, **attrs)

    def max_impact(self, tolerance=None, **search_kwargs):
        """Bisect to the maximum achievable increase I* (see
        :class:`repro.search.MaxImpactSearch`)."""
        from repro.search import DEFAULT_TOLERANCE, MaxImpactSearch
        if tolerance is None:
            tolerance = DEFAULT_TOLERANCE
        query_attrs = search_kwargs.pop("query_attrs", {})
        return MaxImpactSearch(self, tolerance=tolerance,
                               **search_kwargs).run(**query_attrs)
