"""The shared analysis-session layer behind both impact analyzers.

The paper's framework (Fig. 2) is *one* analysis loop — find a stealthy
attack vector, check the OPF cost threshold, block, repeat — yet the
repo used to implement its cross-cutting lifecycle twice, once per
analyzer.  :class:`AnalysisSession` now owns every concern that is
independent of *how* candidates are generated and evaluated:

* preflight validation and deferred rejection (``invalid_input`` /
  ``degenerate_case`` / ``case.model_error`` / ``opf.base_infeasible``);
* threshold derivation (``T_OPF = base * (1 + I/100)``, paper Eq. 37);
* resource-budget start and exhaustion handling (partial reports);
* certificate bookkeeping — the per-run stats dict, the
  :func:`verify_sat` / :func:`verify_unsat` wrappers, and the
  ``certificate_error`` escalation path;
* run-note collection (islanding warnings) and diagnostics merging;
* trace emission and every :class:`ImpactReport` shape (success, unsat,
  partial, certificate-error, rejected).

The analyzers are reduced to *search strategies* plugged into a session:
:class:`~repro.core.framework.SmtSearchStrategy` runs the full SMT loop,
:class:`~repro.core.fast.FastSearchStrategy` the single-line LODF/LCDF
enumeration.  A strategy implements the narrow
:class:`SearchStrategy` surface and reports its findings as a
:class:`SearchOutcome`; everything else happens here, exactly once.

Incremental scenario reuse: a session whose strategy supports it keeps
its encoded model warm between :meth:`analyze` calls — consecutive
queries that differ only in the cost threshold (a Fig.-4 style sweep)
re-solve against the same clause database via the solver's
guard-literal ``push()``/``pop()`` scopes, retaining learned clauses and
simplex state.  :meth:`solve_at` is the convenience entry point; the
sweep engine groups scenarios by encoding fingerprint and runs each
group through one warm session per worker.  The per-run trace records
the split in ``trace.session``: ``encode_seconds`` (paid once per
encoding) vs ``solve_seconds``, plus ``warm`` and ``encodings_built``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.results import AnalysisTrace, ImpactReport
from repro.exceptions import (
    BudgetExhausted,
    CertificateError,
    ModelError,
    NumericalInstability,
)
from repro.numerics import collect_diagnostics
from repro.smt.certificates import (
    CheckReport,
    self_check_default,
    verify_sat,
    verify_unsat,
)
from repro.smt.rational import to_fraction
from repro.validation import (
    DEGRADED,
    FATAL,
    WARNING,
    ValidationReport,
    validate_case,
)

#: cap on the per-check event list kept in the trace (counters are exact).
_MAX_CERT_EVENTS = 200
#: cap on the per-run "candidate islands the network" notes recorded.
_MAX_ISLANDING_NOTES = 3
#: cap on the per-run numeric warning / escalation notes recorded.
_MAX_NUMERIC_NOTES = 3


@dataclass
class SearchOutcome:
    """What a strategy's search found (the session builds the report).

    ``status`` is ``"complete"`` for a definitive verdict or
    ``"budget_exhausted"`` when the strategy stopped early at a loop-top
    budget probe (strategies may alternatively let
    :class:`BudgetExhausted` propagate; the session converts it to the
    same partial report).  ``confirmed`` carries the optional Eq.-37/38
    SMT OPF confirmation of a successful attack.
    """

    satisfiable: bool = False
    solution: Optional[Any] = None
    believed_min: Optional[Fraction] = None
    status: str = "complete"
    budget_reason: Optional[str] = None
    confirmed: Optional[bool] = None


class SearchStrategy:
    """The surface a candidate-search strategy implements.

    Concrete strategies override everything that raises; the defaults
    cover strategies without an SMT solver (``smt_trace`` zeros mirror
    what sweep traces expect for non-SMT cells).
    """

    #: "smt" | "fast" — mirrored in traces and the engine's grouping.
    kind: str = "?"

    def bind(self, session: "AnalysisSession") -> None:
        self.session = session

    def prepare(self) -> None:
        """Build per-case machinery (called once, after preflight).

        May raise :class:`ModelError` (→ ``case.model_error`` rejection)
        or call :meth:`AnalysisSession.note_base_infeasible`.
        """

    def base_cost(self) -> Fraction:
        """The attack-free optimal cost (may raise :class:`ModelError`)."""
        raise NotImplementedError

    def validate_query(self, query) -> None:
        """Raise :class:`ModelError` for contradictory queries."""

    def begin(self, query, threshold: Fraction) -> None:
        """Per-run setup: (re)encode, wire the budget, reset counters."""
        raise NotImplementedError

    def search(self, query, threshold: Fraction) -> SearchOutcome:
        """Run the candidate search.  May raise :class:`BudgetExhausted`
        or :class:`CertificateError`; the session builds the report."""
        raise NotImplementedError

    def certify_outcome(self, outcome: SearchOutcome,
                        threshold: Fraction) -> None:
        """Post-search cross-check of a successful attack (certified
        mode only).  Strategies that certify inline leave this a no-op;
        raise :class:`CertificateError` to reject the answer."""

    def make_query(self, percent: Fraction, **attrs):
        """A strategy-appropriate query for :meth:`AnalysisSession.solve_at`."""
        raise NotImplementedError

    # -- trace hooks ----------------------------------------------------

    def encode_info(self) -> Dict[str, Any]:
        """``{"warm", "encodings_built", "encode_seconds"}`` for the run."""
        return {"warm": False, "encodings_built": 0, "encode_seconds": 0.0}

    def smt_trace(self) -> Dict[str, Any]:
        # Strategies that never touch the SMT solver report explicit
        # zeros so sweep traces stay uniform.
        return {"solve_calls": 0, "decisions": 0, "conflicts": 0,
                "theory_conflicts": 0, "simplex_pivots": 0,
                "total_seconds": 0.0}

    def opf_trace(self) -> Dict[str, Any]:
        return {"solves": 0, "seconds": 0.0}

    def solver_calls(self) -> int:
        return 0


class AnalysisSession:
    """Owns one case's full analysis lifecycle for a plugged-in strategy."""

    def __init__(self, case, strategy: SearchStrategy,
                 preflight: bool = True,
                 backend: Optional[str] = None) -> None:
        self.case = case
        self.strategy = strategy
        #: linear-algebra backend requested for this session (None/auto
        #: resolve per problem size); threaded through preflight so the
        #: observability check scales with the case.
        self.backend = backend
        #: preflight findings; fatal ones mean :meth:`analyze` returns a
        #: rejected report instead of touching the strategy's machinery.
        self.preflight = validate_case(case, backend=backend) if preflight \
            else ValidationReport(subject=case.name)
        self._rejection = self.preflight.fatal_status()
        self.grid = None
        self._run_notes = ValidationReport(subject=case.name)
        self._certify = False
        self._cert_stats: Dict = {}
        self.candidates_examined = 0
        self._best_seen: Optional[Tuple[Any, Fraction]] = None
        self._boundary_escalations = 0
        #: guarded linear algebra refused the case's base matrices; every
        #: :meth:`analyze` call degrades to ``numerical_unstable``.
        self._numeric_failure: Optional[NumericalInstability] = None
        self._prepare_numeric_warnings = 0
        strategy.bind(self)
        if self._rejection is None:
            try:
                with collect_diagnostics() as numeric_notes:
                    self.grid = case.build_grid()
                    strategy.prepare()
                self._note_numeric_warnings(numeric_notes,
                                            sink=self.preflight)
                self._prepare_numeric_warnings = len(numeric_notes)
            except ModelError as exc:
                # Safety net: preflight models the Grid invariants at the
                # spec level, but a construction failure it missed must
                # still reject, not crash.
                self.preflight.add("case.model_error", FATAL, str(exc))
                self._rejection = self.preflight.fatal_status()
            except NumericalInstability as exc:
                # The base topology's matrices are too ill-conditioned to
                # trust (near-singular B, pathological admittance spread).
                # Not a modelling error: the case is well-formed, the
                # arithmetic just cannot be verified at this precision.
                self._numeric_failure = exc

    # ------------------------------------------------------------------
    # Threshold derivation and rejection
    # ------------------------------------------------------------------

    @property
    def rejected(self) -> bool:
        return self._rejection is not None

    @property
    def certify_enabled(self) -> bool:
        return self._certify

    @property
    def numerically_suspect(self) -> bool:
        """Did guarded linear algebra warn while preparing this case?

        Warn-band findings (condition/residual past *warn* but under
        *fail*) don't degrade the analysis, but a float verdict built on
        them should not be trusted unverified — the fast strategy uses
        this to escalate its verdict to the exact path even when the
        result lands far from the Eq. 37 boundary.
        """
        return self._prepare_numeric_warnings > 0

    def base_cost(self) -> Fraction:
        return self.strategy.base_cost()

    def threshold_for(self, percent) -> Fraction:
        """T_OPF = base * (1 + I/100)."""
        return self.base_cost() * (1 + to_fraction(percent) / 100)

    def note_base_infeasible(self, message: str) -> None:
        """Record the attack-free OPF's infeasibility as a rejection.

        Preflight admits the case on aggregate load/capacity, but line
        limits can still make the base OPF infeasible; both strategies
        funnel that discovery here.
        """
        self.preflight.add(
            "opf.base_infeasible", FATAL, message,
            hint="no dispatch satisfies the base case's line and "
                 "generation limits")
        self._rejection = self.preflight.fatal_status()

    # ------------------------------------------------------------------
    # The shared analyze() lifecycle
    # ------------------------------------------------------------------

    def analyze(self, query) -> ImpactReport:
        started = time.perf_counter()
        percent = to_fraction(
            query.target_increase_percent
            if query.target_increase_percent is not None
            else self.case.min_increase_percent)
        self._run_notes = ValidationReport(subject=self.case.name)
        if self._rejection is not None:
            return ImpactReport.rejected(
                self.preflight, percent,
                elapsed_seconds=time.perf_counter() - started)
        if self._numeric_failure is not None:
            return self._numeric_report(
                None, percent, started, self._numeric_failure)
        try:
            threshold = self.threshold_for(percent)
        except ModelError as exc:
            self.note_base_infeasible(str(exc))
            return ImpactReport.rejected(
                self.preflight, percent,
                elapsed_seconds=time.perf_counter() - started)
        except NumericalInstability as exc:
            return self._numeric_report(None, percent, started, exc)
        self.strategy.validate_query(query)

        self._certify = self_check_default(query.self_check)
        self._cert_stats = self._fresh_cert_stats()
        self.candidates_examined = 0
        self._best_seen = None
        self._boundary_escalations = 0
        budget = query.budget
        if budget is not None:
            budget.start()

        with collect_diagnostics() as numeric_notes:
            self.strategy.begin(query, threshold)
            try:
                outcome = self.strategy.search(query, threshold)
                if outcome.satisfiable and self._certify:
                    self.strategy.certify_outcome(outcome, threshold)
            except BudgetExhausted as exc:
                outcome = SearchOutcome(status="budget_exhausted",
                                        budget_reason=exc.reason)
            except NumericalInstability as exc:
                self._note_numeric_warnings(numeric_notes)
                return self._numeric_report(threshold, percent, started, exc)
            except CertificateError as exc:
                self._note_numeric_warnings(numeric_notes)
                return self._certificate_error_report(
                    threshold, percent, started, str(exc))
        self._note_numeric_warnings(numeric_notes)
        return self._outcome_report(outcome, threshold, percent, started)

    def solve_at(self, percent=None, **attrs) -> ImpactReport:
        """Analyze at a new threshold, reusing the warm encoding.

        The incremental entry point for threshold sweeps: builds a
        strategy-appropriate query for ``percent`` (extra query fields
        via ``attrs``) and runs :meth:`analyze`, which re-solves against
        the retained clause database instead of re-encoding.  A ``None``
        percent falls back to ``case.min_increase_percent``, exactly as
        the one-shot :meth:`analyze` path does — on every strategy.
        """
        if percent is None:
            percent = self.case.min_increase_percent
        return self.analyze(
            self.strategy.make_query(to_fraction(percent), **attrs))

    # ------------------------------------------------------------------
    # Run notes and diagnostics
    # ------------------------------------------------------------------

    def note_islanding(self, excluded: Sequence[int],
                       included: Sequence[int]) -> None:
        """Record that a candidate's believed topology is disconnected.

        Post-attack revalidation: the candidate is pruned (the EMS's OPF
        would not converge), and the report's diagnostics say so instead
        of the candidate silently vanishing.
        """
        notes = [d for d in self._run_notes.diagnostics
                 if d.code == "topology.attack_islands_network"]
        if len(notes) >= _MAX_ISLANDING_NOTES:
            return
        excluded = list(excluded)
        included = list(included)
        components = [f"line:{i}" for i in excluded] + \
            [f"line:{i}" for i in included]
        self._run_notes.add(
            "topology.attack_islands_network", WARNING,
            f"candidate attack (excluded={excluded}, "
            f"included={included}) islands the believed "
            f"topology; candidate pruned", components,
            hint="the EMS's OPF has no solution on this view")

    def note_boundary_escalation(self, kind: str, line_index: int,
                                 float_increase: float, target: float,
                                 satisfiable: bool,
                                 trigger: Optional[str] = None) -> None:
        """Record that a float verdict was not trusted and was
        re-derived on the exact path.

        ``trigger`` names why (defaults to the Eq. 37 guard band; the
        other trigger is ill-conditioning warnings during analysis).
        The invariant the degeneracy fuzzer pins: the fast and exact
        analyzers never *silently* disagree — an untrusted verdict is
        either escalated (this note) or degraded to
        ``numerical_unstable``.
        """
        self._boundary_escalations += 1
        notes = [d for d in self._run_notes.diagnostics
                 if d.code == "numeric.boundary_escalated"]
        if len(notes) >= _MAX_NUMERIC_NOTES:
            return
        why = trigger or (f"lies within the guard band of the Eq. 37 "
                          f"target {target:.12g}%")
        self._run_notes.add(
            "numeric.boundary_escalated", WARNING,
            f"candidate ({kind} line {line_index}) float cost increase "
            f"{float_increase:.12g}% {why}; verdict re-derived on the "
            f"exact OPF path ({'sat' if satisfiable else 'unsat'})",
            [f"line:{line_index}"],
            hint="untrusted float verdicts are decided in exact "
                 "arithmetic, never by float comparison")

    def _note_numeric_warnings(self, diagnostics,
                               sink: Optional[ValidationReport] = None
                               ) -> None:
        """Convert guarded-linalg warning diagnostics into run notes.

        Warnings (condition or residual past the *warn* threshold but
        under *fail*) degrade nothing — the solves were verified — but
        they belong in the report so an operator sees the case is near
        the cliff.  Capped like the islanding notes.
        """
        sink = sink if sink is not None else self._run_notes
        for diagnostic in diagnostics:
            notes = [d for d in sink.diagnostics
                     if d.code == "numeric.ill_conditioned"]
            if len(notes) >= _MAX_NUMERIC_NOTES:
                return
            sink.add(
                "numeric.ill_conditioned", WARNING, diagnostic.render(),
                hint="condition/residual warning from the guarded "
                     "linear-algebra layer; results verified but close "
                     "to the failure thresholds")

    def record_candidate(self) -> None:
        """Count one evaluated candidate toward ``candidates_examined``."""
        self.candidates_examined += 1

    def record_best(self, solution, believed_cost: Fraction) -> None:
        """Remember the most expensive believed optimum examined so a
        budget-exhausted run can still report its best attack."""
        if self._best_seen is None or believed_cost > self._best_seen[1]:
            self._best_seen = (solution, believed_cost)

    def _diagnostics(self) -> Optional[ValidationReport]:
        """Preflight findings + per-run notes, or None when clean."""
        merged = ValidationReport(subject=self.case.name)
        merged.extend(self.preflight)
        merged.extend(self._run_notes)
        return merged if merged.diagnostics else None

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------

    def _fresh_cert_stats(self) -> Dict:
        return {
            "enabled": self._certify,
            "models_checked": 0,
            "unsat_checked": 0,
            "terms_checked": 0,
            "rup_steps": 0,
            "theory_lemmas": 0,
            "seconds": 0.0,
            "events": [],
        }

    def record_check(self, report: CheckReport) -> None:
        stats = self._cert_stats
        if report.kind == "model":
            stats["models_checked"] += 1
        else:
            stats["unsat_checked"] += 1
        stats["terms_checked"] += report.terms_checked
        stats["rup_steps"] += report.rup_steps
        stats["theory_lemmas"] += report.theory_lemmas
        stats["seconds"] += report.seconds
        events = stats["events"]
        if len(events) < _MAX_CERT_EVENTS:
            events.append({"kind": report.kind,
                           "terms": report.terms_checked,
                           "rup_steps": report.rup_steps,
                           "theory_lemmas": report.theory_lemmas,
                           "seconds": report.seconds})

    def certify_model(self, solver, model=None, assumptions=None) -> None:
        """Check a SAT answer against the original assertions (no-op
        unless the analysis runs in certified mode)."""
        if not self._certify:
            return
        self.record_check(verify_sat(solver, model=model,
                                     assumptions=assumptions))

    def certify_unsat(self, solver) -> None:
        """Check an UNSAT answer against its recorded proof (no-op
        unless the analysis runs in certified mode)."""
        if not self._certify:
            return
        self.record_check(verify_unsat(solver))

    def merge_cert_stats(self, extra: Dict[str, Any]) -> None:
        """Fold strategy-specific recheck stats into the run's counters
        (numeric keys accumulate, everything else is recorded as-is)."""
        for key, value in extra.items():
            if key == "enabled":
                continue
            if isinstance(value, (int, float)) \
                    and isinstance(self._cert_stats.get(key), (int, float)):
                self._cert_stats[key] += value
            else:
                self._cert_stats[key] = value

    # ------------------------------------------------------------------
    # Trace and report assembly
    # ------------------------------------------------------------------

    def _trace(self, started: float) -> AnalysisTrace:
        info = self.strategy.encode_info()
        elapsed = time.perf_counter() - started
        encode_seconds = float(info.get("encode_seconds", 0.0))
        return AnalysisTrace(
            stages={
                "encode_seconds": encode_seconds,
                "total_seconds": elapsed,
            },
            smt=self.strategy.smt_trace(),
            opf=self.strategy.opf_trace(),
            certificates=dict(self._cert_stats) if self._certify else {},
            session={
                "strategy": self.strategy.kind,
                "warm": bool(info.get("warm", False)),
                "encodings_built": int(info.get("encodings_built", 0)),
                "encode_seconds": encode_seconds,
                "solve_seconds": max(elapsed - encode_seconds, 0.0),
                "boundary_escalations": self._boundary_escalations,
            })

    def _outcome_report(self, outcome: SearchOutcome, threshold: Fraction,
                        percent: Fraction, started: float) -> ImpactReport:
        """Success, definitive unsat, or budget-exhausted partial.

        On exhaustion ``satisfiable`` stays whatever the strategy proved
        (a success returns immediately, so an exhausted SMT search is
        always unsat-so-far), and the best sub-threshold attack examined
        is attached so the caller sees how close the search got.
        """
        attack, believed = outcome.solution, outcome.believed_min
        if not outcome.satisfiable and attack is None \
                and outcome.status == "budget_exhausted" \
                and self._best_seen is not None:
            attack, believed = self._best_seen
        return ImpactReport(
            outcome.satisfiable, self.base_cost(), threshold, percent,
            attack, believed,
            candidates_examined=self.candidates_examined,
            elapsed_seconds=time.perf_counter() - started,
            smt_opf_unsat_confirmed=outcome.confirmed,
            solver_calls=self.strategy.solver_calls(),
            trace=self._trace(started),
            status=outcome.status,
            budget_reason=outcome.budget_reason,
            certified=True if self._certify else None,
            diagnostics=self._diagnostics())

    def _numeric_report(self, threshold: Optional[Fraction],
                        percent: Fraction, started: float,
                        exc: NumericalInstability) -> ImpactReport:
        """Guarded linear algebra refused the run: degrade, don't guess.

        ``satisfiable`` is False but ``status="numerical_unstable"``
        marks the verdict as *absent*, exactly like ``budget_exhausted``
        marks it partial — callers must never read it as a proven unsat.
        A ``None`` threshold means the failure predates threshold
        derivation (the base matrices themselves were refused).
        """
        self._run_notes.add(
            "numeric.unstable", DEGRADED, str(exc),
            hint="guarded linear algebra refused to return an "
                 "unverified result; verdict withheld (see the "
                 "numerical-integrity thresholds)")
        base = Fraction(0)
        if self.grid is not None:
            try:
                base = self.base_cost()
            except (ModelError, NumericalInstability):
                pass
        return ImpactReport(
            False, base, threshold if threshold is not None else base,
            percent,
            candidates_examined=self.candidates_examined,
            elapsed_seconds=time.perf_counter() - started,
            solver_calls=self.strategy.solver_calls(),
            trace=self._trace(started),
            status="numerical_unstable",
            numeric_reason=exc.reason,
            diagnostics=self._diagnostics())

    def _certificate_error_report(self, threshold, percent, started,
                                  message: str) -> ImpactReport:
        """An answer failed its certificate check: report *no* verdict.

        ``satisfiable`` is False but ``status="certificate_error"``
        marks the whole report as untrusted — callers must treat it like
        an error, never like a proven unsat.
        """
        self._cert_stats["error"] = message
        return ImpactReport(
            False, self.base_cost(), threshold, percent,
            candidates_examined=self.candidates_examined,
            elapsed_seconds=time.perf_counter() - started,
            solver_calls=self.strategy.solver_calls(),
            trace=self._trace(started),
            status="certificate_error", certified=False,
            certificate_error=message,
            diagnostics=self._diagnostics())
