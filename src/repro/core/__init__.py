"""The paper's contribution: formal impact analysis of stealthy topology
poisoning attacks on Optimal Power Flow.

* :mod:`repro.core.encoding` — SMT encodings of the attack model
  (paper Eqs. 7-29) and the OPF model (Eqs. 30-36),
* :mod:`repro.core.framework` — the Fig.-2 verification loop,
* :mod:`repro.core.fast` — the LODF/LCDF-based scalable analyzer
  (Section IV-A),
* :mod:`repro.core.results` — reports and rendering.
"""

from repro.core.encoding import (
    AttackEncodingConfig,
    AttackModelEncoding,
    AttackVectorSolution,
    OpfModelEncoding,
)
from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.core.results import (
    AnalysisTrace,
    CandidateEvaluation,
    ImpactReport,
)

__all__ = [
    "AnalysisTrace",
    "AttackEncodingConfig",
    "AttackModelEncoding",
    "AttackVectorSolution",
    "CandidateEvaluation",
    "FastImpactAnalyzer",
    "FastQuery",
    "ImpactAnalyzer",
    "ImpactQuery",
    "ImpactReport",
    "OpfModelEncoding",
]
