"""SMT encodings of the paper's formal models (Section III).

Two encodings, mirroring the two halves of the paper's framework (Fig. 2):

* :class:`AttackModelEncoding` — the stealthy topology-poisoning attack
  model: the operating point (DC power model, Eqs. 7-9), the topology
  change (Eqs. 10-16), the optional UFDI state infection (Eqs. 23-29),
  the false-data-injection requirements and attacker resources
  (Eqs. 17-22), the believed-load consistency (Eq. 36 bounds) and —
  matching the paper's "combined" model — the convergence requirement
  that the believed system admit *some* dispatch (Eq. 38).

* :class:`OpfModelEncoding` — the OPF feasibility model (Eqs. 30-36) for
  a fixed believed topology and believed loads, with a cost ceiling
  ``T_OPF`` (Eq. 35).  The impact condition (Eq. 37) is checked by
  expecting *unsat* at the attack threshold.

All constants come from the case definition as exact rationals, so
sat/unsat answers are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ModelError
from repro.estimation.measurement import MeasurementPlan
from repro.grid.caseio import CaseDefinition
from repro.grid.network import Grid
from repro.smt import (
    And,
    BoolVar,
    LinExpr,
    Model,
    Not,
    Or,
    RealVar,
    SmtSolver,
    at_most,
    implies,
    linear_sum,
)
from repro.smt.rational import to_fraction

#: Minimum magnitude treated as a "real" measurement/state change; changes
#: below this are modeled as zero (keeps the search away from degenerate
#: infinitesimal attacks; the paper's 2-digit attack-vector precision plays
#: the same role).
EPSILON = Fraction(1, 10000)


@dataclass
class AttackEncodingConfig:
    """Knobs of the attack model."""

    include_state_infection: bool = False
    #: require at least one exclusion/inclusion (the paper's topology
    #: attacks; set False for the pure-UFDI comparison of case study 2).
    require_topology_attack: bool = True
    #: forbid exclusion/inclusion entirely (pure-UFDI analyses).
    forbid_topology_attack: bool = False
    #: require at least one infected state (for pure-UFDI analyses).
    require_state_infection: bool = False
    #: require at least one measurement alteration — rules out the
    #: degenerate "exclude a zero-flow line" attacks that need no false
    #: data at all.
    require_measurement_alteration: bool = False
    #: operating point must respect line capacities (normal operation).
    enforce_operating_capacities: bool = True
    #: necessary condition for pure topology attacks: the believed optimum
    #: can never exceed the current operating cost, so require the current
    #: cost to be at least this much (the framework passes the threshold).
    min_operating_cost: Optional[Fraction] = None
    #: include the believed-system dispatch-feasibility block (Eq. 38).
    require_believed_feasibility: bool = True
    epsilon: Fraction = EPSILON


@dataclass
class AttackVectorSolution:
    """A satisfying assignment of the attack model, decoded."""

    excluded: List[int]
    included: List[int]
    infected_states: List[int]
    altered_measurements: List[int]
    compromised_buses: List[int]
    believed_loads: Dict[int, Fraction]
    state_shift: Dict[int, Fraction]
    operating_dispatch: Dict[int, Fraction]
    operating_flows: Dict[int, Fraction]
    operating_cost: Fraction

    def believed_topology(self, grid: Grid) -> List[int]:
        mapped = [l.index for l in grid.lines
                  if l.in_service and l.index not in set(self.excluded)]
        mapped.extend(self.included)
        return sorted(mapped)


class AttackModelEncoding:
    """Builds the attack model into an :class:`SmtSolver`."""

    def __init__(self, case: CaseDefinition,
                 config: Optional[AttackEncodingConfig] = None,
                 certify: bool = False) -> None:
        self.case = case
        self.config = config or AttackEncodingConfig()
        self.grid = case.build_grid()
        self.plan = MeasurementPlan.from_case(case, self.grid)
        self.solver = SmtSolver(certify=certify)
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        grid, case, cfg = self.grid, self.case, self.config
        solver = self.solver
        l, b = grid.num_lines, grid.num_buses

        # -- variables -------------------------------------------------------
        self.theta = {bus.index: RealVar(f"theta_{bus.index}")
                      for bus in grid.buses}
        self.gen = {bus: RealVar(f"gen_{bus}") for bus in grid.generators}
        self.p = {i: BoolVar(f"p_{i}") for i in range(1, l + 1)}
        self.q = {i: BoolVar(f"q_{i}") for i in range(1, l + 1)}
        self.k = {i: BoolVar(f"k_{i}") for i in range(1, l + 1)}
        self.a = {i: BoolVar(f"a_{i}")
                  for i in range(1, 2 * l + b + 1)}
        self.h = {bus.index: BoolVar(f"h_{bus.index}")
                  for bus in grid.buses}
        self.delta_topo = {i: RealVar(f"dT_{i}") for i in range(1, l + 1)}
        self.delta_total = {i: RealVar(f"dL_{i}") for i in range(1, l + 1)}
        self.delta_bus = {bus.index: RealVar(f"dB_{bus.index}")
                          for bus in grid.buses}
        self.believed_load = {bus: RealVar(f"bl_{bus}")
                              for bus in grid.loads}
        if cfg.include_state_infection:
            self.dtheta = {bus.index: RealVar(f"dth_{bus.index}")
                           for bus in grid.buses}
            self.c = {bus.index: BoolVar(f"c_{bus.index}")
                      for bus in grid.buses
                      if bus.index != grid.reference_bus}

        add = solver.add
        eps = cfg.epsilon

        # -- operating point: the DC power model (Eqs. 7-9) ------------------
        add(self.theta[grid.reference_bus].eq(0))

        def closed_flow(line) -> LinExpr:
            """d_i * (theta_f - theta_e) — the flow the line would carry."""
            return line.admittance * (self.theta[line.from_bus]
                                      - self.theta[line.to_bus])

        def physical_flow(line) -> LinExpr:
            if line.in_service:
                return LinExpr.of(closed_flow(line))
            return LinExpr.constant(0)

        for bus in grid.buses:
            inflow = linear_sum(physical_flow(li)
                                for li in grid.lines_in(bus.index))
            outflow = linear_sum(physical_flow(li)
                                 for li in grid.lines_out(bus.index))
            consumption = inflow - outflow                       # Eq. 8
            demand = grid.loads[bus.index].existing \
                if bus.index in grid.loads else Fraction(0)
            if bus.index in self.gen:
                # Eq. 9: P_B = P_D - P_G.
                add(consumption.eq(demand - self.gen[bus.index]))
            else:
                add(consumption.eq(demand))

        for bus, gen in grid.generators.items():                  # Eq. 6
            add(self.gen[bus] >= gen.p_min)
            add(self.gen[bus] <= gen.p_max)
        if cfg.enforce_operating_capacities:                      # Eq. 5
            for line in grid.lines:
                if line.in_service:
                    add(closed_flow(line) <= line.capacity)
                    add(closed_flow(line) >= -line.capacity)

        if cfg.min_operating_cost is not None:
            cost = linear_sum(gen.cost_beta * self.gen[bus]
                              for bus, gen in grid.generators.items())
            alpha = sum((gen.cost_alpha
                         for gen in grid.generators.values()), Fraction(0))
            add(cost + alpha >= cfg.min_operating_cost)

        # -- topology attack (Eqs. 10-12) -------------------------------------
        for spec in case.line_specs:
            i = spec.index
            if spec.in_true_topology:
                add(Not(self.q[i]))
                if spec.in_core or spec.status_secured \
                        or not spec.status_alterable:             # Eq. 11
                    add(Not(self.p[i]))
                # Eq. 10 (as iff): mapped iff not excluded.
                add(Or(Not(self.k[i]), Not(self.p[i])))
                add(Or(self.k[i], self.p[i]))
            else:
                add(Not(self.p[i]))
                if spec.status_secured or not spec.status_alterable:
                    add(Not(self.q[i]))                           # Eq. 12
                add(Or(Not(self.k[i]), self.q[i]))
                add(Or(self.k[i], Not(self.q[i])))

        # -- topology-induced measurement changes (Eqs. 13-15) ----------------
        for line in grid.lines:
            i = line.index
            would_be = closed_flow(line)
            flow_now = physical_flow(line)
            add(implies(self.p[i],
                        (self.delta_topo[i] + flow_now).eq(0)))   # Eq. 13
            add(implies(self.q[i],
                        self.delta_topo[i].eq(would_be)))         # Eq. 14
            add(implies(And(Not(self.p[i]), Not(self.q[i])),
                        self.delta_topo[i].eq(0)))                # Eq. 15

        # -- state infection (Eqs. 23-29) --------------------------------------
        if cfg.include_state_infection:
            add(self.dtheta[grid.reference_bus].eq(0))
            for line in grid.lines:
                i = line.index
                shift = line.admittance * (
                    self.dtheta[line.from_bus] - self.dtheta[line.to_bus])
                add(implies(self.k[i],
                            self.delta_total[i].eq(
                                self.delta_topo[i] + shift)))     # Eq. 24/27
                add(implies(Not(self.k[i]),
                            self.delta_total[i].eq(
                                self.delta_topo[i])))             # Eq. 25
            for bus, cvar in self.c.items():                      # Eq. 26
                dth = self.dtheta[bus]
                add(implies(cvar, Or(dth <= -eps, dth >= eps)))
                add(implies(Not(cvar), dth.eq(0)))
        else:
            for line in grid.lines:
                add(self.delta_total[line.index].eq(
                    self.delta_topo[line.index]))

        # -- bus consumption changes (Eqs. 16 / 28) ----------------------------
        for bus in grid.buses:
            inflow = linear_sum(self.delta_total[li.index]
                                for li in grid.lines_in(bus.index))
            outflow = linear_sum(self.delta_total[li.index]
                                 for li in grid.lines_out(bus.index))
            add(self.delta_bus[bus.index].eq(inflow - outflow))

        # -- false data injection requirements (Eqs. 17-19 / 29) ---------------
        self.nz_line = {}
        for line in grid.lines:
            i = line.index
            nz = BoolVar(f"nz_{i}")
            self.nz_line[i] = nz
            delta = self.delta_total[i]
            add(implies(nz, Or(delta <= -eps, delta >= eps)))
            add(implies(Not(nz), delta.eq(0)))
            forward, backward = i, l + i
            for m in (forward, backward):
                if self.plan.is_taken(m):
                    add(implies(nz, self.a[m]))                   # Eq. 17
                    add(implies(self.a[m], nz))                   # Eq. 18
                else:
                    add(Not(self.a[m]))
            # Eq. 19: knowledge needed to compute the required change.
            spec = case.line_spec(i)
            if not spec.knowledge and (self.plan.is_taken(forward)
                                       or self.plan.is_taken(backward)):
                add(Not(nz))
        self.nz_bus = {}
        for bus in grid.buses:
            j = bus.index
            nz = BoolVar(f"nzB_{j}")
            self.nz_bus[j] = nz
            delta = self.delta_bus[j]
            add(implies(nz, Or(delta <= -eps, delta >= eps)))
            add(implies(Not(nz), delta.eq(0)))
            m = 2 * l + j
            if self.plan.is_taken(m):
                add(implies(nz, self.a[m]))
                add(implies(self.a[m], nz))
            else:
                add(Not(self.a[m]))

        # -- accessibility, security and resources (Eqs. 20-22) ----------------
        for m in range(1, 2 * l + b + 1):
            spec = self.plan.spec(m)
            if not spec.alterable or spec.secured:                # Eq. 20
                add(Not(self.a[m]))
            add(implies(self.a[m],
                        self.h[self.plan.location_of(m)]))        # Eq. 21
        add(at_most(list(self.h.values()), case.resource_buses))  # Eq. 22
        add(at_most(list(self.a.values()), case.resource_measurements))

        # -- believed loads and their plausibility (Eq. 36) --------------------
        for bus in grid.buses:
            j = bus.index
            if j in grid.loads:
                load = grid.loads[j]
                add(self.believed_load[j].eq(
                    load.existing + self.delta_bus[j]))
                add(self.believed_load[j] >= load.p_min)
                add(self.believed_load[j] <= load.p_max)
            else:
                # No load to absorb a consumption change (generation
                # measurements are secure, Section II-F).
                add(self.delta_bus[j].eq(0))

        # -- attack-presence requirements --------------------------------------
        if cfg.require_topology_attack and cfg.forbid_topology_attack:
            raise ModelError("cannot both require and forbid topology "
                             "attacks")
        if cfg.require_topology_attack:
            add(Or(*(list(self.p.values()) + list(self.q.values()))))
        if cfg.forbid_topology_attack:
            for var in list(self.p.values()) + list(self.q.values()):
                add(Not(var))
        if cfg.require_state_infection:
            if not cfg.include_state_infection:
                raise ModelError("require_state_infection needs "
                                 "include_state_infection")
            add(Or(*self.c.values()))
        if cfg.require_measurement_alteration:
            add(Or(*self.a.values()))

        # -- believed-system convergence (Eq. 38) -------------------------------
        if cfg.require_believed_feasibility:
            self._build_believed_feasibility()

    def _build_believed_feasibility(self) -> None:
        """Some dispatch must satisfy the believed system (Eq. 38)."""
        grid = self.grid
        add = self.solver.add
        bel_theta = {bus.index: RealVar(f"bth_{bus.index}")
                     for bus in grid.buses}
        bel_gen = {bus: RealVar(f"bg_{bus}") for bus in grid.generators}
        bel_flow = {line.index: RealVar(f"bf_{line.index}")
                    for line in grid.lines}
        add(bel_theta[grid.reference_bus].eq(0))
        for line in grid.lines:
            i = line.index
            expr = line.admittance * (bel_theta[line.from_bus]
                                      - bel_theta[line.to_bus])
            add(implies(self.k[i], bel_flow[i].eq(expr)))         # Eq. 32
            add(implies(Not(self.k[i]), bel_flow[i].eq(0)))
            add(bel_flow[i] <= line.capacity)                     # Eq. 34
            add(bel_flow[i] >= -line.capacity)
        for bus, gen in grid.generators.items():                  # Eq. 31
            add(bel_gen[bus] >= gen.p_min)
            add(bel_gen[bus] <= gen.p_max)
        for bus in grid.buses:                                    # Eq. 33
            j = bus.index
            inflow = linear_sum(bel_flow[li.index]
                                for li in grid.lines_in(j))
            outflow = linear_sum(bel_flow[li.index]
                                 for li in grid.lines_out(j))
            consumption = inflow - outflow
            demand = self.believed_load[j] if j in grid.loads \
                else LinExpr.constant(0)
            if j in bel_gen:
                add(consumption.eq(LinExpr.of(demand) - bel_gen[j]))
            else:
                add(consumption.eq(demand))
        self._believed_feasibility_vars = (bel_theta, bel_gen, bel_flow)

    # ------------------------------------------------------------------
    # Solving and decoding
    # ------------------------------------------------------------------

    def solve(self) -> Optional[AttackVectorSolution]:
        """One attack vector, or None when the model is unsatisfiable.

        With a budget attached to the solver an exhausted search raises
        :class:`~repro.exceptions.BudgetExhausted` so callers can report
        a partial result instead of mistaking UNKNOWN for UNSAT.
        """
        from repro.exceptions import BudgetExhausted
        from repro.smt import SolveResult
        result = self.solver.solve()
        if result is SolveResult.UNKNOWN:
            raise BudgetExhausted(self.solver.last_budget_reason
                                  or "solver budget exhausted")
        if result is SolveResult.UNSAT:
            return None
        return self.decode(self.solver.model())

    def decode(self, model: Model) -> AttackVectorSolution:
        # Strict lookups throughout: every variable queried here is
        # constrained by the encoding, so its absence from a model is a
        # decode bug, not a don't-care — fail loudly instead of silently
        # reading False/0.
        grid = self.grid
        excluded = [i for i, var in self.p.items()
                    if model.bool_value(var, strict=True)]
        included = [i for i, var in self.q.items()
                    if model.bool_value(var, strict=True)]
        altered = [m for m, var in self.a.items()
                   if model.bool_value(var, strict=True)]
        # h_j is only lower-bounded by the a_i (Eq. 21 is an implication),
        # so derive the compromised set from the alterations themselves.
        compromised = sorted({self.plan.location_of(m) for m in altered})
        believed = {bus: model.real_value(var, strict=True)
                    for bus, var in self.believed_load.items()}
        shifts: Dict[int, Fraction] = {}
        infected: List[int] = []
        if self.config.include_state_infection:
            infected = [j for j, var in self.c.items()
                        if model.bool_value(var, strict=True)]
            shifts = {j: model.real_value(self.dtheta[j], strict=True)
                      for j in infected}
        dispatch = {bus: model.real_value(var, strict=True)
                    for bus, var in self.gen.items()}
        flows = {}
        for line in grid.lines:
            if line.in_service:
                value = line.admittance * (
                    model.real_value(self.theta[line.from_bus], strict=True)
                    - model.real_value(self.theta[line.to_bus], strict=True))
                flows[line.index] = value
        cost = sum((gen.cost_alpha + gen.cost_beta * dispatch[bus]
                    for bus, gen in grid.generators.items()), Fraction(0))
        return AttackVectorSolution(
            sorted(excluded), sorted(included), sorted(infected),
            sorted(altered), sorted(compromised), believed, shifts,
            dispatch, flows, cost)

    def add_min_operating_cost(self, threshold: Fraction) -> None:
        """Require the current operating cost to be at least ``threshold``.

        The same necessary condition ``config.min_operating_cost`` bakes
        in at construction time, but addable after the fact — typically
        inside a solver ``push()`` scope — so a warm encoding can swap
        cost thresholds between sweep scenarios without rebuilding the
        whole model.
        """
        cost = linear_sum(gen.cost_beta * self.gen[bus]
                          for bus, gen in self.grid.generators.items())
        alpha = sum((gen.cost_alpha
                     for gen in self.grid.generators.values()), Fraction(0))
        self.solver.add(cost + alpha >= to_fraction(threshold))

    def block(self, solution: AttackVectorSolution,
              precision: int = 2) -> None:
        """Exclude this attack vector (and its near-identical neighbors).

        Implements the paper's scalability idea 1: two vectors whose
        believed loads agree to ``precision`` decimal digits (and whose
        topology bits agree) count as the same vector.
        """
        half_band = Fraction(1, 2 * 10 ** precision)
        literals = []
        chosen_p = set(solution.excluded)
        chosen_q = set(solution.included)
        for i, var in self.p.items():
            literals.append(Not(var) if i in chosen_p else var)
        for i, var in self.q.items():
            literals.append(Not(var) if i in chosen_q else var)
        for bus, var in self.believed_load.items():
            center = _round_fraction(solution.believed_loads[bus],
                                     precision)
            literals.append(var < center - half_band)
            literals.append(var > center + half_band)
        self.solver.add(Or(*literals))


    def block_structure(self, solution: AttackVectorSolution) -> None:
        """Exclude every vector sharing this solution's discrete structure.

        Used after the framework has *extremized* the structure's
        continuous freedom (believed loads) without reaching the
        threshold: since the believed-optimal cost is convex in the loads,
        the boundary search bounds the structure's best case, and the
        whole structure — the topology bits plus the infected-state
        choice — can be pruned at once.
        """
        literals = []
        chosen_p = set(solution.excluded)
        chosen_q = set(solution.included)
        for i, var in self.p.items():
            literals.append(Not(var) if i in chosen_p else var)
        for i, var in self.q.items():
            literals.append(Not(var) if i in chosen_q else var)
        if self.config.include_state_infection:
            infected = set(solution.infected_states)
            for j, var in self.c.items():
                literals.append(Not(var) if j in infected else var)
        self.solver.add(Or(*literals))


def _round_fraction(value: Fraction, precision: int) -> Fraction:
    scale = 10 ** precision
    return Fraction(round(value * scale), scale)


class OpfModelEncoding:
    """The OPF model (Eqs. 30-36) for a fixed believed system.

    ``check(threshold)`` answers: does a dispatch with total cost at most
    *threshold* exist?  The impact condition (Eq. 37) holds when
    ``check(T_OPF)`` is unsat; convergence (Eq. 38) when ``check(None)``
    is sat.
    """

    def __init__(self, grid: Grid,
                 topology: Iterable[int],
                 loads: Dict[int, Fraction],
                 certify: bool = False) -> None:
        self.grid = grid
        self.topology = sorted(topology)
        self.loads = {bus: to_fraction(v) for bus, v in loads.items()}
        self.solver = SmtSolver(certify=certify)
        self._build()

    def _build(self) -> None:
        grid = self.grid
        add = self.solver.add
        active = set(self.topology)
        theta = {bus.index: RealVar(f"oth_{bus.index}")
                 for bus in grid.buses}
        self.gen = {bus: RealVar(f"og_{bus}") for bus in grid.generators}
        add(theta[grid.reference_bus].eq(0))

        flows: Dict[int, LinExpr] = {}
        for line in grid.lines:
            if line.index not in active:
                continue
            expr = line.admittance * (theta[line.from_bus]
                                      - theta[line.to_bus])       # Eq. 32
            flows[line.index] = LinExpr.of(expr)
            add(expr <= line.capacity)                            # Eq. 34
            add(expr >= -line.capacity)
        for bus, gen in grid.generators.items():                  # Eq. 31
            add(self.gen[bus] >= gen.p_min)
            add(self.gen[bus] <= gen.p_max)
        for bus in grid.buses:                                    # Eq. 33
            j = bus.index
            inflow = linear_sum(flows[li.index]
                                for li in grid.lines_in(j)
                                if li.index in active)
            outflow = linear_sum(flows[li.index]
                                 for li in grid.lines_out(j)
                                 if li.index in active)
            demand = self.loads.get(j, Fraction(0))
            if j in self.gen:
                add((inflow - outflow).eq(demand - self.gen[j]))
            else:
                add((inflow - outflow).eq(LinExpr.constant(demand)))

        self.cost_expr = linear_sum(
            gen.cost_beta * self.gen[bus]
            for bus, gen in grid.generators.items())
        self.cost_alpha = sum((gen.cost_alpha
                               for gen in grid.generators.values()),
                              Fraction(0))

    def check(self, threshold: Optional[Fraction] = None) -> bool:
        """Sat iff a dispatch exists with cost <= threshold (Eq. 35)."""
        from repro.exceptions import BudgetExhausted
        from repro.smt import SolveResult
        assumptions = []
        if threshold is not None:
            assumptions.append(
                self.cost_expr <= to_fraction(threshold) - self.cost_alpha)
        result = self.solver.solve(assumptions)
        if result is SolveResult.UNKNOWN:
            raise BudgetExhausted(self.solver.last_budget_reason
                                  or "solver budget exhausted")
        return result is SolveResult.SAT

    def minimum_cost(self) -> Optional[Fraction]:
        """Exact believed-optimal cost via the SMT optimizer (or None)."""
        from repro.smt import minimize
        result = minimize(self.solver, self.cost_expr)
        if not result.feasible:
            return None
        return result.optimum + self.cost_alpha
