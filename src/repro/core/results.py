"""Result types and reporting for the impact-analysis framework."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional

from repro.core.encoding import AttackVectorSolution
from repro.estimation.measurement import MeasurementPlan
from repro.validation.diagnostics import (
    DEGENERATE_CASE,
    INVALID_INPUT,
    ValidationReport,
)


@dataclass
class AnalysisTrace:
    """Structured per-stage timings and counters of one analysis run.

    ``smt`` carries the solver's :class:`~repro.smt.solver.SmtStatistics`
    snapshot (decisions, conflicts, theory conflicts, simplex pivots, …),
    ``opf`` the number and total wall time of OPF solves, and ``stages``
    coarse per-stage wall timings.  Everything is JSON-ready so the sweep
    engine can thread it into per-sweep trace files.
    """

    stages: Dict[str, float] = field(default_factory=dict)
    smt: Dict[str, Any] = field(default_factory=dict)
    opf: Dict[str, Any] = field(default_factory=dict)
    #: per-check certificate events of a self-checking run: counters
    #: (``models_checked``, ``unsat_checked``, ``terms_checked``,
    #: ``rup_steps``, ``theory_lemmas``, ``seconds``) plus an ``events``
    #: list with one entry per verification.  Empty when self-check off.
    certificates: Dict[str, Any] = field(default_factory=dict)
    #: session-layer bookkeeping: which strategy ran (``strategy``),
    #: whether the run reused a warm encoding (``warm``), how many
    #: encodings it built (``encodings_built``), and the
    #: ``encode_seconds`` (paid once per encoding) vs ``solve_seconds``
    #: split that incremental sweeps optimize.
    session: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AnalysisTrace":
        return cls(stages=dict(payload.get("stages", {})),
                   smt=dict(payload.get("smt", {})),
                   opf=dict(payload.get("opf", {})),
                   certificates=dict(payload.get("certificates", {})),
                   session=dict(payload.get("session", {})))


@dataclass
class ImpactReport:
    """Outcome of an impact-analysis query (the paper's sat/unsat answer).

    ``satisfiable`` mirrors the paper's verdict: an attack vector exists
    that raises the believed-optimal generation cost by at least the
    target percentage.  ``believed_min_cost`` is the exact optimal cost of
    the poisoned system the EMS will dispatch to.
    """

    satisfiable: bool
    base_cost: Fraction
    threshold: Fraction
    target_increase_percent: Fraction
    attack: Optional[AttackVectorSolution] = None
    believed_min_cost: Optional[Fraction] = None
    candidates_examined: int = 0
    elapsed_seconds: float = 0.0
    smt_opf_unsat_confirmed: Optional[bool] = None
    #: total SMT ``solve()`` invocations behind this report — including
    #: every iteration of the structure-extremization optimizer, which a
    #: bare candidate count under-reports.
    solver_calls: int = 0
    trace: Optional[AnalysisTrace] = None
    #: ``"complete"`` for a definitive verdict, ``"budget_exhausted"``
    #: when the analysis ran out of its resource budget mid-search; in
    #: the latter case ``satisfiable``/``attack`` describe the *best
    #: attack found so far* (if any) and the verdict is a lower bound,
    #: not a proof of absence.  ``"certificate_error"`` when self-check
    #: mode rejected an answer: the verdict is *not trusted* and is
    #: deliberately never conflated with sat/unsat.  ``"invalid_input"``
    #: / ``"degenerate_case"`` when preflight validation rejected the
    #: case before any encoding: ``diagnostics`` lists the findings and
    #: no analysis happened at all.  ``"numerical_unstable"`` when the
    #: guarded linear-algebra layer refused to return an unverified
    #: result (ill-conditioned matrices, unverifiable solves): like
    #: ``budget_exhausted`` this is a *degradation*, not a bug — the
    #: verdict is withheld, never conflated with a proven unsat.
    status: str = "complete"
    #: which budget limit ran out (None unless ``budget_exhausted``).
    budget_reason: Optional[str] = None
    #: what the numeric guard refused (None unless ``numerical_unstable``).
    numeric_reason: Optional[str] = None
    #: True when every answer behind this report passed its independent
    #: certificate check, False when a check failed (status is then
    #: ``certificate_error``), None when self-check mode was off.
    certified: Optional[bool] = None
    #: what the failed certificate check reported (None otherwise).
    certificate_error: Optional[str] = None
    #: preflight findings — always populated for rejected reports, and
    #: also carries degraded/warning findings of accepted runs.
    diagnostics: Optional[ValidationReport] = None

    @classmethod
    def rejected(cls, report: ValidationReport,
                 target_increase_percent: Fraction = Fraction(0),
                 elapsed_seconds: float = 0.0) -> "ImpactReport":
        """A report for a case preflight refused to analyze."""
        status = report.fatal_status()
        if status not in (INVALID_INPUT, DEGENERATE_CASE):
            raise ValueError(
                "rejected() needs a report with fatal diagnostics")
        return cls(satisfiable=False, base_cost=Fraction(0),
                   threshold=Fraction(0),
                   target_increase_percent=target_increase_percent,
                   status=status, diagnostics=report,
                   elapsed_seconds=elapsed_seconds)

    @property
    def is_rejected(self) -> bool:
        return self.status in (INVALID_INPUT, DEGENERATE_CASE)

    @property
    def is_partial(self) -> bool:
        return self.status != "complete"

    @property
    def achieved_increase_percent(self) -> Optional[Fraction]:
        if self.believed_min_cost is None or self.base_cost == 0:
            return None
        return (self.believed_min_cost / self.base_cost - 1) * 100

    def render(self, plan: Optional[MeasurementPlan] = None) -> str:
        """Human-readable report in the style of the paper's output file."""
        lines = []
        lines.append("=" * 64)
        lines.append("Impact analysis of stealthy topology poisoning on OPF")
        lines.append("=" * 64)
        if self.is_rejected:
            verdict = "invalid input (rejected by preflight)" \
                if self.status == INVALID_INPUT \
                else "degenerate case (analysis undefined)"
            lines.append(f"verdict                  : {verdict}")
            if self.diagnostics is not None:
                lines.append(self.diagnostics.render())
            lines.append("=" * 64)
            return "\n".join(lines)
        lines.append(f"attack-free optimal cost : {float(self.base_cost):.2f}")
        lines.append(f"target increase          : "
                     f"{float(self.target_increase_percent):.1f}%")
        lines.append(f"threshold cost           : "
                     f"{float(self.threshold):.2f}")
        if self.status == "certificate_error":
            lines.append("verdict                  : "
                         "certificate error (answer not trusted)")
            if self.certificate_error:
                lines.append(f"certificate              : "
                             f"{self.certificate_error}")
        elif self.status == "numerical_unstable":
            lines.append("verdict                  : "
                         "numerically unstable (verdict withheld)")
            if self.numeric_reason:
                lines.append(f"numeric guard            : "
                             f"{self.numeric_reason}")
        elif self.is_partial:
            verdict = "sat (partial)" if self.satisfiable \
                else "unknown (budget exhausted)"
            lines.append(f"verdict                  : {verdict}")
            if self.budget_reason:
                lines.append(f"budget                   : "
                             f"{self.budget_reason}")
        else:
            lines.append(f"verdict                  : "
                         f"{'sat' if self.satisfiable else 'unsat'}")
            if self.certified is not None:
                lines.append(f"certificates             : "
                             f"{'verified' if self.certified else 'FAILED'}")
        lines.append(f"attack vectors examined  : {self.candidates_examined}")
        if self.solver_calls:
            lines.append(f"SMT solver calls         : {self.solver_calls}")
        lines.append(f"analysis time            : "
                     f"{self.elapsed_seconds:.3f}s")
        if self.smt_opf_unsat_confirmed is not None:
            lines.append(f"SMT OPF check (Eq. 37)   : "
                         f"{'confirmed' if self.smt_opf_unsat_confirmed else 'FAILED'}")
        attack = self.attack
        if self.satisfiable and attack is not None:
            lines.append("-" * 64)
            if attack.excluded:
                lines.append(f"exclusion attack on line(s) "
                             f"{attack.excluded}: unmapped in the topology")
            if attack.included:
                lines.append(f"inclusion attack on line(s) "
                             f"{attack.included}: mapped into the topology")
            if attack.infected_states:
                lines.append(f"UFDI attack on state(s) "
                             f"{attack.infected_states}")
            lines.append(f"measurements to alter    : "
                         f"{attack.altered_measurements}")
            lines.append(f"distributed in buses     : "
                         f"{attack.compromised_buses}")
            if plan is not None:
                for m in attack.altered_measurements:
                    lines.append(f"    {plan.describe(m)}")
            loads = {bus: round(float(v), 4)
                     for bus, v in attack.believed_loads.items()}
            lines.append(f"believed loads after attack: {loads}")
            lines.append(f"believed optimal cost    : "
                         f"{float(self.believed_min_cost):.2f}")
            lines.append(f"achieved increase        : "
                         f"{float(self.achieved_increase_percent):.2f}%")
        if self.diagnostics is not None and self.diagnostics.diagnostics:
            lines.append("-" * 64)
            lines.append(self.diagnostics.render())
        lines.append("=" * 64)
        return "\n".join(lines)


@dataclass
class CandidateEvaluation:
    """One examined candidate in the fast analyzer's enumeration."""

    kind: str                        # "exclude" / "include"
    line_index: int
    feasible: bool
    reason: str = ""
    best_increase_percent: Optional[float] = None
    believed_loads: Dict[int, float] = field(default_factory=dict)
    altered_measurements: List[int] = field(default_factory=list)
