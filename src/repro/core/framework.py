"""The verification framework of paper Fig. 2.

The loop couples the two SMT models:

1. solve the *stealthy attack model* for a candidate attack vector;
2. update the system — believed topology and believed (estimated) loads;
3. verify the *impact*: no OPF dispatch of the believed system costs less
   than ``threshold = base_optimal * (1 + I/100)`` (paper Eq. 37) while a
   dispatch does exist at higher cost (Eq. 38);
4. on failure, block the attack vector at 2-decimal precision (the
   paper's scalability idea 1) and iterate.

Step 3's universal quantification is discharged by *minimizing* the
believed system's cost exactly (the in-repo rational LP) and comparing to
the threshold; optionally the paper's original formulation — an SMT
unsatisfiability check of the OPF model at the threshold — is run as
confirmation.

For structures with continuous freedom (state infection), the analyzer
additionally *extremizes* each believed load within the found structure
(topology bits + infected states held fixed) before giving up on it —
convexity of the OPF optimum in the loads puts the worst case on the
boundary, so this finds high-impact instances orders of magnitude faster
than blind vector enumeration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import (
    AttackEncodingConfig,
    AttackModelEncoding,
    AttackVectorSolution,
    OpfModelEncoding,
)
from repro.core.results import AnalysisTrace, ImpactReport
from repro.exceptions import BudgetExhausted, CertificateError, ModelError
from repro.grid.caseio import CaseDefinition
from repro.opf.dcopf import DcOpfResult, solve_dc_opf
from repro.smt import Not, SolverBudget, maximize, minimize
from repro.smt.certificates import (
    CheckReport,
    self_check_default,
    verify_sat,
    verify_unsat,
)
from repro.smt.rational import to_fraction
from repro.validation import FATAL, WARNING, ValidationReport, validate_case

#: cap on the per-check event list kept in the trace (counters are exact).
_MAX_CERT_EVENTS = 200
#: cap on the per-run "candidate islands the network" notes recorded.
_MAX_ISLANDING_NOTES = 3


@dataclass
class ImpactQuery:
    """What to ask the framework.

    ``target_increase_percent`` defaults to the case's value.  With
    ``with_state_infection`` the attack model includes the UFDI
    strengthening (paper Section III-D).
    """

    target_increase_percent: Optional[Fraction] = None
    with_state_infection: bool = False
    #: set False for the paper's "UFDI attacks alone" comparison: the
    #: topology stays faithful and only state infection is allowed.
    allow_topology_attack: bool = True
    max_candidates: int = 60
    precision: int = 2
    verify_with_smt_opf: bool = False
    opf_method: str = "exact"
    extremize_structures: bool = True
    #: optional resource budget spanning the whole analysis (SMT search,
    #: optimizer iterations and exact-OPF pivots all draw from it).  On
    #: exhaustion ``analyze`` returns a *partial* report with
    #: ``status="budget_exhausted"`` instead of raising.
    budget: Optional[SolverBudget] = None
    #: certified mode: every SAT model and terminal UNSAT is checked by
    #: :mod:`repro.smt.certificates` before it is reported.  None (the
    #: default) defers to the ``REPRO_SELF_CHECK`` environment variable;
    #: a failed check yields ``status="certificate_error"``, never a
    #: silently wrong verdict.
    self_check: Optional[bool] = None


class ImpactAnalyzer:
    """Analyzes one case for stealthy-attack impact on OPF."""

    def __init__(self, case: CaseDefinition,
                 preflight: bool = True) -> None:
        self.case = case
        #: preflight findings; fatal ones mean :meth:`analyze` returns a
        #: rejected report instead of touching an encoder.
        self.preflight = validate_case(case) if preflight \
            else ValidationReport(subject=case.name)
        self._rejection = self.preflight.fatal_status()
        self.grid = None
        if self._rejection is None:
            try:
                self.grid = case.build_grid()
            except ModelError as exc:
                # Safety net: preflight models the Grid invariants at the
                # spec level, but a construction failure it missed must
                # still reject, not crash.
                self.preflight.add("case.model_error", FATAL, str(exc))
                self._rejection = self.preflight.fatal_status()
        self._run_notes = ValidationReport(subject=case.name)
        self._base: Optional[DcOpfResult] = None
        # per-analyze() work counters (reset at the top of analyze()).
        self._evaluations = 0
        self._opf_solves = 0
        self._opf_seconds = 0.0
        self._best_seen: Optional[Tuple[AttackVectorSolution,
                                        Fraction]] = None
        self._certify = False
        self._cert_stats: Dict = {}

    @property
    def base_result(self) -> DcOpfResult:
        """The attack-free OPF solution (exact)."""
        if self._base is None:
            self._base = solve_dc_opf(self.grid, method="exact")
            if not self._base.feasible:
                raise ModelError(
                    f"case {self.case.name}: attack-free OPF is infeasible")
        return self._base

    @property
    def base_cost(self) -> Fraction:
        return self.base_result.cost

    def threshold_for(self, percent: Fraction) -> Fraction:
        """T_OPF = base * (1 + I/100)."""
        return self.base_cost * (1 + to_fraction(percent) / 100)

    # ------------------------------------------------------------------
    # The Fig.-2 loop
    # ------------------------------------------------------------------

    def analyze(self, query: Optional[ImpactQuery] = None) -> ImpactReport:
        query = query or ImpactQuery()
        percent = to_fraction(
            query.target_increase_percent
            if query.target_increase_percent is not None
            else self.case.min_increase_percent)
        started = time.perf_counter()
        self._run_notes = ValidationReport(subject=self.case.name)
        if self._rejection is not None:
            return ImpactReport.rejected(
                self.preflight, percent,
                elapsed_seconds=time.perf_counter() - started)
        try:
            threshold = self.threshold_for(percent)
        except ModelError as exc:
            # Preflight admits the case on aggregate load/capacity, but
            # line limits can still make the attack-free OPF infeasible.
            self.preflight.add(
                "opf.base_infeasible", FATAL, str(exc),
                hint="no dispatch satisfies the base case's line and "
                     "generation limits")
            self._rejection = self.preflight.fatal_status()
            return ImpactReport.rejected(
                self.preflight, percent,
                elapsed_seconds=time.perf_counter() - started)

        if not query.allow_topology_attack \
                and not query.with_state_infection:
            raise ModelError("a query must allow topology attacks, state "
                             "infection, or both")
        config = AttackEncodingConfig(
            include_state_infection=query.with_state_infection,
            require_topology_attack=query.allow_topology_attack,
            forbid_topology_attack=not query.allow_topology_attack,
            require_state_infection=not query.allow_topology_attack,
            # Necessary condition for pure topology attacks: the believed
            # optimum never exceeds the current operating cost (the
            # believed system still admits the physical operating point
            # when the states are untouched), so the current cost must
            # already exceed the threshold.
            min_operating_cost=None if query.with_state_infection
            else threshold,
        )
        self._certify = self_check_default(query.self_check)
        self._cert_stats = self._fresh_cert_stats()
        encoding = AttackModelEncoding(self.case, config,
                                       certify=self._certify)
        encode_seconds = time.perf_counter() - started
        self._evaluations = 0
        self._opf_solves = 0
        self._opf_seconds = 0.0
        self._best_seen: Optional[Tuple[AttackVectorSolution,
                                        Fraction]] = None
        budget = query.budget
        if budget is not None:
            budget.start()
            encoding.solver.set_budget(budget)

        try:
            structures = 0
            while structures < query.max_candidates:
                if budget is not None:
                    budget.check_wall()
                solution = encoding.solve()
                if solution is None:
                    self._certify_unsat(encoding.solver)
                    return self._unsat_report(threshold, percent, encoding,
                                              started, encode_seconds)
                self._certify_model(encoding.solver)
                structures += 1
                success, believed_min = self._evaluate(solution, threshold,
                                                       query.opf_method,
                                                       budget)
                if success:
                    return self._success_report(
                        solution, believed_min, threshold, percent,
                        started, query, encoding, encode_seconds)
                if query.extremize_structures:
                    best = self._extremize_structure(encoding, solution,
                                                     threshold, query)
                    if best is not None:
                        solution2, believed_min2 = best
                        return self._success_report(
                            solution2, believed_min2, threshold, percent,
                            started, query, encoding, encode_seconds)
                    # The structure's believed-load boundary has been
                    # searched without reaching the threshold: prune the
                    # whole structure (convexity puts the worst case on
                    # the boundary).
                    encoding.block_structure(solution)
                else:
                    encoding.block(solution, query.precision)
        except BudgetExhausted as exc:
            return self._partial_report(threshold, percent, encoding,
                                        started, encode_seconds, exc.reason)
        except CertificateError as exc:
            return self._certificate_error_report(
                threshold, percent, encoding, started, encode_seconds,
                str(exc))

        return self._unsat_report(threshold, percent, encoding, started,
                                  encode_seconds)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _evaluate(self, solution: AttackVectorSolution,
                  threshold: Fraction,
                  opf_method: str,
                  budget: Optional[SolverBudget] = None
                  ) -> Tuple[bool, Optional[Fraction]]:
        """(impact achieved?, believed minimum cost)."""
        self._evaluations += 1
        topology = solution.believed_topology(self.grid)
        if not self.grid.is_connected(topology):
            self._note_islanding(solution)
            return False, None
        opf_started = time.perf_counter()
        try:
            result = solve_dc_opf(self.grid, loads=solution.believed_loads,
                                  line_indices=topology, method=opf_method,
                                  budget=budget)
        finally:
            self._opf_solves += 1
            self._opf_seconds += time.perf_counter() - opf_started
        if not result.feasible:
            # Eq. 38 violated: the EMS's OPF would fail to converge.
            return False, None
        if self._best_seen is None or result.cost > self._best_seen[1]:
            # Remember the most expensive believed optimum examined so a
            # budget-exhausted run can still report its best attack.
            self._best_seen = (solution, result.cost)
        # Eq. 37 asks for an increase of *at least* I%, so a believed
        # optimum exactly on the threshold is a successful attack.
        return result.cost >= threshold, result.cost

    def _note_islanding(self, solution: AttackVectorSolution) -> None:
        """Record that a candidate's believed topology is disconnected.

        Post-attack revalidation: the candidate is pruned (the EMS's OPF
        would not converge), and the report's diagnostics say so instead
        of the candidate silently vanishing.
        """
        notes = [d for d in self._run_notes.diagnostics
                 if d.code == "topology.attack_islands_network"]
        if len(notes) >= _MAX_ISLANDING_NOTES:
            return
        components = [f"line:{i}" for i in solution.excluded] + \
            [f"line:{i}" for i in solution.included]
        self._run_notes.add(
            "topology.attack_islands_network", WARNING,
            f"candidate attack (excluded={solution.excluded}, "
            f"included={solution.included}) islands the believed "
            f"topology; candidate pruned", components,
            hint="the EMS's OPF has no solution on this view")

    def _diagnostics(self) -> Optional[ValidationReport]:
        """Preflight findings + per-run notes, or None when clean."""
        merged = ValidationReport(subject=self.case.name)
        merged.extend(self.preflight)
        merged.extend(self._run_notes)
        return merged if merged.diagnostics else None

    def _fresh_cert_stats(self) -> Dict:
        return {
            "enabled": self._certify,
            "models_checked": 0,
            "unsat_checked": 0,
            "terms_checked": 0,
            "rup_steps": 0,
            "theory_lemmas": 0,
            "seconds": 0.0,
            "events": [],
        }

    def _record_check(self, report: CheckReport) -> None:
        stats = self._cert_stats
        if report.kind == "model":
            stats["models_checked"] += 1
        else:
            stats["unsat_checked"] += 1
        stats["terms_checked"] += report.terms_checked
        stats["rup_steps"] += report.rup_steps
        stats["theory_lemmas"] += report.theory_lemmas
        stats["seconds"] += report.seconds
        events = stats["events"]
        if len(events) < _MAX_CERT_EVENTS:
            events.append({"kind": report.kind,
                           "terms": report.terms_checked,
                           "rup_steps": report.rup_steps,
                           "theory_lemmas": report.theory_lemmas,
                           "seconds": report.seconds})

    def _certify_model(self, solver, model=None, assumptions=None) -> None:
        """Check a SAT answer against the original assertions (no-op
        unless the analysis runs in certified mode)."""
        if not self._certify:
            return
        self._record_check(verify_sat(solver, model=model,
                                      assumptions=assumptions))

    def _certify_unsat(self, solver) -> None:
        """Check an UNSAT answer against its recorded proof (no-op
        unless the analysis runs in certified mode)."""
        if not self._certify:
            return
        self._record_check(verify_unsat(solver))

    def _trace(self, encoding: AttackModelEncoding, started: float,
               encode_seconds: float) -> AnalysisTrace:
        stats = encoding.solver.stats
        return AnalysisTrace(
            stages={
                "encode_seconds": encode_seconds,
                "total_seconds": time.perf_counter() - started,
            },
            smt={
                "solve_calls": stats.solve_calls,
                "total_seconds": stats.total_time,
                "sat_vars": stats.sat_vars,
                "clauses": stats.clauses,
                "theory_atoms": stats.theory_atoms,
                "real_vars": stats.real_vars,
                "decisions": stats.decisions,
                "conflicts": stats.conflicts,
                "theory_conflicts": stats.theory_conflicts,
                "propagations": stats.propagations,
                "restarts": stats.restarts,
                "simplex_pivots": stats.simplex_pivots,
            },
            opf={
                "solves": self._opf_solves,
                "seconds": self._opf_seconds,
            },
            certificates=dict(self._cert_stats) if self._certify else {})

    def _unsat_report(self, threshold, percent, encoding, started,
                      encode_seconds) -> ImpactReport:
        return ImpactReport(
            False, self.base_cost, threshold, percent,
            candidates_examined=self._evaluations,
            elapsed_seconds=time.perf_counter() - started,
            solver_calls=encoding.solver.stats.solve_calls,
            trace=self._trace(encoding, started, encode_seconds),
            certified=True if self._certify else None,
            diagnostics=self._diagnostics())

    def _partial_report(self, threshold, percent, encoding, started,
                        encode_seconds, reason: str) -> ImpactReport:
        """Budget ran out mid-search: report what was found so far.

        ``satisfiable`` stays False (no candidate reached the threshold
        before exhaustion — a success returns immediately), but the best
        sub-threshold attack examined so far is attached so the caller
        sees how close the search got.
        """
        attack = believed = None
        if self._best_seen is not None:
            attack, believed = self._best_seen
        return ImpactReport(
            False, self.base_cost, threshold, percent, attack, believed,
            candidates_examined=self._evaluations,
            elapsed_seconds=time.perf_counter() - started,
            solver_calls=encoding.solver.stats.solve_calls,
            trace=self._trace(encoding, started, encode_seconds),
            status="budget_exhausted", budget_reason=reason,
            diagnostics=self._diagnostics())

    def _certificate_error_report(self, threshold, percent, encoding,
                                  started, encode_seconds,
                                  message: str) -> ImpactReport:
        """An answer failed its certificate check: report *no* verdict.

        ``satisfiable`` is False but ``status="certificate_error"``
        marks the whole report as untrusted — callers must treat it like
        an error, never like a proven unsat.
        """
        return ImpactReport(
            False, self.base_cost, threshold, percent,
            candidates_examined=self._evaluations,
            elapsed_seconds=time.perf_counter() - started,
            solver_calls=encoding.solver.stats.solve_calls,
            trace=self._trace(encoding, started, encode_seconds),
            status="certificate_error", certified=False,
            certificate_error=message,
            diagnostics=self._diagnostics())

    def _success_report(self, solution, believed_min, threshold, percent,
                        started, query, encoding,
                        encode_seconds) -> ImpactReport:
        confirmed = None
        if query.verify_with_smt_opf:
            confirmed = self.confirm_with_smt_opf(solution, threshold)
        return ImpactReport(
            True, self.base_cost, threshold, percent, solution,
            believed_min, self._evaluations,
            time.perf_counter() - started, confirmed,
            solver_calls=encoding.solver.stats.solve_calls,
            trace=self._trace(encoding, started, encode_seconds),
            certified=True if self._certify else None,
            diagnostics=self._diagnostics())

    def confirm_with_smt_opf(self, solution: AttackVectorSolution,
                             threshold: Fraction) -> bool:
        """The paper's original Eq. 37/38 discharge via SMT (un)sat."""
        opf = OpfModelEncoding(self.grid,
                               solution.believed_topology(self.grid),
                               solution.believed_loads,
                               certify=self._certify)
        no_cheap_dispatch = not self._checked_opf(opf, threshold)  # Eq. 37
        converges = self._checked_opf(opf, None)                   # Eq. 38
        return no_cheap_dispatch and converges

    def _checked_opf(self, opf: OpfModelEncoding,
                     threshold: Optional[Fraction]) -> bool:
        sat = opf.check(threshold)
        if self._certify:
            if sat:
                self._certify_model(opf.solver)
            else:
                self._certify_unsat(opf.solver)
        return sat

    def _extremize_structure(self, encoding: AttackModelEncoding,
                             solution: AttackVectorSolution,
                             threshold: Fraction,
                             query: ImpactQuery
                             ) -> Optional[Tuple[AttackVectorSolution,
                                                 Fraction]]:
        """Search the found structure's believed-load boundary.

        Holds the topology bits (and infected-state choice) fixed via
        assumptions and pushes each believed load to its extremes; each
        extremization yields a *complete consistent* attack instance
        (the SMT model at the optimum), which is then evaluated exactly.
        """
        assumptions = []
        chosen_p = set(solution.excluded)
        chosen_q = set(solution.included)
        for i, var in encoding.p.items():
            assumptions.append(var if i in chosen_p else Not(var))
        for i, var in encoding.q.items():
            assumptions.append(var if i in chosen_q else Not(var))
        if encoding.config.include_state_infection:
            infected = set(solution.infected_states)
            for j, var in encoding.c.items():
                assumptions.append(var if j in infected else Not(var))

        best: Optional[Tuple[AttackVectorSolution, Fraction]] = None
        for bus, load_var in encoding.believed_load.items():
            for optimizer in (maximize, minimize):
                result = optimizer(encoding.solver, load_var,
                                   assumptions=assumptions)
                # The optimization loop always terminates on an UNSAT
                # (either "no model at all" or "no model better than the
                # incumbent"); in certified mode both that proof and the
                # incumbent model are checked.
                self._certify_unsat(encoding.solver)
                if not result.feasible or result.model is None:
                    continue
                self._certify_model(encoding.solver, model=result.model,
                                    assumptions=assumptions)
                candidate = encoding.decode(result.model)
                success, believed_min = self._evaluate(
                    candidate, threshold, query.opf_method)
                if success and (best is None or believed_min > best[1]):
                    best = (candidate, believed_min)
        return best

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    def max_achievable_increase(self,
                                with_state_infection: bool = False,
                                percent_grid: Sequence[int] = range(1, 26),
                                max_candidates: int = 40
                                ) -> Tuple[Fraction, Optional[ImpactReport]]:
        """Largest target percentage that is still satisfiable.

        Walks the given percentage grid upward and returns the last
        satisfiable report (mirrors the paper's "we cannot increase the
        cost more than 8%" analysis).
        """
        best_percent = Fraction(0)
        best_report: Optional[ImpactReport] = None
        for percent in percent_grid:
            query = ImpactQuery(
                target_increase_percent=to_fraction(percent),
                with_state_infection=with_state_infection,
                max_candidates=max_candidates)
            report = self.analyze(query)
            if not report.satisfiable:
                break
            best_percent = to_fraction(percent)
            best_report = report
        return best_percent, best_report
