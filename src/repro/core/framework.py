"""The verification framework of paper Fig. 2 (SMT search strategy).

The loop couples the two SMT models:

1. solve the *stealthy attack model* for a candidate attack vector;
2. update the system — believed topology and believed (estimated) loads;
3. verify the *impact*: no OPF dispatch of the believed system costs less
   than ``threshold = base_optimal * (1 + I/100)`` (paper Eq. 37) while a
   dispatch does exist at higher cost (Eq. 38);
4. on failure, block the attack vector at 2-decimal precision (the
   paper's scalability idea 1) and iterate.

Step 3's universal quantification is discharged by *minimizing* the
believed system's cost exactly (the in-repo rational LP) and comparing to
the threshold; optionally the paper's original formulation — an SMT
unsatisfiability check of the OPF model at the threshold — is run as
confirmation.

For structures with continuous freedom (state infection), the analyzer
additionally *extremizes* each believed load within the found structure
(topology bits + infected states held fixed) before giving up on it —
convexity of the OPF optimum in the loads puts the worst case on the
boundary, so this finds high-impact instances orders of magnitude faster
than blind vector enumeration.

Since the session refactor this module holds only the *search strategy*:
candidate generation (the SMT attack model), evaluation (exact believed
OPF), blocking and extremization.  Everything cross-cutting — preflight,
budgets, certification bookkeeping, run notes, report assembly — lives
once in :class:`repro.core.session.AnalysisSession`; the
:class:`ImpactAnalyzer` facade wires the two together and keeps the
public surface unchanged.

Incremental mode (``ImpactAnalyzer(case, incremental=True)``): the
strategy builds the attack encoding *without* a baked-in cost threshold
and re-solves consecutive queries inside guard-literal ``push()``/
``pop()`` scopes of the same solver, so a threshold sweep retains the
clause database, learned clauses and simplex state across scenarios.
The default (cold) mode rebuilds per query, byte-for-byte identical to
the pre-refactor encoding — enumeration order, and therefore the exact
witness vectors reported for the paper's case studies, are preserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

from repro.core.encoding import (
    AttackEncodingConfig,
    AttackModelEncoding,
    AttackVectorSolution,
    OpfModelEncoding,
)
from repro.core.results import ImpactReport
from repro.core.session import AnalysisSession, SearchOutcome, SearchStrategy
from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition
from repro.opf.dcopf import DcOpfResult, solve_dc_opf
from repro.smt import Not, SolverBudget, maximize, minimize
from repro.smt.rational import to_fraction


@dataclass
class ImpactQuery:
    """What to ask the framework.

    ``target_increase_percent`` defaults to the case's value.  With
    ``with_state_infection`` the attack model includes the UFDI
    strengthening (paper Section III-D).
    """

    target_increase_percent: Optional[Fraction] = None
    with_state_infection: bool = False
    #: set False for the paper's "UFDI attacks alone" comparison: the
    #: topology stays faithful and only state infection is allowed.
    allow_topology_attack: bool = True
    max_candidates: int = 60
    precision: int = 2
    verify_with_smt_opf: bool = False
    opf_method: str = "exact"
    extremize_structures: bool = True
    #: optional resource budget spanning the whole analysis (SMT search,
    #: optimizer iterations and exact-OPF pivots all draw from it).  On
    #: exhaustion ``analyze`` returns a *partial* report with
    #: ``status="budget_exhausted"`` instead of raising.
    budget: Optional[SolverBudget] = None
    #: certified mode: every SAT model and terminal UNSAT is checked by
    #: :mod:`repro.smt.certificates` before it is reported.  None (the
    #: default) defers to the ``REPRO_SELF_CHECK`` environment variable;
    #: a failed check yields ``status="certificate_error"``, never a
    #: silently wrong verdict.
    self_check: Optional[bool] = None


class SmtSearchStrategy(SearchStrategy):
    """The full-SMT Fig.-2 candidate search, pluggable into a session."""

    kind = "smt"

    def __init__(self, case: CaseDefinition,
                 incremental: bool = False) -> None:
        self.case = case
        self.incremental = incremental
        self._base: Optional[DcOpfResult] = None
        self._encoding: Optional[AttackModelEncoding] = None
        #: (with_state_infection, allow_topology_attack, certify) of the
        #: warm encoding — a mismatch forces a rebuild.
        self._encoding_key = None
        self._scope_active = False
        # per-run trace state (reset in begin()).
        self._run_encodings = 0
        self._encode_seconds = 0.0
        self._warm = False
        self._opf_solves = 0
        self._opf_seconds = 0.0
        self._stats_base: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Session surface
    # ------------------------------------------------------------------

    @property
    def base_result(self) -> DcOpfResult:
        """The attack-free OPF solution (exact)."""
        if self._base is None:
            self._base = solve_dc_opf(self.session.grid, method="exact")
            if not self._base.feasible:
                raise ModelError(
                    f"case {self.case.name}: attack-free OPF is infeasible")
        return self._base

    def base_cost(self) -> Fraction:
        return self.base_result.cost

    def validate_query(self, query: ImpactQuery) -> None:
        if not query.allow_topology_attack \
                and not query.with_state_infection:
            raise ModelError("a query must allow topology attacks, state "
                             "infection, or both")

    def make_query(self, percent: Fraction, **attrs) -> ImpactQuery:
        return ImpactQuery(target_increase_percent=percent, **attrs)

    def begin(self, query: ImpactQuery, threshold: Fraction) -> None:
        self._opf_solves = 0
        self._opf_seconds = 0.0
        if self.incremental:
            self._begin_incremental(query, threshold)
        else:
            self._begin_cold(query, threshold)
        solver = self._encoding.solver
        solver.set_budget(query.budget)
        stats = solver.stats
        self._stats_base = {
            "solve_calls": stats.solve_calls,
            "total_seconds": stats.total_time,
            "decisions": stats.decisions,
            "conflicts": stats.conflicts,
            "theory_conflicts": stats.theory_conflicts,
            "propagations": stats.propagations,
            "restarts": stats.restarts,
            "simplex_pivots": stats.simplex_pivots,
        }

    def _begin_cold(self, query: ImpactQuery, threshold: Fraction) -> None:
        """Fresh encoding per query — the pre-refactor construction,
        preserved bit-for-bit (including the baked-in threshold bound)
        so enumeration order and reported witnesses stay stable."""
        config = AttackEncodingConfig(
            include_state_infection=query.with_state_infection,
            require_topology_attack=query.allow_topology_attack,
            forbid_topology_attack=not query.allow_topology_attack,
            require_state_infection=not query.allow_topology_attack,
            # Necessary condition for pure topology attacks: the believed
            # optimum never exceeds the current operating cost (the
            # believed system still admits the physical operating point
            # when the states are untouched), so the current cost must
            # already exceed the threshold.
            min_operating_cost=None if query.with_state_infection
            else threshold,
        )
        built = time.perf_counter()
        self._encoding = AttackModelEncoding(
            self.case, config, certify=self.session.certify_enabled)
        self._encode_seconds = time.perf_counter() - built
        self._run_encodings = 1
        self._warm = False
        self._scope_active = False

    def _begin_incremental(self, query: ImpactQuery,
                           threshold: Fraction) -> None:
        """Reuse one thresholdless encoding across queries.

        The threshold bound (and every per-run ``block``/
        ``block_structure`` clause the search adds) lives in a solver
        ``push()`` scope that the next query pops, so learned clauses
        and simplex state carry over while per-query constraints don't.
        """
        certify = self.session.certify_enabled
        key = (query.with_state_infection, query.allow_topology_attack,
               certify)
        if self._encoding is None or self._encoding_key != key:
            config = AttackEncodingConfig(
                include_state_infection=query.with_state_infection,
                require_topology_attack=query.allow_topology_attack,
                forbid_topology_attack=not query.allow_topology_attack,
                require_state_infection=not query.allow_topology_attack,
                min_operating_cost=None,
            )
            built = time.perf_counter()
            self._encoding = AttackModelEncoding(self.case, config,
                                                 certify=certify)
            self._encode_seconds = time.perf_counter() - built
            self._encoding_key = key
            self._run_encodings = 1
            self._warm = False
            self._scope_active = False
        else:
            self._encode_seconds = 0.0
            self._run_encodings = 0
            self._warm = True
        solver = self._encoding.solver
        if self._scope_active:
            solver.pop()
        solver.push()
        self._scope_active = True
        if not query.with_state_infection:
            # Same necessary condition the cold path bakes in, but
            # scoped so the next query can swap it out.
            self._encoding.add_min_operating_cost(threshold)

    def search(self, query: ImpactQuery,
               threshold: Fraction) -> SearchOutcome:
        encoding = self._encoding
        budget = query.budget
        session = self.session
        structures = 0
        while structures < query.max_candidates:
            if budget is not None:
                budget.check_wall()
            solution = encoding.solve()
            if solution is None:
                session.certify_unsat(encoding.solver)
                return SearchOutcome(satisfiable=False)
            session.certify_model(encoding.solver)
            structures += 1
            success, believed_min = self._evaluate(solution, threshold,
                                                   query.opf_method,
                                                   budget)
            if success:
                return self._success(solution, believed_min, threshold,
                                     query)
            if query.extremize_structures:
                best = self._extremize_structure(encoding, solution,
                                                 threshold, query)
                if best is not None:
                    return self._success(best[0], best[1], threshold,
                                         query)
                # The structure's believed-load boundary has been
                # searched without reaching the threshold: prune the
                # whole structure (convexity puts the worst case on
                # the boundary).
                encoding.block_structure(solution)
            else:
                encoding.block(solution, query.precision)
        return SearchOutcome(satisfiable=False)

    def _success(self, solution: AttackVectorSolution,
                 believed_min: Fraction, threshold: Fraction,
                 query: ImpactQuery) -> SearchOutcome:
        confirmed = None
        if query.verify_with_smt_opf:
            confirmed = self.confirm_with_smt_opf(solution, threshold)
        return SearchOutcome(satisfiable=True, solution=solution,
                             believed_min=believed_min,
                             confirmed=confirmed)

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, solution: AttackVectorSolution,
                  threshold: Fraction,
                  opf_method: str,
                  budget: Optional[SolverBudget] = None
                  ) -> Tuple[bool, Optional[Fraction]]:
        """(impact achieved?, believed minimum cost)."""
        session = self.session
        session.record_candidate()
        grid = session.grid
        topology = solution.believed_topology(grid)
        if not grid.is_connected(topology):
            session.note_islanding(solution.excluded, solution.included)
            return False, None
        opf_started = time.perf_counter()
        try:
            result = solve_dc_opf(grid, loads=solution.believed_loads,
                                  line_indices=topology, method=opf_method,
                                  budget=budget)
        finally:
            self._opf_solves += 1
            self._opf_seconds += time.perf_counter() - opf_started
        if not result.feasible:
            # Eq. 38 violated: the EMS's OPF would fail to converge.
            return False, None
        session.record_best(solution, result.cost)
        # Eq. 37 asks for an increase of *at least* I%, so a believed
        # optimum exactly on the threshold is a successful attack.
        return result.cost >= threshold, result.cost

    def confirm_with_smt_opf(self, solution: AttackVectorSolution,
                             threshold: Fraction) -> bool:
        """The paper's original Eq. 37/38 discharge via SMT (un)sat."""
        session = self.session
        opf = OpfModelEncoding(session.grid,
                               solution.believed_topology(session.grid),
                               solution.believed_loads,
                               certify=session.certify_enabled)
        no_cheap_dispatch = not self._checked_opf(opf, threshold)  # Eq. 37
        converges = self._checked_opf(opf, None)                   # Eq. 38
        return no_cheap_dispatch and converges

    def _checked_opf(self, opf: OpfModelEncoding,
                     threshold: Optional[Fraction]) -> bool:
        session = self.session
        sat = opf.check(threshold)
        if session.certify_enabled:
            if sat:
                session.certify_model(opf.solver)
            else:
                session.certify_unsat(opf.solver)
        return sat

    def _extremize_structure(self, encoding: AttackModelEncoding,
                             solution: AttackVectorSolution,
                             threshold: Fraction,
                             query: ImpactQuery
                             ) -> Optional[Tuple[AttackVectorSolution,
                                                 Fraction]]:
        """Search the found structure's believed-load boundary.

        Holds the topology bits (and infected-state choice) fixed via
        assumptions and pushes each believed load to its extremes; each
        extremization yields a *complete consistent* attack instance
        (the SMT model at the optimum), which is then evaluated exactly.
        """
        session = self.session
        assumptions = []
        chosen_p = set(solution.excluded)
        chosen_q = set(solution.included)
        for i, var in encoding.p.items():
            assumptions.append(var if i in chosen_p else Not(var))
        for i, var in encoding.q.items():
            assumptions.append(var if i in chosen_q else Not(var))
        if encoding.config.include_state_infection:
            infected = set(solution.infected_states)
            for j, var in encoding.c.items():
                assumptions.append(var if j in infected else Not(var))

        best: Optional[Tuple[AttackVectorSolution, Fraction]] = None
        for bus, load_var in encoding.believed_load.items():
            for optimizer in (maximize, minimize):
                result = optimizer(encoding.solver, load_var,
                                   assumptions=assumptions)
                # The optimization loop always terminates on an UNSAT
                # (either "no model at all" or "no model better than the
                # incumbent"); in certified mode both that proof and the
                # incumbent model are checked.
                session.certify_unsat(encoding.solver)
                if not result.feasible or result.model is None:
                    continue
                session.certify_model(encoding.solver, model=result.model,
                                      assumptions=assumptions)
                candidate = encoding.decode(result.model)
                success, believed_min = self._evaluate(
                    candidate, threshold, query.opf_method)
                if success and (best is None or believed_min > best[1]):
                    best = (candidate, believed_min)
        return best

    # ------------------------------------------------------------------
    # Trace hooks
    # ------------------------------------------------------------------

    def encode_info(self) -> Dict:
        return {"warm": self._warm,
                "encodings_built": self._run_encodings,
                "encode_seconds": self._encode_seconds}

    def smt_trace(self) -> Dict:
        """Per-run solver statistics.

        Cumulative counters are reported as deltas against the
        ``begin()`` snapshot so a warm (incremental) run describes its
        own work, not the whole session's; model-size gauges
        (``sat_vars`` …) stay absolute.
        """
        stats = self._encoding.solver.stats
        base = self._stats_base
        return {
            "solve_calls": stats.solve_calls - base["solve_calls"],
            "total_seconds": stats.total_time - base["total_seconds"],
            "sat_vars": stats.sat_vars,
            "clauses": stats.clauses,
            "theory_atoms": stats.theory_atoms,
            "real_vars": stats.real_vars,
            "decisions": stats.decisions - base["decisions"],
            "conflicts": stats.conflicts - base["conflicts"],
            "theory_conflicts": (stats.theory_conflicts
                                 - base["theory_conflicts"]),
            "propagations": stats.propagations - base["propagations"],
            "restarts": stats.restarts - base["restarts"],
            "simplex_pivots": (stats.simplex_pivots
                               - base["simplex_pivots"]),
        }

    def opf_trace(self) -> Dict:
        return {"solves": self._opf_solves, "seconds": self._opf_seconds}

    def solver_calls(self) -> int:
        return (self._encoding.solver.stats.solve_calls
                - self._stats_base["solve_calls"])


class ImpactAnalyzer:
    """Analyzes one case for stealthy-attack impact on OPF.

    A thin facade over :class:`AnalysisSession` +
    :class:`SmtSearchStrategy`; pass ``incremental=True`` to keep one
    warm encoding across consecutive :meth:`analyze` calls (threshold
    sweeps) at the price of witness stability between runs.
    """

    def __init__(self, case: CaseDefinition, preflight: bool = True,
                 incremental: bool = False) -> None:
        self._strategy = SmtSearchStrategy(case, incremental=incremental)
        self.session = AnalysisSession(case, self._strategy,
                                       preflight=preflight)

    @property
    def case(self) -> CaseDefinition:
        return self.session.case

    @property
    def preflight(self):
        return self.session.preflight

    @property
    def grid(self):
        return self.session.grid

    @property
    def base_result(self) -> DcOpfResult:
        return self._strategy.base_result

    @property
    def base_cost(self) -> Fraction:
        return self._strategy.base_cost()

    def threshold_for(self, percent: Fraction) -> Fraction:
        return self.session.threshold_for(percent)

    def analyze(self, query: Optional[ImpactQuery] = None) -> ImpactReport:
        return self.session.analyze(query or ImpactQuery())

    def solve_at(self, percent=None, **attrs) -> ImpactReport:
        """Analyze at a new target percentage, reusing warm state."""
        return self.session.solve_at(percent, **attrs)

    def max_impact(self, tolerance=None, **search_kwargs):
        """Bisect to the maximum achievable increase I* on this session.

        Convenience wrapper over
        :class:`repro.search.MaxImpactSearch`; with
        ``incremental=True`` every probe is a warm re-solve.
        """
        from repro.search import DEFAULT_TOLERANCE, MaxImpactSearch
        if tolerance is None:
            tolerance = DEFAULT_TOLERANCE
        query_attrs = search_kwargs.pop("query_attrs", {})
        return MaxImpactSearch(self, tolerance=tolerance,
                               **search_kwargs).run(**query_attrs)

    def confirm_with_smt_opf(self, solution: AttackVectorSolution,
                             threshold: Fraction) -> bool:
        return self._strategy.confirm_with_smt_opf(solution, threshold)

    def _evaluate(self, solution: AttackVectorSolution,
                  threshold: Fraction, opf_method: str,
                  budget: Optional[SolverBudget] = None
                  ) -> Tuple[bool, Optional[Fraction]]:
        return self._strategy._evaluate(solution, threshold, opf_method,
                                        budget)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    def max_achievable_increase(self,
                                with_state_infection: bool = False,
                                percent_grid: Sequence[int] = range(1, 26),
                                max_candidates: int = 40
                                ) -> Tuple[Fraction, Optional[ImpactReport]]:
        """Largest target percentage that is still satisfiable.

        Walks the given percentage grid upward and returns the last
        satisfiable report (mirrors the paper's "we cannot increase the
        cost more than 8%" analysis).
        """
        best_percent = Fraction(0)
        best_report: Optional[ImpactReport] = None
        for percent in percent_grid:
            query = ImpactQuery(
                target_increase_percent=to_fraction(percent),
                with_state_infection=with_state_infection,
                max_candidates=max_candidates)
            report = self.analyze(query)
            if not report.satisfiable:
                break
            best_percent = to_fraction(percent)
            best_report = report
        return best_percent, best_report
