"""Power-grid substrate: components, network matrices, DC power flow,
sensitivity factors, test systems and case I/O."""

from repro.grid.components import Bus, Generator, Line, Load
from repro.grid.network import Grid
from repro.grid.dcpf import DcPowerFlowResult, net_injections, solve_dc_power_flow
from repro.grid.caseio import (
    CaseDefinition,
    LineSpec,
    MeasurementSpec,
    parse_case,
    write_case,
)

__all__ = [
    "Bus",
    "CaseDefinition",
    "DcPowerFlowResult",
    "Generator",
    "Grid",
    "Line",
    "LineSpec",
    "Load",
    "MeasurementSpec",
    "net_injections",
    "parse_case",
    "solve_dc_power_flow",
    "write_case",
]
