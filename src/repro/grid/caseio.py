"""The paper's case-definition format: data model, parser and writer.

The paper drives its tool with a text *input file* (Tables II and III)
whose sections are::

    # Topology (Line) Information
    # (line no, from bus, to bus, admittance, line capacity, knowledge?,
    #  in true topology?, in core?, secured?, can alter?)
    1 1 2 16.90 0.15 1 1 1 0 0
    ...
    # Measurement Information
    # (measurement no, measurement taken?, secured?, can attacker alter?)
    1 1 1 0
    ...
    # Attacker's Resource Limitation (measurements, buses)
    8 3
    # Bus Types (bus no, is generator?, is load?)
    1 1 0
    ...
    # Generator Information (bus no, max generation, min generation,
    #                        cost coefficient)
    1 0.80 0.10 60 1800
    ...
    # Load Information (bus no, existing load, max load, min load)
    2 0.21 0.30 0.10
    ...
    # Cost Constraint, Minimum Cost Increase by Attack (in percentage)
    1580 3

:class:`CaseDefinition` is the parsed form; it also serves as the
programmatic case-construction API used by :mod:`repro.grid.cases`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CaseFieldError, InputFormatError, ModelError
from repro.grid.components import Bus, Generator, Line, Load
from repro.grid.network import Grid
from repro.smt.rational import to_fraction


@dataclass(frozen=True)
class LineSpec:
    """One row of the "Topology (Line) Information" section."""

    index: int
    from_bus: int
    to_bus: int
    admittance: Fraction
    capacity: Fraction
    knowledge: bool          # g_i: attacker knows the admittance
    in_true_topology: bool   # u_i
    in_core: bool            # v_i: fixed line, never opened
    status_secured: bool     # w_i
    status_alterable: bool   # attacker can spoof this line's status

    def __post_init__(self) -> None:
        object.__setattr__(self, "admittance", to_fraction(self.admittance))
        object.__setattr__(self, "capacity", to_fraction(self.capacity))


@dataclass(frozen=True)
class MeasurementSpec:
    """One row of the "Measurement Information" section."""

    index: int
    taken: bool       # t_i
    secured: bool     # s_i
    alterable: bool   # r_i


@dataclass
class CaseDefinition:
    """A complete analysis case in the paper's input format."""

    name: str
    line_specs: List[LineSpec]
    measurement_specs: List[MeasurementSpec]
    bus_types: List[Tuple[int, bool, bool]]  # (bus, is_gen, is_load)
    generators: List[Generator]
    loads: List[Load]
    resource_measurements: int   # max measurements alterable at once
    resource_buses: int          # T_B: max substations compromised
    base_cost: Fraction          # attack-free OPF cost constraint
    min_increase_percent: Fraction
    reference_bus: int = 1

    def __post_init__(self) -> None:
        self.base_cost = to_fraction(self.base_cost)
        self.min_increase_percent = to_fraction(self.min_increase_percent)
        expected = 2 * len(self.line_specs) + len(self.bus_types)
        if self.measurement_specs and len(self.measurement_specs) != expected:
            raise ModelError(
                f"case {self.name}: expected {expected} potential "
                f"measurements, got {len(self.measurement_specs)}")

    # -- derived views -------------------------------------------------------

    @property
    def num_buses(self) -> int:
        return len(self.bus_types)

    @property
    def num_lines(self) -> int:
        return len(self.line_specs)

    @property
    def num_potential_measurements(self) -> int:
        return 2 * self.num_lines + self.num_buses

    def build_grid(self) -> Grid:
        """The physical grid implied by this case."""
        buses = [Bus(index, is_gen, is_load)
                 for index, is_gen, is_load in self.bus_types]
        lines = [Line(spec.index, spec.from_bus, spec.to_bus,
                      spec.admittance, spec.capacity,
                      in_service=spec.in_true_topology)
                 for spec in self.line_specs]
        return Grid(buses, lines, self.generators, self.loads,
                    self.reference_bus)

    def measurement(self, index: int) -> MeasurementSpec:
        return self.measurement_specs[index - 1]

    def line_spec(self, index: int) -> LineSpec:
        return self.line_specs[index - 1]

    def with_target_increase(self, percent) -> "CaseDefinition":
        """A copy with a different attack-impact target."""
        clone = replace(self)
        clone.min_increase_percent = to_fraction(percent)
        return clone


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_SECTIONS = (
    "topology",
    "measurement",
    "resource",
    "bus types",
    "generator",
    "load",
    "cost",
)


def _section_of(header: str) -> Optional[str]:
    lowered = header.lower()
    if "topology" in lowered and "line" in lowered:
        return "topology"
    if "measurement information" in lowered:
        return "measurement"
    if "resource" in lowered:
        return "resource"
    if "bus types" in lowered:
        return "bus types"
    if "generator information" in lowered:
        return "generator"
    if "load information" in lowered:
        return "load"
    if "cost constraint" in lowered:
        return "cost"
    return None


def _flag(token: str) -> bool:
    if token not in ("0", "1"):
        raise ValueError(f"expected 0/1 flag, got {token!r}")
    return token == "1"


#: (field name, converter) per section row, in file order.
_LINE_FIELDS = (
    ("index", int), ("from_bus", int), ("to_bus", int),
    ("admittance", to_fraction), ("capacity", to_fraction),
    ("knowledge", _flag), ("in_true_topology", _flag),
    ("in_core", _flag), ("secured", _flag), ("alterable", _flag))
_MEASUREMENT_FIELDS = (
    ("index", int), ("taken", _flag), ("secured", _flag),
    ("alterable", _flag))
_BUS_FIELDS = (("index", int), ("is_generator", _flag), ("is_load", _flag))
_GENERATOR_FIELDS = (
    ("bus", int), ("p_max", to_fraction), ("p_min", to_fraction),
    ("cost_alpha", to_fraction), ("cost_beta", to_fraction))
_LOAD_FIELDS = (
    ("bus", int), ("existing", to_fraction), ("p_max", to_fraction),
    ("p_min", to_fraction))
_RESOURCE_FIELDS = (("measurements", int), ("buses", int))
_COST_FIELDS = (("base_cost", to_fraction), ("min_increase_percent",
                                             to_fraction))


def _convert_row(section: str, position: int, row: Sequence[str],
                 fields: Sequence[tuple]) -> list:
    """Convert one data row, naming the exact field on failure.

    Every conversion failure — including a zero-denominator fraction like
    ``1/0``, which :class:`~fractions.Fraction` reports as
    ``ZeroDivisionError`` — becomes a :class:`CaseFieldError` carrying the
    field path (``topology[2].admittance``).
    """
    path = f"{section}[{position}]"
    if len(row) != len(fields):
        raise CaseFieldError(
            path, f"expected {len(fields)} fields, got {len(row)}")
    values = []
    for token, (field_name, converter) in zip(row, fields):
        try:
            values.append(converter(token))
        except (ValueError, ZeroDivisionError) as exc:
            raise CaseFieldError(f"{path}.{field_name}",
                                 f"cannot parse {token!r}: {exc}") from exc
    return values


def parse_case(text: str, name: str = "case") -> CaseDefinition:
    """Parse a case file in the paper's input format.

    Malformed fields raise :class:`CaseFieldError` (a subclass of
    :class:`InputFormatError`) carrying the field path; semantically
    inconsistent component rows (e.g. a generator with ``p_max < p_min``)
    are wrapped the same way, pointing at the offending row.
    """
    section: Optional[str] = None
    rows: Dict[str, List[List[str]]] = {key: [] for key in _SECTIONS}
    for raw_line in text.splitlines():
        stripped = raw_line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            found = _section_of(stripped)
            if found is not None:
                section = found
            continue
        if section is None:
            raise InputFormatError(
                f"data line before any section header: {stripped!r}")
        rows[section].append(stripped.split())

    def parsed(section_key: str, path_name: str,
               fields: Sequence[tuple]) -> List[list]:
        return [_convert_row(path_name, pos, row, fields)
                for pos, row in enumerate(rows[section_key])]

    def construct(factory, path_name: str, position: int, values: list):
        try:
            return factory(*values)
        except ModelError as exc:
            raise CaseFieldError(f"{path_name}[{position}]",
                                 str(exc)) from exc

    line_specs = [construct(LineSpec, "topology", pos, values)
                  for pos, values in
                  enumerate(parsed("topology", "topology", _LINE_FIELDS))]
    measurement_specs = [
        MeasurementSpec(*values)
        for values in parsed("measurement", "measurement",
                             _MEASUREMENT_FIELDS)]
    bus_types = [tuple(values)
                 for values in parsed("bus types", "bus_types",
                                      _BUS_FIELDS)]
    generators = [construct(Generator, "generator", pos, values)
                  for pos, values in
                  enumerate(parsed("generator", "generator",
                                   _GENERATOR_FIELDS))]
    loads = [construct(Load, "load", pos, values)
             for pos, values in
             enumerate(parsed("load", "load", _LOAD_FIELDS))]
    if len(rows["resource"]) != 1:
        raise InputFormatError(
            "resource section must hold one '<measurements> <buses>' row")
    resource_measurements, resource_buses = _convert_row(
        "resource", 0, rows["resource"][0], _RESOURCE_FIELDS)
    if len(rows["cost"]) != 1:
        raise InputFormatError(
            "cost section must hold one '<cost> <percent>' row")
    base_cost, percent = _convert_row(
        "cost", 0, rows["cost"][0], _COST_FIELDS)

    try:
        return CaseDefinition(
            name=name,
            line_specs=line_specs,
            measurement_specs=measurement_specs,
            bus_types=bus_types,
            generators=generators,
            loads=loads,
            resource_measurements=resource_measurements,
            resource_buses=resource_buses,
            base_cost=base_cost,
            min_increase_percent=percent,
        )
    except ModelError as exc:
        # Cross-section consistency checks (e.g. the measurement count
        # not matching the line count) live in CaseDefinition; at the
        # parse boundary they are still input-format failures.
        raise CaseFieldError("case", str(exc)) from exc


def write_case(case: CaseDefinition) -> str:
    """Serialize a case back to the paper's input format."""
    out: List[str] = []
    out.append("# Topology (Line) Information")
    out.append("# (line no, from bus, to bus, admittance, line capacity, "
               "knowledge?, in true topology?, in core?, secured?, "
               "can alter?)")
    for s in case.line_specs:
        out.append(f"{s.index} {s.from_bus} {s.to_bus} "
                   f"{float(s.admittance):g} {float(s.capacity):g} "
                   f"{int(s.knowledge)} {int(s.in_true_topology)} "
                   f"{int(s.in_core)} {int(s.status_secured)} "
                   f"{int(s.status_alterable)}")
    out.append("# Measurement Information")
    out.append("# (measurement no, measurement taken?, secured?, "
               "can attacker alter?)")
    for m in case.measurement_specs:
        out.append(f"{m.index} {int(m.taken)} {int(m.secured)} "
                   f"{int(m.alterable)}")
    out.append("# Attacker's Resource Limitation (measurements, buses)")
    out.append(f"{case.resource_measurements} {case.resource_buses}")
    out.append("# Bus Types (bus no, is generator?, is load?)")
    for bus, is_gen, is_load in case.bus_types:
        out.append(f"{bus} {int(is_gen)} {int(is_load)}")
    out.append("# Generator Information (bus no, max generation, "
               "min generation, cost coefficient)")
    for g in case.generators:
        out.append(f"{g.bus} {float(g.p_max):g} {float(g.p_min):g} "
                   f"{float(g.cost_alpha):g} {float(g.cost_beta):g}")
    out.append("# Load Information (bus no, existing load, max load, "
               "min load)")
    for l in case.loads:
        out.append(f"{l.bus} {float(l.existing):g} {float(l.p_max):g} "
                   f"{float(l.p_min):g}")
    out.append("# Cost Constraint, Minimum Cost Increase by Attack "
               "(in percentage)")
    out.append(f"{float(case.base_cost):g} "
               f"{float(case.min_increase_percent):g}")
    return "\n".join(out) + "\n"
