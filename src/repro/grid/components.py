"""Physical components of the transmission grid model.

All power quantities are in per-unit (p.u.) on a common MVA base (the paper
uses a 100 MVA base, so 0.83 p.u. equals 83 MW).  Values are stored as exact
:class:`~fractions.Fraction` so the SMT encodings stay rational; numeric
code converts to ``float`` where needed.

Bus and line numbering follows the paper: 1-based indices, each line has a
*from* bus and a *to* bus defining the positive flow direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Optional, Union

from repro.exceptions import ModelError
from repro.smt.rational import to_fraction

Num = Union[int, float, str, Fraction]


@dataclass(frozen=True)
class Bus:
    """A network bus (substation node).

    ``is_generator`` / ``is_load`` mirror the "Bus Types" section of the
    paper's case format.
    """

    index: int
    is_generator: bool = False
    is_load: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ModelError(f"bus index must be >= 1, got {self.index}")
        if not self.name:
            object.__setattr__(self, "name", f"bus{self.index}")


@dataclass(frozen=True)
class Line:
    """A transmission line (branch).

    ``admittance`` is the DC-model line admittance (reciprocal of the
    reactance).  ``capacity`` is the thermal limit on the absolute power
    flow (paper Eq. 5).  ``in_service`` is the *true* breaker status (the
    paper's ``u_i``); the topology processor may be fooled into seeing a
    different status.
    """

    index: int
    from_bus: int
    to_bus: int
    admittance: Fraction
    capacity: Fraction
    in_service: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "admittance", to_fraction(self.admittance))
        object.__setattr__(self, "capacity", to_fraction(self.capacity))
        if self.index < 1:
            raise ModelError(f"line index must be >= 1, got {self.index}")
        if self.from_bus == self.to_bus:
            raise ModelError(
                f"line {self.index} connects bus {self.from_bus} to itself")
        if self.admittance <= 0:
            raise ModelError(
                f"line {self.index} admittance must be positive")
        if self.capacity <= 0:
            raise ModelError(f"line {self.index} capacity must be positive")

    @property
    def reactance(self) -> Fraction:
        return Fraction(1) / self.admittance

    def touches(self, bus: int) -> bool:
        return bus in (self.from_bus, self.to_bus)

    def other_end(self, bus: int) -> int:
        if bus == self.from_bus:
            return self.to_bus
        if bus == self.to_bus:
            return self.from_bus
        raise ModelError(f"line {self.index} does not touch bus {bus}")


@dataclass(frozen=True)
class Generator:
    """A generating unit with a single-segment linear cost function.

    Cost model (paper Section III-E): ``C(P) = alpha + beta * P`` with
    ``P`` in p.u.  ``p_min``/``p_max`` are the dispatch limits of paper
    Eq. (6)/(31).
    """

    bus: int
    p_max: Fraction
    p_min: Fraction
    cost_alpha: Fraction
    cost_beta: Fraction

    def __post_init__(self) -> None:
        for name in ("p_max", "p_min", "cost_alpha", "cost_beta"):
            object.__setattr__(self, name, to_fraction(getattr(self, name)))
        if self.p_min < 0 or self.p_max < self.p_min:
            raise ModelError(
                f"generator at bus {self.bus}: need 0 <= p_min <= p_max, "
                f"got [{self.p_min}, {self.p_max}]")

    def cost(self, output: Num) -> Fraction:
        """Generation cost at dispatch level *output* (p.u.)."""
        return self.cost_alpha + self.cost_beta * to_fraction(output)


@dataclass(frozen=True)
class Load:
    """A bus load with its plausible range (paper Eq. 36).

    ``existing`` is the true demand; ``p_min``/``p_max`` bound what the
    grid operator would consider believable for this bus, which constrains
    how far an attacker can shift the *estimated* load without raising
    suspicion.
    """

    bus: int
    existing: Fraction
    p_max: Fraction
    p_min: Fraction

    def __post_init__(self) -> None:
        for name in ("existing", "p_max", "p_min"):
            object.__setattr__(self, name, to_fraction(getattr(self, name)))
        if not (self.p_min <= self.existing <= self.p_max):
            raise ModelError(
                f"load at bus {self.bus}: existing value {self.existing} "
                f"outside [{self.p_min}, {self.p_max}]")
