"""Linear sensitivity factors: PTDF, LODF and LCDF.

These implement the scalability enhancement of paper Section IV-A: instead
of re-solving the angle equations for every candidate topology, line flows
are expressed through *generation-to-load distribution factors* (shift
factors / PTDF), corrected for a single line exclusion with Line Outage
Distribution Factors (LODF) or a single line inclusion with Line Closure
Distribution Factors (LCDF) — the "extended factors" of Sauer, Reinhard
and Overbye (HICSS 2001).

All factors are relative to a *base topology* (a set of closed lines) and
the grid's reference bus.

Since the sparse-scaling refactor the factors are *lazy*: a single
condition-guarded factorization of the reduced susceptance matrix backs
every PTDF column/row, LODF/LCDF vector and Thévenin impedance as cached
factorized solves — no explicit inverse is ever formed on either the
dense or the sparse backend, and single-line outages/closures are
Sherman–Morrison rank-1 updates of the base factorization rather than
re-factorizations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, NumericalInstability
from repro.grid.matrices import (
    active_lines,
    admittance_values,
    flow_matrix,
    susceptance_matrix,
)
from repro.grid.network import Grid
from repro.numerics import (
    WARNING,
    GuardedFactorization,
    UpdatedSolver,
    resolve_backend,
)
from repro.numerics.diagnostics import NumericalDiagnostic, emit
from repro.numerics.policy import default_policy


class SensitivityFactors:
    """PTDF bundle for a fixed base topology.

    The public surface mirrors the original dense implementation —
    ``ptdf`` is an l x b array with one row per active line (in
    ``lines`` order) and one column per bus (0-based, with an all-zero
    reference column) — but the full array is only materialized when
    the ``ptdf`` property is read.  All other accessors are factorized
    solves against the cached susceptance factorization:

    * :meth:`column` / :meth:`columns` — PTDF columns per injection bus,
    * :meth:`row` — one line's shift-factor row,
    * :meth:`flows_for_injections` — flows for an injection vector
      (one solve, no PTDF materialization),
    * :meth:`transfer_vector` / :meth:`thevenin_impedance` — the
      bus-pair quantities behind LODF/LCDF.
    """

    def __init__(self, grid: Grid, lines: List[int], backend: str,
                 factorization: GuardedFactorization, flow_operator,
                 ) -> None:
        self.grid = grid
        self.lines = lines
        self.backend = backend
        self.factorization = factorization
        self._flow = flow_operator            # D A, full b columns
        ref = grid.reference_bus - 1
        self._ref = ref
        self._keep = np.array(
            [i for i in range(grid.num_buses) if i != ref], dtype=np.int64)
        # Bus (0-based) -> position in the reduced state vector.
        self._pos = np.full(grid.num_buses, -1, dtype=np.int64)
        self._pos[self._keep] = np.arange(self._keep.size)
        self._row_index = {line: r for r, line in enumerate(lines)}
        self._ptdf: Optional[np.ndarray] = None
        self._column_cache: Dict[int, np.ndarray] = {}
        self._row_cache: Dict[int, np.ndarray] = {}
        self._pair_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}

    # -- low-level helpers ---------------------------------------------

    def _apply_flow(self, theta_reduced: np.ndarray) -> np.ndarray:
        """Line flows for reduced angle vector(s) (ref angle is zero)."""
        if theta_reduced.ndim == 1:
            theta = np.zeros(self.grid.num_buses)
            theta[self._keep] = theta_reduced
        else:
            theta = np.zeros((self.grid.num_buses, theta_reduced.shape[1]))
            theta[self._keep] = theta_reduced
        if self.backend == "sparse":
            return self._flow.matvec(theta)
        return self._flow @ theta

    def _reduced(self, injections: np.ndarray) -> np.ndarray:
        return np.asarray(injections, dtype=float)[self._keep]

    def _pair_solution(self, from_bus: int, to_bus: int
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(w, phi)`` for a unit from->to transfer.

        ``w = B^-1 (e_from - e_to)`` on the reduced state (the angle
        response) and ``phi`` the resulting flows on the base lines.
        """
        key = (from_bus, to_bus)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        e = np.zeros(self.grid.num_buses)
        e[from_bus - 1] += 1.0
        e[to_bus - 1] -= 1.0
        w = self.factorization.solve(e[self._keep])
        phi = self._apply_flow(w)
        self._pair_cache[key] = (w, phi)
        return w, phi

    # -- public accessors ----------------------------------------------

    @property
    def ptdf(self) -> np.ndarray:
        """The full l x b PTDF array (materialized on first access)."""
        if self._ptdf is None:
            rhs = np.eye(self._keep.size)
            theta = self.factorization.solve(rhs)
            flows = self._apply_flow(theta)
            ptdf = np.zeros((len(self.lines), self.grid.num_buses))
            ptdf[:, self._keep] = flows
            self._ptdf = ptdf
        return self._ptdf

    def row_of(self, line_index: int) -> int:
        try:
            return self._row_index[line_index]
        except KeyError:
            raise ModelError(
                f"line {line_index} is not part of the base topology")

    def column(self, bus: int) -> np.ndarray:
        """PTDF column for 1-based *bus* (flows per unit injection)."""
        cached = self._column_cache.get(bus)
        if cached is not None:
            return cached
        if bus - 1 == self._ref:
            column = np.zeros(len(self.lines))
        else:
            e = np.zeros(self._keep.size)
            e[self._pos[bus - 1]] = 1.0
            column = self._apply_flow(self.factorization.solve(e))
        self._column_cache[bus] = column
        return column

    def columns(self, buses: Iterable[int]) -> np.ndarray:
        """PTDF columns for several 1-based buses as an l x k array."""
        buses = list(buses)
        missing = [b for b in buses
                   if b - 1 != self._ref and b not in self._column_cache]
        if missing:
            rhs = np.zeros((self._keep.size, len(missing)))
            for k, bus in enumerate(missing):
                rhs[self._pos[bus - 1], k] = 1.0
            flows = self._apply_flow(self.factorization.solve(rhs))
            for k, bus in enumerate(missing):
                self._column_cache[bus] = flows[:, k]
        return np.column_stack([self.column(b) for b in buses]) \
            if buses else np.zeros((len(self.lines), 0))

    def row(self, line_index: int) -> np.ndarray:
        """One line's shift-factor row over all buses (ref entry zero).

        Uses the symmetry of the reduced susceptance matrix: the row is
        a single transpose-free solve against the line's flow-operator
        row instead of a full PTDF materialization.
        """
        cached = self._row_cache.get(line_index)
        if cached is not None:
            return cached
        r = self.row_of(line_index)
        if self.backend == "sparse":
            flow_row = np.zeros(self.grid.num_buses)
            start, end = self._flow.indptr[r], self._flow.indptr[r + 1]
            flow_row[self._flow.indices[start:end]] = self._flow.data[start:end]
        else:
            flow_row = self._flow[r]
        solved = self.factorization.solve(flow_row[self._keep])
        row = np.zeros(self.grid.num_buses)
        row[self._keep] = solved
        self._row_cache[line_index] = row
        return row

    def flows_for_injections(self, injections: np.ndarray) -> np.ndarray:
        """Line flows (active-line order) for a bus injection vector."""
        theta = self.factorization.solve(self._reduced(injections))
        return self._apply_flow(theta)

    def angles_for_injections(self, injections: np.ndarray) -> np.ndarray:
        """Bus angles (full b vector, ref fixed at zero) for injections."""
        theta = np.zeros(self.grid.num_buses)
        theta[self._keep] = self.factorization.solve(
            self._reduced(injections))
        return theta

    def transfer_vector(self, from_bus: int, to_bus: int) -> np.ndarray:
        """Flows on all base lines per unit from->to transfer."""
        return self._pair_solution(from_bus, to_bus)[1]

    def thevenin_impedance(self, from_bus: int, to_bus: int) -> float:
        """The Thévenin reactance seen across a bus pair."""
        e = np.zeros(self.grid.num_buses)
        e[from_bus - 1] += 1.0
        e[to_bus - 1] -= 1.0
        w, _ = self._pair_solution(from_bus, to_bus)
        return float(e[self._keep] @ w)

    def transfer_factor(self, line_index: int, from_bus: int,
                        to_bus: int) -> float:
        """Flow change on *line_index* per unit transfer from->to bus."""
        phi = self.transfer_vector(from_bus, to_bus)
        return float(phi[self.row_of(line_index)])

    def open_line_flow_row(self, line_index: int) -> np.ndarray:
        """Would-be flow of an *open* line per unit bus injection.

        For a line outside the base topology this is the sensitivity of
        ``y * (theta_f - theta_t)`` computed on the base network — the
        numerator of the LCDF closure formula.
        """
        line = self.grid.line(line_index)
        y = float(line.admittance)
        w, _ = self._pair_solution(line.from_bus, line.to_bus)
        row = np.zeros(self.grid.num_buses)
        row[self._keep] = y * w
        return row

    # -- rank-1 topology updates ---------------------------------------

    def _reduced_incidence(self, line_index: int) -> np.ndarray:
        line = self.grid.line(line_index)
        a = np.zeros(self.grid.num_buses)
        a[line.from_bus - 1] += 1.0
        a[line.to_bus - 1] -= 1.0
        return a[self._keep]

    def outage_update(self, outaged_line: int) -> UpdatedSolver:
        """A Sherman–Morrison solver for the base matrix minus one line.

        ``B' = B - y_k a_k a_k^T``; solves against ``B'`` reuse the base
        factorization.  Raises the guarded
        :class:`~repro.exceptions.NumericalInstability` when the outage
        makes the matrix singular (bridge line).
        """
        y = float(self.grid.line(outaged_line).admittance)
        a = self._reduced_incidence(outaged_line)
        return self.factorization.updated(
            [(-y, a, a)], operation=f"line-{outaged_line} outage update")

    def closure_update(self, new_line: int) -> UpdatedSolver:
        """A Sherman–Morrison solver for the base matrix plus one line."""
        y = float(self.grid.line(new_line).admittance)
        a = self._reduced_incidence(new_line)
        return self.factorization.updated(
            [(y, a, a)], operation=f"line-{new_line} closure update")


def _check_admittance_spread(grid: Grid, lines: List[int]) -> None:
    """Guard the admittance dynamic range of the PTDF pipeline.

    The reduced susceptance matrix can be perfectly conditioned while
    the flow computation ``D A B^-1`` is still garbage: a line whose
    admittance is many orders below its neighbours' contributes flows
    through catastrophic cancellation, invisible to a condition check
    on ``B`` alone.  The spread ``max|d| / min|d|`` bounds that
    amplification, so it is held to the same warn/fail thresholds the
    condition estimates use.
    """
    admittances = np.abs(admittance_values(grid, lines))
    if admittances.size == 0 or admittances.min() <= 0.0:
        return  # zero/absent admittances are rejected by the Grid model
    spread = float(admittances.max() / admittances.min())
    policy = default_policy()
    if spread >= policy.condition_fail:
        raise NumericalInstability(
            f"admittance spread {spread:.3e} across the active lines "
            f"exceeds the failure threshold {policy.condition_fail:.1e}: "
            f"PTDF flows would be dominated by cancellation noise")
    if spread >= policy.condition_warn:
        emit(NumericalDiagnostic(
            operation="factorize", context="PTDF admittance spread",
            severity=WARNING,
            detail=f"active-line admittances span {spread:.3e}; "
                   f"flow sensitivities lose ~{np.log10(spread):.0f} "
                   f"digits to cancellation",
            condition=spread))


def compute_ptdf(grid: Grid,
                 line_indices: Optional[Iterable[int]] = None,
                 backend: Optional[str] = None) -> SensitivityFactors:
    """Power Transfer Distribution Factors for a base topology.

    ``backend`` picks the linear-algebra path (``dense``/``sparse``;
    ``None``/``auto`` resolve by grid size).  The heavy work — one
    condition-guarded factorization of the reduced susceptance matrix —
    happens here; individual factors are lazy solves on the result.
    """
    lines = active_lines(grid, line_indices)
    if not grid.is_connected(lines):
        raise ModelError("PTDF requires a connected base topology")
    _check_admittance_spread(grid, lines)
    resolved = resolve_backend(backend, grid.num_buses)
    B = susceptance_matrix(grid, lines, reduced=True, backend=resolved)
    flow_operator = flow_matrix(grid, lines, backend=resolved)
    factorization = GuardedFactorization(
        B, context="PTDF base susceptance matrix")
    return SensitivityFactors(grid, lines, resolved, factorization,
                              flow_operator)


def lodf_column(factors: SensitivityFactors, outaged_line: int) -> np.ndarray:
    """LODF vector for the outage of *outaged_line*.

    Entry ``r`` (in active-line order) is the fraction of the outaged
    line's pre-outage flow that reappears on line ``r``:
    ``flow_r' = flow_r + LODF[r] * flow_k``.  The outaged line's own entry
    is set to -1 (its post-outage flow is zero).

    This is the Sherman–Morrison rank-1 form of removing line k from the
    base factorization: ``phi`` is one cached solve, the denominator is
    the capacitance scalar of the update.
    """
    grid = factors.grid
    line = grid.line(outaged_line)
    k = factors.row_of(outaged_line)
    # phi[r] = flow on r per unit transfer from line k's from-bus to to-bus.
    phi = factors.transfer_vector(line.from_bus, line.to_bus)
    denominator = 1.0 - phi[k]
    if abs(denominator) < 1e-9:
        remaining = [index for index in factors.lines
                     if index != outaged_line]
        if not grid.is_connected(remaining):
            raise ModelError(
                f"line {outaged_line} is a bridge: outage splits the "
                f"network")
        # Graph-connected, yet the LODF denominator vanished: the rest
        # of the network holds together only through near-zero
        # admittance, so the redistribution factors are pure noise.
        raise NumericalInstability(
            f"LODF denominator for the line-{outaged_line} outage is "
            f"{denominator:.3e}: the remaining network is connected "
            f"only through near-zero admittance")
    column = phi / denominator
    column[k] = -1.0
    return column


def lcdf_flow(factors: SensitivityFactors, new_line: int,
              injections: np.ndarray) -> float:
    """Post-closure flow on *new_line* (not in the base topology).

    Uses the closure analogue of the LODF derivation: let ``delta`` be the
    angle difference across the open line's terminals in the base case and
    ``x_thevenin`` the equivalent reactance the base network presents
    across those terminals.  Then the closed line carries
    ``y_k * delta / (1 + y_k * x_equivalent)``.  Both quantities are
    cached factorized solves — no susceptance re-factorization.
    """
    grid = factors.grid
    line = grid.line(new_line)
    if new_line in factors.lines:
        raise ModelError(f"line {new_line} is already in the base topology")
    y = float(line.admittance)
    theta = factors.angles_for_injections(np.asarray(injections,
                                                     dtype=float))
    delta = theta[line.from_bus - 1] - theta[line.to_bus - 1]
    # Thevenin "resistance" seen by the new line across its terminals.
    x_thevenin = factors.thevenin_impedance(line.from_bus, line.to_bus)
    return y * delta / (1.0 + y * x_thevenin)


def lcdf_column(factors: SensitivityFactors, new_line: int) -> np.ndarray:
    """Flow change on every base line per unit of flow on the closed line.

    ``flow_r' = flow_r - LCDF[r] * flow_new`` would double-count signs; we
    define it so that ``flow_r' = flow_r + column[r] * flow_new`` where
    ``flow_new`` is the new line's post-closure flow (from
    :func:`lcdf_flow`).  Closing a line that carries flow ``f`` from bus m
    to bus n is equivalent to injecting ``-f`` at m and ``+f`` at n on the
    base network (the new line diverts that power).
    """
    grid = factors.grid
    line = grid.line(new_line)
    return -factors.transfer_vector(line.from_bus, line.to_bus)


def flows_after_exclusion(factors: SensitivityFactors,
                          base_flows: np.ndarray,
                          outaged_line: int) -> np.ndarray:
    """Exact post-outage flows from base flows via LODF."""
    column = lodf_column(factors, outaged_line)
    k = factors.row_of(outaged_line)
    flows = base_flows + column * base_flows[k]
    flows[k] = 0.0
    return flows


def flows_after_inclusion(factors: SensitivityFactors,
                          base_flows: np.ndarray,
                          new_line: int,
                          injections: np.ndarray) -> tuple:
    """Post-closure flows: (updated base-line flows, new line's flow)."""
    new_flow = lcdf_flow(factors, new_line, injections)
    column = lcdf_column(factors, new_line)
    return base_flows + column * new_flow, new_flow
