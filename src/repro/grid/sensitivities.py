"""Linear sensitivity factors: PTDF, LODF and LCDF.

These implement the scalability enhancement of paper Section IV-A: instead
of re-solving the angle equations for every candidate topology, line flows
are expressed through *generation-to-load distribution factors* (shift
factors / PTDF), corrected for a single line exclusion with Line Outage
Distribution Factors (LODF) or a single line inclusion with Line Closure
Distribution Factors (LCDF) — the "extended factors" of Sauer, Reinhard
and Overbye (HICSS 2001).

All factors are relative to a *base topology* (a set of closed lines) and
the grid's reference bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import ModelError, NumericalInstability
from repro.grid.matrices import (
    active_lines,
    connectivity_matrix,
    admittance_matrix,
    susceptance_matrix,
)
from repro.grid.network import Grid
from repro.numerics import WARNING, guarded_inverse
from repro.numerics.diagnostics import NumericalDiagnostic, emit
from repro.numerics.policy import default_policy


@dataclass
class SensitivityFactors:
    """PTDF bundle for a fixed base topology.

    ``ptdf`` has one row per active line (in ``lines`` order) and one
    column per bus (0-based, including the reference whose column is all
    zeros): entry ``(i, j)`` is the change in flow on line i per unit of
    injection at bus j (withdrawn at the reference bus).
    """

    grid: Grid
    lines: List[int]
    ptdf: np.ndarray

    def row_of(self, line_index: int) -> int:
        try:
            return self.lines.index(line_index)
        except ValueError:
            raise ModelError(
                f"line {line_index} is not part of the base topology")

    def flows_for_injections(self, injections: np.ndarray) -> np.ndarray:
        """Line flows (active-line order) for a bus injection vector."""
        return self.ptdf @ injections

    def transfer_factor(self, line_index: int, from_bus: int,
                        to_bus: int) -> float:
        """Flow change on *line_index* per unit transfer from->to bus."""
        row = self.ptdf[self.row_of(line_index)]
        return float(row[from_bus - 1] - row[to_bus - 1])


def _check_admittance_spread(grid: Grid, lines: List[int]) -> None:
    """Guard the admittance dynamic range of the PTDF pipeline.

    The reduced susceptance matrix can be perfectly conditioned while
    the flow computation ``D A B^-1`` is still garbage: a line whose
    admittance is many orders below its neighbours' contributes flows
    through catastrophic cancellation, invisible to a condition check
    on ``B`` alone.  The spread ``max|d| / min|d|`` bounds that
    amplification, so it is held to the same warn/fail thresholds the
    condition estimates use.
    """
    admittances = np.array([abs(float(grid.line(i).admittance))
                            for i in lines])
    if admittances.size == 0 or admittances.min() <= 0.0:
        return  # zero/absent admittances are rejected by the Grid model
    spread = float(admittances.max() / admittances.min())
    policy = default_policy()
    if spread >= policy.condition_fail:
        raise NumericalInstability(
            f"admittance spread {spread:.3e} across the active lines "
            f"exceeds the failure threshold {policy.condition_fail:.1e}: "
            f"PTDF flows would be dominated by cancellation noise")
    if spread >= policy.condition_warn:
        emit(NumericalDiagnostic(
            operation="factorize", context="PTDF admittance spread",
            severity=WARNING,
            detail=f"active-line admittances span {spread:.3e}; "
                   f"flow sensitivities lose ~{np.log10(spread):.0f} "
                   f"digits to cancellation",
            condition=spread))


def compute_ptdf(grid: Grid,
                 line_indices: Optional[Iterable[int]] = None
                 ) -> SensitivityFactors:
    """Power Transfer Distribution Factors for a base topology."""
    lines = active_lines(grid, line_indices)
    if not grid.is_connected(lines):
        raise ModelError("PTDF requires a connected base topology")
    _check_admittance_spread(grid, lines)
    A = connectivity_matrix(grid, lines)
    D = admittance_matrix(grid, lines)
    B = susceptance_matrix(grid, lines, reduced=True)
    ref = grid.reference_bus - 1
    keep = [i for i in range(grid.num_buses) if i != ref]
    # theta_reduced = B^-1 P_reduced ; flows = D A theta.
    B_inv = guarded_inverse(B, context="PTDF base susceptance matrix")
    ptdf = np.zeros((len(lines), grid.num_buses))
    ptdf[:, keep] = (D @ A)[:, keep] @ B_inv
    return SensitivityFactors(grid, lines, ptdf)


def lodf_column(factors: SensitivityFactors, outaged_line: int) -> np.ndarray:
    """LODF vector for the outage of *outaged_line*.

    Entry ``r`` (in active-line order) is the fraction of the outaged
    line's pre-outage flow that reappears on line ``r``:
    ``flow_r' = flow_r + LODF[r] * flow_k``.  The outaged line's own entry
    is set to -1 (its post-outage flow is zero).
    """
    grid = factors.grid
    line = grid.line(outaged_line)
    k = factors.row_of(outaged_line)
    # phi[r] = flow on r per unit transfer from line k's from-bus to to-bus.
    phi = factors.ptdf[:, line.from_bus - 1] - factors.ptdf[:, line.to_bus - 1]
    denominator = 1.0 - phi[k]
    if abs(denominator) < 1e-9:
        remaining = [index for index in factors.lines
                     if index != outaged_line]
        if not grid.is_connected(remaining):
            raise ModelError(
                f"line {outaged_line} is a bridge: outage splits the "
                f"network")
        # Graph-connected, yet the LODF denominator vanished: the rest
        # of the network holds together only through near-zero
        # admittance, so the redistribution factors are pure noise.
        raise NumericalInstability(
            f"LODF denominator for the line-{outaged_line} outage is "
            f"{denominator:.3e}: the remaining network is connected "
            f"only through near-zero admittance")
    column = phi / denominator
    column[k] = -1.0
    return column


def lcdf_flow(factors: SensitivityFactors, new_line: int,
              injections: np.ndarray) -> float:
    """Post-closure flow on *new_line* (not in the base topology).

    Uses the closure analogue of the LODF derivation: let ``delta`` be the
    angle difference across the open line's terminals in the base case and
    ``phi_kk`` the self-transfer factor of the candidate line computed on
    the base network.  Then the closed line carries
    ``y_k * delta / (1 + y_k * x_equivalent)``.
    """
    grid = factors.grid
    line = grid.line(new_line)
    if new_line in factors.lines:
        raise ModelError(f"line {new_line} is already in the base topology")
    y = float(line.admittance)
    ref = grid.reference_bus - 1
    keep = [i for i in range(grid.num_buses) if i != ref]
    B = susceptance_matrix(grid, factors.lines, reduced=True)
    B_inv = guarded_inverse(B, context="LCDF base susceptance matrix")
    e = np.zeros(grid.num_buses)
    e[line.from_bus - 1] += 1.0
    e[line.to_bus - 1] -= 1.0
    theta = np.zeros(grid.num_buses)
    theta[keep] = B_inv @ injections[keep]
    delta = theta[line.from_bus - 1] - theta[line.to_bus - 1]
    # Thevenin "resistance" seen by the new line across its terminals.
    x_thevenin = float(e[keep] @ B_inv @ e[keep])
    return y * delta / (1.0 + y * x_thevenin)


def lcdf_column(factors: SensitivityFactors, new_line: int) -> np.ndarray:
    """Flow change on every base line per unit of flow on the closed line.

    ``flow_r' = flow_r - LCDF[r] * flow_new`` would double-count signs; we
    define it so that ``flow_r' = flow_r + column[r] * flow_new`` where
    ``flow_new`` is the new line's post-closure flow (from
    :func:`lcdf_flow`).  Closing a line that carries flow ``f`` from bus m
    to bus n is equivalent to injecting ``-f`` at m and ``+f`` at n on the
    base network (the new line diverts that power).
    """
    grid = factors.grid
    line = grid.line(new_line)
    phi = factors.ptdf[:, line.from_bus - 1] - factors.ptdf[:, line.to_bus - 1]
    return -phi


def flows_after_exclusion(factors: SensitivityFactors,
                          base_flows: np.ndarray,
                          outaged_line: int) -> np.ndarray:
    """Exact post-outage flows from base flows via LODF."""
    column = lodf_column(factors, outaged_line)
    k = factors.row_of(outaged_line)
    flows = base_flows + column * base_flows[k]
    flows[k] = 0.0
    return flows


def flows_after_inclusion(factors: SensitivityFactors,
                          base_flows: np.ndarray,
                          new_line: int,
                          injections: np.ndarray) -> tuple:
    """Post-closure flows: (updated base-line flows, new line's flow)."""
    new_flow = lcdf_flow(factors, new_line, injections)
    column = lcdf_column(factors, new_line)
    return base_flows + column * new_flow, new_flow
