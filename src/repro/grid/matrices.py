"""Network matrices of the DC model (paper Section II).

Conventions (matching the paper):

* The connectivity matrix **A** is l x b with ``A[i, f_i] = +1`` and
  ``A[i, e_i] = -1`` for line ``i`` (0-based internally).
* **D** is the diagonal branch-admittance matrix.
* Line flows: ``P_L = D A theta`` (forward direction).
* Bus *consumption* follows paper Eq. (8): incoming minus outgoing flow,
  i.e. ``P_B = -A^T D A theta``.  (The paper's Eq. (2) writes the last
  block as ``A^T D A``; with its own Eq. (8) sign convention for
  consumption the block is the negative — we follow Eq. (8) so that the
  measurement model, the attack equations and the case studies stay
  mutually consistent.)
* The measurement matrix **H** stacks forward flows, backward flows and
  bus consumptions, restricted to a chosen topology (set of closed lines)
  with the reference-bus column dropped.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.grid.network import Grid
from repro.numerics.sparse import CsrMatrix


def _active_line_list(grid: Grid,
                      line_indices: Optional[Iterable[int]]) -> List[int]:
    if line_indices is None:
        return [line.index for line in grid.lines if line.in_service]
    return sorted(set(line_indices))


def _check_backend(backend: str) -> None:
    if backend not in ("dense", "sparse"):
        raise ValueError(f"matrix builders take backend='dense' or "
                         f"'sparse', got {backend!r}")


def _line_terminals(grid: Grid, active: List[int]):
    """0-based (from, to) arrays and admittances for the active lines."""
    f = np.empty(len(active), dtype=np.int64)
    t = np.empty(len(active), dtype=np.int64)
    y = np.empty(len(active))
    for row, line_index in enumerate(active):
        line = grid.line(line_index)
        f[row] = line.from_bus - 1
        t[row] = line.to_bus - 1
        y[row] = float(line.admittance)
    return f, t, y


def connectivity_matrix(grid: Grid,
                        line_indices: Optional[Iterable[int]] = None,
                        backend: str = "dense"):
    """The l_active x b connectivity (incidence) matrix **A**.

    Rows follow the order of ``sorted(line_indices)``; use
    :func:`active_lines` for the row-to-line mapping.  With
    ``backend="sparse"`` the result is a :class:`CsrMatrix`.
    """
    _check_backend(backend)
    active = _active_line_list(grid, line_indices)
    if backend == "sparse":
        f, t, _ = _line_terminals(grid, active)
        rows = np.repeat(np.arange(len(active), dtype=np.int64), 2)
        cols = np.column_stack([f, t]).ravel()
        vals = np.tile(np.array([1.0, -1.0]), len(active))
        return CsrMatrix.from_coo(rows, cols, vals,
                                  (len(active), grid.num_buses))
    matrix = np.zeros((len(active), grid.num_buses))
    for row, line_index in enumerate(active):
        line = grid.line(line_index)
        matrix[row, line.from_bus - 1] = 1.0
        matrix[row, line.to_bus - 1] = -1.0
    return matrix


def active_lines(grid: Grid,
                 line_indices: Optional[Iterable[int]] = None) -> List[int]:
    """Line indices corresponding to matrix rows, in row order."""
    return _active_line_list(grid, line_indices)


def admittance_matrix(grid: Grid,
                      line_indices: Optional[Iterable[int]] = None
                      ) -> np.ndarray:
    """The diagonal branch admittance matrix **D** for the active lines."""
    active = _active_line_list(grid, line_indices)
    return np.diag([float(grid.line(i).admittance) for i in active])


def admittance_values(grid: Grid,
                      line_indices: Optional[Iterable[int]] = None
                      ) -> np.ndarray:
    """The branch admittances (the diagonal of **D**) in row order."""
    active = _active_line_list(grid, line_indices)
    return np.array([float(grid.line(i).admittance) for i in active])


def flow_matrix(grid: Grid,
                line_indices: Optional[Iterable[int]] = None,
                backend: str = "dense"):
    """The flow operator ``D A`` (line flows per bus angle vector)."""
    _check_backend(backend)
    active = _active_line_list(grid, line_indices)
    y = admittance_values(grid, active)
    A = connectivity_matrix(grid, active, backend=backend)
    if backend == "sparse":
        return A.scale_rows(y)
    return y[:, None] * A


def susceptance_matrix(grid: Grid,
                       line_indices: Optional[Iterable[int]] = None,
                       reduced: bool = True,
                       backend: str = "dense"):
    """The nodal susceptance matrix ``B = A^T D A``.

    With ``reduced=True`` the reference-bus row and column are removed,
    yielding the invertible (b-1)-dimensional matrix of ``B theta = P``.
    With ``backend="sparse"`` the result is a :class:`CsrMatrix` built
    directly from per-line stamps (no dense intermediates).
    """
    _check_backend(backend)
    b = grid.num_buses
    ref = grid.reference_bus - 1
    if backend == "sparse":
        active = _active_line_list(grid, line_indices)
        f, t, y = _line_terminals(grid, active)
        rows = np.concatenate([f, t, f, t])
        cols = np.concatenate([f, t, t, f])
        vals = np.concatenate([y, y, -y, -y])
        B = CsrMatrix.from_coo(rows, cols, vals, (b, b))
        if not reduced:
            return B
        keep = [i for i in range(b) if i != ref]
        return B.select_rows(keep).select_columns(keep)
    A = connectivity_matrix(grid, line_indices)
    D = admittance_matrix(grid, line_indices)
    B = A.T @ D @ A
    if not reduced:
        return B
    keep = [i for i in range(b) if i != ref]
    return B[np.ix_(keep, keep)]


def measurement_matrix(grid: Grid,
                       line_indices: Optional[Iterable[int]] = None,
                       backend: str = "dense"):
    """The full potential-measurement matrix **H** (paper Eq. 2).

    Shape is ``(2 * l + b, b - 1)``: every *potential* measurement gets a
    row (flows of excluded lines are structurally zero), and states are
    the non-reference bus angles.  Row layout matches the paper's
    measurement numbering:

    * rows ``0 .. l-1``  — forward flow of line ``i+1``,
    * rows ``l .. 2l-1`` — backward flow of line ``i+1-l``,
    * rows ``2l .. 2l+b-1`` — consumption at bus ``j+1-2l``.

    With ``backend="sparse"`` the result is a :class:`CsrMatrix` with
    the same row/column layout.
    """
    _check_backend(backend)
    l = grid.num_lines
    b = grid.num_buses
    active = set(_active_line_list(grid, line_indices))
    ref = grid.reference_bus - 1
    keep = [i for i in range(b) if i != ref]

    if backend == "sparse":
        act = sorted(active)
        f, t, y = _line_terminals(grid, act)
        line_rows = np.array([grid.line(i).index - 1 for i in act],
                             dtype=np.int64)
        rows = np.concatenate([
            line_rows, line_rows,                     # forward flows
            line_rows + l, line_rows + l,             # backward flows
            2 * l + f, 2 * l + f, 2 * l + t, 2 * l + t,
        ])
        cols = np.concatenate([f, t, f, t, f, t, f, t])
        vals = np.concatenate([y, -y, -y, y, -y, y, y, -y])
        H = CsrMatrix.from_coo(rows, cols, vals, (2 * l + b, b))
        return H.select_columns(keep)

    forward = np.zeros((l, b))
    for line in grid.lines:
        if line.index not in active:
            continue
        row = line.index - 1
        forward[row, line.from_bus - 1] = float(line.admittance)
        forward[row, line.to_bus - 1] = -float(line.admittance)
    consumption = np.zeros((b, b))
    for line in grid.lines:
        if line.index not in active:
            continue
        # Consumption = incoming - outgoing (paper Eq. 8):
        # the flow of an incoming line adds, an outgoing line subtracts.
        y = float(line.admittance)
        f, t = line.from_bus - 1, line.to_bus - 1
        # Flow (theta_f - theta_t) * y leaves bus f and enters bus t.
        consumption[f, f] -= y
        consumption[f, t] += y
        consumption[t, f] += y
        consumption[t, t] -= y
    H = np.vstack([forward, -forward, consumption])
    return H[:, keep]


def state_order(grid: Grid) -> List[int]:
    """Bus indices corresponding to the state-vector entries."""
    return [b.index for b in grid.buses if b.index != grid.reference_bus]
