"""Test-system registry.

``get_case(name)`` returns the :class:`~repro.grid.caseio.CaseDefinition`
for any of the systems the paper evaluates on:

* ``"5bus-study1"`` / ``"5bus-study2"`` — the paper's Fig.-3 system with
  the Table II / Table III scenarios,
* ``"ieee14"`` — the real IEEE 14-bus system,
* ``"ieee30"`` / ``"ieee57"`` / ``"ieee118"`` — IEEE-like systems with the
  authentic dimensions (see DESIGN.md for the substitution note).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition
from repro.grid.cases.five_bus import case_study_1, case_study_2
from repro.grid.cases.ieee14 import ieee14
from repro.grid.cases.synthetic import (
    ieee118,
    ieee30,
    ieee57,
    synth300,
    synth1354,
    synth2869,
    synth10000,
    synthetic_case,
)

_REGISTRY: Dict[str, Callable[[], CaseDefinition]] = {
    "5bus-study1": case_study_1,
    "5bus-study2": case_study_2,
    "ieee14": ieee14,
    "ieee30": ieee30,
    "ieee57": ieee57,
    "ieee118": ieee118,
    "synth300": synth300,
    "synth1354": synth1354,
    "synth2869": synth2869,
    "synth10000": synth10000,
}

#: The bus-count sweep of the paper's scalability evaluation (Section IV).
SCALABILITY_SWEEP = ["5bus-study2", "ieee14", "ieee30", "ieee57", "ieee118"]

#: The thousand-bus scaling axis enabled by the sparse backend.
SCALING_SWEEP = ["synth300", "synth1354", "synth2869", "synth10000"]


def case_names() -> List[str]:
    return sorted(_REGISTRY)


def get_case(name: str) -> CaseDefinition:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ModelError(
            f"unknown case {name!r}; available: {', '.join(case_names())}")


__all__ = [
    "SCALABILITY_SWEEP",
    "SCALING_SWEEP",
    "case_names",
    "case_study_1",
    "case_study_2",
    "get_case",
    "ieee14",
    "ieee30",
    "ieee57",
    "ieee118",
    "synth300",
    "synth1354",
    "synth2869",
    "synth10000",
    "synthetic_case",
]
