"""Synthetic IEEE-like systems for the scalability evaluation.

The paper scales its experiments over the IEEE 14/30/57/118-bus systems
with 5/6/7/23 generators respectively.  The archive data is not available
offline, so the 30/57/118-bus systems are synthesized with the authentic
dimensions — bus count, branch count (41/80/186) and generator count — and
realistic parameter distributions.  The evaluation only exercises *problem
size* (number of buses, lines, generators and measurements), which these
systems reproduce exactly; see DESIGN.md for the substitution rationale.

The topology generator produces meshed networks of the kind transmission
grids exhibit: a random geometric backbone (each bus connects to nearby
buses by index locality) plus longer chords, guaranteed connected.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.grid.caseio import CaseDefinition
from repro.grid.cases.builders import finalize_case


def random_topology(num_buses: int, num_lines: int, seed: int
                    ) -> List[Tuple[int, int, float]]:
    """A connected meshed topology with seeded reactances.

    Strategy: chain backbone 1-2-...-n (locality), then add chords with
    index-local bias until the branch budget is exhausted.  Reactances are
    drawn from a spread matching typical transmission lines (0.02-0.35
    p.u. on a 100 MVA base).
    """
    if num_lines < num_buses - 1:
        raise ValueError("need at least n-1 lines for connectivity")
    rng = random.Random(seed)
    edges = set()
    branches: List[Tuple[int, int, float]] = []

    def add(f: int, t: int) -> bool:
        if f == t:
            return False
        key = (min(f, t), max(f, t))
        if key in edges:
            return False
        edges.add(key)
        reactance = round(rng.uniform(0.02, 0.35), 5)
        branches.append((key[0], key[1], reactance))
        return True

    # Backbone chain with occasional shuffling for irregularity.
    order = list(range(1, num_buses + 1))
    for i in range(len(order) - 1):
        add(order[i], order[i + 1])

    attempts = 0
    while len(branches) < num_lines and attempts < num_lines * 200:
        attempts += 1
        f = rng.randint(1, num_buses)
        span = max(2, num_buses // 6)
        t = f + rng.randint(-span, span)
        if rng.random() < 0.15:
            t = rng.randint(1, num_buses)  # occasional long-distance tie
        if 1 <= t <= num_buses:
            add(f, t)
    return branches


def synthetic_case(name: str, num_buses: int, num_lines: int,
                   num_generators: int, seed: int) -> CaseDefinition:
    """A complete IEEE-like case with the given dimensions."""
    rng = random.Random(seed * 7919 + 13)
    branches = random_topology(num_buses, num_lines, seed)
    gen_buses = sorted(rng.sample(range(1, num_buses + 1), num_generators))
    # ~70% of the remaining buses carry load.
    load_buses = [b for b in range(1, num_buses + 1)
                  if b not in set(gen_buses) or rng.random() < 0.3]
    load_buses = [b for b in load_buses if rng.random() < 0.75]
    if not load_buses:
        load_buses = [b for b in range(1, num_buses + 1)
                      if b not in set(gen_buses)][:1]
    loads: Dict[int, float] = {
        bus: round(rng.uniform(0.05, 0.35), 3) for bus in load_buses
    }
    return finalize_case(name, branches, loads, gen_buses,
                         num_buses=num_buses, seed=seed)


def ieee30(seed: int = 30) -> CaseDefinition:
    """IEEE-30-like: 30 buses, 41 branches, 6 generators (paper's counts)."""
    return synthetic_case("ieee30", 30, 41, 6, seed)


def ieee57(seed: int = 57) -> CaseDefinition:
    """IEEE-57-like: 57 buses, 80 branches, 7 generators (paper's counts)."""
    return synthetic_case("ieee57", 57, 80, 7, seed)


def ieee118(seed: int = 118) -> CaseDefinition:
    """IEEE-118-like: 118 buses, 186 branches, 23 generators."""
    return synthetic_case("ieee118", 118, 186, 23, seed)
