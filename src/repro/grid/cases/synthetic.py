"""Synthetic IEEE-like systems for the scalability evaluation.

The paper scales its experiments over the IEEE 14/30/57/118-bus systems
with 5/6/7/23 generators respectively.  The archive data is not available
offline, so the 30/57/118-bus systems are synthesized with the authentic
dimensions — bus count, branch count (41/80/186) and generator count — and
realistic parameter distributions.  The evaluation only exercises *problem
size* (number of buses, lines, generators and measurements), which these
systems reproduce exactly; see DESIGN.md for the substitution rationale.

The topology generator produces meshed networks of the kind transmission
grids exhibit: a random geometric backbone (each bus connects to nearby
buses by index locality) plus longer chords, guaranteed connected.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.grid.caseio import CaseDefinition
from repro.grid.cases.builders import finalize_case


def random_topology(num_buses: int, num_lines: int, seed: int,
                    span: Optional[int] = None,
                    tie_probability: float = 0.15,
                    tie_span: Optional[int] = None
                    ) -> List[Tuple[int, int, float]]:
    """A connected meshed topology with seeded reactances.

    Strategy: chain backbone 1-2-...-n (locality), then add chords with
    index-local bias until the branch budget is exhausted.  Reactances are
    drawn from a spread matching typical transmission lines (0.02-0.35
    p.u. on a 100 MVA base).

    ``span`` bounds how far a chord reaches from its anchor bus (default:
    ``num_buses // 6``, the historical behaviour).  ``tie_probability``
    chords instead jump anywhere within ``tie_span`` of the anchor
    (default: the whole system).  The thousand-bus synthetic cases pass
    small spans so the susceptance matrix keeps a transmission-like
    bandwidth instead of degenerating into a random graph.

    The chord phase is randomized but the line count is *guaranteed*: a
    deterministic completion sweep fills any remaining budget with the
    nearest unused local pairs, so every call returns exactly
    ``num_lines`` branches.
    """
    if num_lines < num_buses - 1:
        raise ValueError("need at least n-1 lines for connectivity")
    if num_lines > num_buses * (num_buses - 1) // 2:
        raise ValueError("line budget exceeds the complete graph")
    rng = random.Random(seed)
    edges = set()
    branches: List[Tuple[int, int, float]] = []

    def add(f: int, t: int) -> bool:
        if f == t:
            return False
        key = (min(f, t), max(f, t))
        if key in edges:
            return False
        edges.add(key)
        reactance = round(rng.uniform(0.02, 0.35), 5)
        branches.append((key[0], key[1], reactance))
        return True

    # Backbone chain with occasional shuffling for irregularity.
    order = list(range(1, num_buses + 1))
    for i in range(len(order) - 1):
        add(order[i], order[i + 1])

    if span is None:
        span = max(2, num_buses // 6)
    attempts = 0
    while len(branches) < num_lines and attempts < num_lines * 200:
        attempts += 1
        f = rng.randint(1, num_buses)
        t = f + rng.randint(-span, span)
        if rng.random() < tie_probability:
            if tie_span is None:
                t = rng.randint(1, num_buses)  # long-distance tie
            else:
                t = f + rng.randint(-tie_span, tie_span)
        if 1 <= t <= num_buses:
            add(f, t)

    # Deterministic completion: nearest unused local pairs, shortest
    # reach first, so the returned branch count is always exact.
    reach = 2
    while len(branches) < num_lines and reach < num_buses:
        for f in range(1, num_buses - reach + 1):
            if len(branches) >= num_lines:
                break
            add(f, f + reach)
        reach += 1
    return branches


def synthetic_case(name: str, num_buses: int, num_lines: int,
                   num_generators: int, seed: int,
                   span: Optional[int] = None,
                   tie_probability: float = 0.15,
                   tie_span: Optional[int] = None) -> CaseDefinition:
    """A complete IEEE-like case with the given dimensions.

    The ``span``/``tie_probability``/``tie_span`` knobs are forwarded to
    :func:`random_topology`; the defaults reproduce the historical
    IEEE-30/57/118 substitutes byte for byte.
    """
    rng = random.Random(seed * 7919 + 13)
    branches = random_topology(num_buses, num_lines, seed, span=span,
                               tie_probability=tie_probability,
                               tie_span=tie_span)
    gen_buses = sorted(rng.sample(range(1, num_buses + 1), num_generators))
    # ~70% of the remaining buses carry load.
    load_buses = [b for b in range(1, num_buses + 1)
                  if b not in set(gen_buses) or rng.random() < 0.3]
    load_buses = [b for b in load_buses if rng.random() < 0.75]
    if not load_buses:
        load_buses = [b for b in range(1, num_buses + 1)
                      if b not in set(gen_buses)][:1]
    loads: Dict[int, float] = {
        bus: round(rng.uniform(0.05, 0.35), 3) for bus in load_buses
    }
    return finalize_case(name, branches, loads, gen_buses,
                         num_buses=num_buses, seed=seed)


def ieee30(seed: int = 30) -> CaseDefinition:
    """IEEE-30-like: 30 buses, 41 branches, 6 generators (paper's counts)."""
    return synthetic_case("ieee30", 30, 41, 6, seed)


def ieee57(seed: int = 57) -> CaseDefinition:
    """IEEE-57-like: 57 buses, 80 branches, 7 generators (paper's counts)."""
    return synthetic_case("ieee57", 57, 80, 7, seed)


def ieee118(seed: int = 118) -> CaseDefinition:
    """IEEE-118-like: 118 buses, 186 branches, 23 generators."""
    return synthetic_case("ieee118", 118, 186, 23, seed)


def _scaling_case(name: str, num_buses: int, num_lines: int,
                  num_generators: int, seed: int) -> CaseDefinition:
    """A thousand-bus-class case for the scaling axis.

    Small chord spans keep the susceptance matrix banded the way real
    transmission interconnects are (geographic locality), which is what
    makes sparse factorization pay off.  The 6% medium-range ties
    (span <= 512) bound the graph's effective diameter: without them a
    chain-of-thousands backbone drives the susceptance spectrum's
    spread (and hence the WLS gain matrix's) to the 1e-8 rank cutoff,
    where the dense SVD and sparse LU-pivot rank criteria start
    disagreeing about observability; with *global* ties instead, RCM
    cannot recover a narrow profile and sparse LU fill-in explodes.
    This middle ground keeps cond(B) ~ 1e5-1e6 at 2869 buses (gain
    rank decisively full on both backends) at ~7x-the-matrix fill.
    """
    return synthetic_case(name, num_buses, num_lines, num_generators,
                          seed, span=8, tie_probability=0.06,
                          tie_span=512)


def synth300(seed: int = 300) -> CaseDefinition:
    """300 buses, 411 branches, 30 generators (Polish-300 dimensions)."""
    return _scaling_case("synth300", 300, 411, 30, seed)


def synth1354(seed: int = 1354) -> CaseDefinition:
    """1354 buses, 1991 branches, 80 generators (PEGASE-1354 class)."""
    return _scaling_case("synth1354", 1354, 1991, 80, seed)


def synth2869(seed: int = 2869) -> CaseDefinition:
    """2869 buses, 4582 branches, 120 generators (PEGASE-2869 class)."""
    return _scaling_case("synth2869", 2869, 4582, 120, seed)


def synth10000(seed: int = 10000) -> CaseDefinition:
    """10000 buses, 13500 branches, 250 generators (10k-bus class)."""
    return _scaling_case("synth10000", 10000, 13500, 250, seed)
