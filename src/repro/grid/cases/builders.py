"""Shared machinery for finishing test cases into full CaseDefinitions.

The IEEE archive provides topologies, reactances and loads, but the paper's
analysis additionally needs line capacities, generator cost curves, load
bounds and a measurement plan, none of which the archive (or the paper)
specifies for the larger systems.  These are synthesized deterministically
here: capacities from a proportional base-case dispatch with headroom,
costs from a seeded spread of realistic $/p.u. slopes, and a measurement
plan with full redundancy.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition, LineSpec, MeasurementSpec
from repro.grid.components import Bus, Generator, Line, Load
from repro.grid.dcpf import solve_dc_power_flow
from repro.grid.network import Grid
from repro.smt.rational import to_fraction


def proportional_dispatch(generators: Sequence[Generator],
                          total_load: Fraction) -> Dict[int, Fraction]:
    """Dispatch meeting *total_load* proportionally to capacity headroom."""
    capacity = sum((g.p_max for g in generators), Fraction(0))
    if capacity < total_load:
        raise ModelError("insufficient generation capacity")
    if capacity == 0:
        return {g.bus: Fraction(0) for g in generators}
    scale = total_load / capacity
    return {g.bus: g.p_max * scale for g in generators}


def synthesize_capacities(grid_wo_capacity: Grid,
                          dispatch: Dict[int, Fraction],
                          headroom: float = 1.6,
                          floor: float = 0.05) -> Dict[int, Fraction]:
    """Line capacities sized from a base-case flow with headroom.

    A moderate headroom keeps line limits *binding enough* that topology
    attacks can move the OPF cost — mirroring the paper's observation that
    cost increases arise from transmission limits.
    """
    result = solve_dc_power_flow(
        grid_wo_capacity,
        {bus: float(p) for bus, p in dispatch.items()})
    capacities: Dict[int, Fraction] = {}
    for line in grid_wo_capacity.lines:
        base = abs(result.flow(line.index))
        value = max(base * headroom, floor)
        capacities[line.index] = to_fraction(round(value, 3))
    return capacities


def synthesize_costs(gen_buses: Sequence[int], seed: int
                     ) -> List[Tuple[int, Fraction, Fraction]]:
    """Seeded (bus, alpha, beta) cost coefficients.

    Slopes spread over roughly 2x so the OPF has meaningful merit order
    (the paper takes its coefficients "arbitrarily" as well).
    """
    rng = random.Random(seed)
    rows = []
    for bus in gen_buses:
        alpha = Fraction(rng.randint(30, 90))
        beta = Fraction(rng.randint(24, 48) * 50)  # 1200 .. 2400 $/p.u.
        rows.append((bus, alpha, beta))
    return rows


def full_measurement_plan(num_lines: int, num_buses: int
                          ) -> List[MeasurementSpec]:
    """Every potential measurement taken, unsecured, alterable."""
    total = 2 * num_lines + num_buses
    return [MeasurementSpec(i, True, False, True)
            for i in range(1, total + 1)]


def finalize_case(name: str,
                  branches: Sequence[Tuple[int, int, float]],
                  load_map: Dict[int, float],
                  gen_buses: Sequence[int],
                  num_buses: int,
                  seed: int,
                  capacity_headroom: float = 1.6,
                  gen_margin: float = 1.6) -> CaseDefinition:
    """Build a complete CaseDefinition from raw topology + load data.

    Parameters
    ----------
    branches:
        ``(from_bus, to_bus, reactance)`` rows, 1-based buses.
    load_map:
        bus -> demand in p.u.
    gen_buses:
        buses hosting a generator.
    seed:
        Drives every synthesized quantity (costs, bounds); two calls with
        the same arguments produce identical cases.
    """
    rng = random.Random(seed ^ 0x5EED)
    total_load = sum((to_fraction(v) for v in load_map.values()),
                     Fraction(0))

    # Generators: capacity proportional with margin, seeded costs.
    share = total_load * to_fraction(gen_margin) / len(gen_buses)
    costs = synthesize_costs(gen_buses, seed)
    generators = []
    for (bus, alpha, beta) in costs:
        jitter = Fraction(rng.randint(80, 125), 100)
        p_max = to_fraction(round(float(share * jitter), 3))
        p_min = to_fraction(round(float(p_max) * 0.1, 3))
        generators.append(Generator(bus, p_max, p_min, alpha, beta))

    loads = []
    for bus, demand in sorted(load_map.items()):
        value = to_fraction(demand)
        loads.append(Load(bus, value,
                          to_fraction(round(float(value) * 1.8 + 0.03, 3)),
                          to_fraction(round(float(value) * 0.35, 3))))

    # Capacities need a grid: build once with dummy capacities.
    buses = [Bus(i, i in set(gen_buses), i in load_map)
             for i in range(1, num_buses + 1)]
    draft_lines = [
        Line(i + 1, f, t, to_fraction(round(1.0 / x, 4)), Fraction(10))
        for i, (f, t, x) in enumerate(branches)
    ]
    draft = Grid(buses, draft_lines, generators, loads)
    dispatch = proportional_dispatch(generators, total_load)
    capacities = synthesize_capacities(draft, dispatch,
                                       headroom=capacity_headroom)

    # Line attack attributes: seeded structure mirroring the case studies —
    # part of a spanning tree is fixed "core" topology, some statuses are
    # integrity-protected.  (Keeping the protected set sparse leaves the
    # attack surface the paper's scenarios exhibit.)
    tree = _spanning_tree_lines(draft)
    line_specs = []
    for line in draft_lines:
        in_core = line.index in tree and rng.random() < 0.4
        secured = in_core and rng.random() < 0.4
        line_specs.append(LineSpec(
            line.index, line.from_bus, line.to_bus,
            line.admittance, capacities[line.index],
            knowledge=True,
            in_true_topology=True,
            in_core=in_core,
            status_secured=secured,
            status_alterable=not secured or rng.random() < 0.3,
        ))

    return CaseDefinition(
        name=name,
        line_specs=line_specs,
        measurement_specs=full_measurement_plan(len(branches), num_buses),
        bus_types=[(i, i in set(gen_buses), i in load_map)
                   for i in range(1, num_buses + 1)],
        generators=generators,
        loads=loads,
        resource_measurements=max(6, num_buses // 2),
        resource_buses=max(3, num_buses // 8),
        base_cost=Fraction(0),  # computed by the framework when 0
        min_increase_percent=Fraction(1),
    )


def _spanning_tree_lines(grid: Grid) -> set:
    """Indices of a spanning tree (the 'core' fixed topology)."""
    seen = {grid.buses[0].index}
    tree = set()
    changed = True
    while changed:
        changed = False
        for line in grid.lines:
            if line.index in tree:
                continue
            f_in, t_in = line.from_bus in seen, line.to_bus in seen
            if f_in != t_in:
                tree.add(line.index)
                seen.add(line.from_bus if t_in else line.to_bus)
                changed = True
    return tree
