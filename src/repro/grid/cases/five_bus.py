"""The paper's 5-bus test system (Fig. 3) and its two case studies.

Line data, measurement configuration, attacker resources and cost data are
transcribed from Table II (case study 1) and Table III (case study 2).

Measurement numbering (m = 2l + b = 19):

* 1-7:  forward line power flows of lines 1-7 (measured at the from-bus),
* 8-14: backward line power flows of lines 1-7 (measured at the to-bus),
* 15-19: bus power consumptions of buses 1-5.
"""

from __future__ import annotations

from typing import List

from repro.grid.caseio import CaseDefinition, LineSpec, MeasurementSpec
from repro.grid.components import Generator, Load

#: (index, from, to, admittance, capacity, knowledge, in true topology,
#:  in core, status secured, status alterable) — Table II/III, identical in
#: both case studies.
_LINE_ROWS = [
    (1, 1, 2, "16.90", "0.15", 1, 1, 1, 0, 0),
    (2, 1, 5, "4.48", "0.15", 1, 1, 1, 0, 0),
    (3, 2, 3, "5.05", "0.05", 1, 1, 1, 1, 1),
    (4, 2, 4, "5.67", "0.20", 1, 1, 1, 1, 1),
    (5, 2, 5, "5.75", "0.10", 1, 1, 0, 1, 1),
    (6, 3, 4, "5.85", "0.20", 1, 1, 0, 0, 1),
    (7, 4, 5, "23.75", "0.15", 1, 1, 1, 1, 1),
]

#: (bus, is generator, is load) — both case studies.
_BUS_TYPES = [
    (1, True, False),
    (2, True, True),
    (3, True, True),
    (4, False, True),
    (5, False, True),
]

#: (bus, p_max, p_min, alpha, beta) — both case studies.
_GENERATORS = [
    (1, "0.80", "0.10", "60", "1800"),
    (2, "0.60", "0.10", "50", "2200"),
    (3, "0.50", "0.10", "60", "1200"),
]

#: (bus, existing, max, min) — both case studies.
#:
#: Reconciliation note: the Table II/III transcription reads bus 3's
#: maximum load as 0.25, but with that bound the case-study-1 attack the
#: paper reports (line-6 exclusion, believed bus-3 load rising by the
#: line's flow) is infeasible for *every* admissible operating point —
#: the believed system's OPF only converges once bus 3's believed load
#: reaches 0.30.  Reading the bound as 0.30 reproduces the paper's
#: reported result exactly: the unique stealthy vector excludes line 6 at
#: a 0.06 p.u. flow and raises the believed optimal cost by 4.4%, the
#: same ratio as the paper's $1650 vs $1580 ("around 4%").  See
#: EXPERIMENTS.md.
_LOADS = [
    (2, "0.21", "0.30", "0.10"),
    (3, "0.24", "0.30", "0.15"),
    (4, "0.18", "0.30", "0.10"),
    (5, "0.20", "0.25", "0.10"),
]

#: (measurement, taken, secured, alterable) — Table II.
_MEASUREMENTS_STUDY_1 = [
    (1, 1, 1, 0), (2, 1, 1, 0), (3, 1, 1, 0), (4, 0, 1, 0), (5, 1, 1, 0),
    (6, 1, 0, 1), (7, 1, 0, 1), (8, 0, 1, 0), (9, 0, 1, 0), (10, 1, 0, 1),
    (11, 0, 0, 0), (12, 1, 1, 1), (13, 1, 0, 1), (14, 1, 1, 1),
    (15, 1, 1, 0), (16, 1, 1, 0), (17, 1, 0, 1), (18, 1, 0, 1),
    (19, 1, 1, 1),
]

#: (measurement, taken, secured, alterable) — Table III.
_MEASUREMENTS_STUDY_2 = [
    (1, 1, 1, 0), (2, 1, 1, 0),
] + [(i, 1, 0, 1) for i in range(3, 15)] + [
    (15, 1, 1, 0),
] + [(i, 1, 0, 1) for i in range(16, 20)]


def _build(name: str, measurements: List[tuple],
           resource_measurements: int, resource_buses: int,
           base_cost: str, percent: str) -> CaseDefinition:
    return CaseDefinition(
        name=name,
        line_specs=[LineSpec(*row) for row in _LINE_ROWS],
        measurement_specs=[MeasurementSpec(*row) for row in measurements],
        bus_types=[(b, bool(g), bool(d)) for b, g, d in
                   ((i, g, d) for i, g, d in _BUS_TYPES)],
        generators=[Generator(*row) for row in _GENERATORS],
        loads=[Load(*row) for row in _LOADS],
        resource_measurements=resource_measurements,
        resource_buses=resource_buses,
        base_cost=base_cost,
        min_increase_percent=percent,
    )


def case_study_1() -> CaseDefinition:
    """Table II: topology-only attack, >=3% target, 8 measurements / 3 buses."""
    return _build("5bus-study1", _MEASUREMENTS_STUDY_1, 8, 3, "1580", "3")


def case_study_2() -> CaseDefinition:
    """Table III: topology + state attack, >=6% target, 12 measurements / 3 buses."""
    return _build("5bus-study2", _MEASUREMENTS_STUDY_2, 12, 3, "1580", "6")
