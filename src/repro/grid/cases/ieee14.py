"""The IEEE 14-bus test system.

Topology, branch reactances and bus loads follow the IEEE Common Data
Format archive (University of Washington PSTCA).  Generator placement is
the standard set {1, 2, 3, 6, 8} — five generators, matching the count the
paper uses for its 14-bus experiments.  Capacities, cost curves and load
bounds are synthesized deterministically (see
:mod:`repro.grid.cases.builders`), since neither the archive nor the paper
provides them.
"""

from __future__ import annotations

from repro.grid.caseio import CaseDefinition
from repro.grid.cases.builders import finalize_case

#: (from bus, to bus, reactance X in p.u.) — IEEE CDF branch data.
BRANCHES = [
    (1, 2, 0.05917),
    (1, 5, 0.22304),
    (2, 3, 0.19797),
    (2, 4, 0.17632),
    (2, 5, 0.17388),
    (3, 4, 0.17103),
    (4, 5, 0.04211),
    (4, 7, 0.20912),
    (4, 9, 0.55618),
    (5, 6, 0.25202),
    (6, 11, 0.19890),
    (6, 12, 0.25581),
    (6, 13, 0.13027),
    (7, 8, 0.17615),
    (7, 9, 0.11001),
    (9, 10, 0.08450),
    (9, 14, 0.27038),
    (10, 11, 0.19207),
    (12, 13, 0.19988),
    (13, 14, 0.34802),
]

#: bus -> real power demand (p.u. on 100 MVA base) — IEEE CDF bus data.
LOADS = {
    2: 0.217,
    3: 0.942,
    4: 0.478,
    5: 0.076,
    6: 0.112,
    9: 0.295,
    10: 0.090,
    11: 0.035,
    12: 0.061,
    13: 0.135,
    14: 0.149,
}

GENERATOR_BUSES = [1, 2, 3, 6, 8]


def ieee14(seed: int = 14) -> CaseDefinition:
    """The IEEE 14-bus case (5 generators, 20 lines)."""
    return finalize_case("ieee14", BRANCHES, LOADS, GENERATOR_BUSES,
                         num_buses=14, seed=seed)
