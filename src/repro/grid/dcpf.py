"""DC power flow: solve ``[B][theta] = [P]`` (paper Eq. 4 / Section II-A).

Given dispatched generation and loads, computes bus angles, line flows and
bus consumptions.  The reference (slack) bus absorbs any imbalance, which
is the standard DC treatment; callers that require strict balance can
check :attr:`DcPowerFlowResult.slack_mismatch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.grid.matrices import (
    active_lines,
    connectivity_matrix,
    admittance_matrix,
    susceptance_matrix,
)
from repro.grid.network import Grid
from repro.numerics import guarded_solve, resolve_backend


@dataclass
class DcPowerFlowResult:
    """Solution of a DC power flow.

    ``angles`` maps every bus to its voltage phase angle (radians, with the
    reference at exactly 0).  ``flows`` maps line index to the forward-
    direction flow ``P_i^L``; excluded lines carry no entry.
    ``consumption`` maps bus index to ``P_j^B`` (paper Eq. 8 convention:
    positive means the bus absorbs power).
    """

    angles: Dict[int, float]
    flows: Dict[int, float]
    consumption: Dict[int, float]
    slack_mismatch: float

    def flow(self, line_index: int) -> float:
        return self.flows.get(line_index, 0.0)


def net_injections(grid: Grid,
                   dispatch: Optional[Dict[int, float]] = None,
                   loads: Optional[Dict[int, float]] = None) -> np.ndarray:
    """Per-bus net injection vector (generation minus load), 0-based.

    ``dispatch`` maps generator bus to output; defaults to zero output.
    ``loads`` maps bus to demand; defaults to each load's ``existing``.
    """
    injections = np.zeros(grid.num_buses)
    if dispatch:
        for bus, power in dispatch.items():
            if bus not in grid.generators:
                raise ModelError(f"dispatch for non-generator bus {bus}")
            injections[bus - 1] += float(power)
    if loads is None:
        for load in grid.loads.values():
            injections[load.bus - 1] -= float(load.existing)
    else:
        for bus, demand in loads.items():
            injections[bus - 1] -= float(demand)
    return injections


def solve_dc_power_flow(grid: Grid,
                        dispatch: Optional[Dict[int, float]] = None,
                        loads: Optional[Dict[int, float]] = None,
                        line_indices: Optional[Iterable[int]] = None,
                        backend: Optional[str] = None
                        ) -> DcPowerFlowResult:
    """Solve the DC power flow for the given dispatch and topology.

    ``line_indices`` selects the closed lines (defaults to the lines in
    service).  Raises :class:`ModelError` if the selected topology leaves
    the grid disconnected (singular susceptance matrix).
    """
    lines = active_lines(grid, line_indices)
    if not grid.is_connected(lines):
        raise ModelError("topology is disconnected; DC power flow undefined")

    injections = net_injections(grid, dispatch, loads)
    ref = grid.reference_bus - 1
    keep = [i for i in range(grid.num_buses) if i != ref]
    resolved = resolve_backend(backend, grid.num_buses)
    B = susceptance_matrix(grid, lines, reduced=True, backend=resolved)
    try:
        theta_reduced = guarded_solve(B, injections[keep],
                                      context="DC power flow "
                                              "susceptance matrix")
    except np.linalg.LinAlgError as exc:
        raise ModelError(f"singular susceptance matrix: {exc}") from exc

    theta = np.zeros(grid.num_buses)
    theta[keep] = theta_reduced

    flows: Dict[int, float] = {}
    for line_index in lines:
        line = grid.line(line_index)
        flows[line_index] = float(line.admittance) * (
            theta[line.from_bus - 1] - theta[line.to_bus - 1])

    consumption: Dict[int, float] = {}
    for bus in grid.buses:
        total = 0.0
        for line in grid.lines_in(bus.index):
            total += flows.get(line.index, 0.0)
        for line in grid.lines_out(bus.index):
            total -= flows.get(line.index, 0.0)
        consumption[bus.index] = total

    # The slack bus absorbs the global imbalance.
    slack_mismatch = float(np.sum(injections))
    angles = {bus.index: float(theta[bus.index - 1]) for bus in grid.buses}
    return DcPowerFlowResult(angles, flows, consumption, slack_mismatch)
