"""The :class:`Grid` container: buses, lines, generators, loads.

A ``Grid`` is an immutable-ish value object describing the *physical*
system.  The view the EMS operates on — which lines the topology processor
believes are closed — is a separate concern handled by
:mod:`repro.topology`; analytical code takes an explicit set of in-service
line indices wherever topology matters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.exceptions import ModelError
from repro.grid.components import Bus, Generator, Line, Load


class Grid:
    """A DC-model transmission grid.

    Parameters
    ----------
    buses, lines:
        Components numbered contiguously from 1 (paper convention).
    generators, loads:
        At most one of each per bus (the paper assumes a generation bus has
        a single generator).
    reference_bus:
        The slack bus whose phase angle is fixed at zero.
    """

    def __init__(self, buses: Sequence[Bus], lines: Sequence[Line],
                 generators: Sequence[Generator] = (),
                 loads: Sequence[Load] = (),
                 reference_bus: int = 1) -> None:
        self.buses: List[Bus] = sorted(buses, key=lambda b: b.index)
        self.lines: List[Line] = sorted(lines, key=lambda l: l.index)
        self.generators: Dict[int, Generator] = {}
        self.loads: Dict[int, Load] = {}
        self.reference_bus = reference_bus
        for gen in generators:
            if gen.bus in self.generators:
                raise ModelError(f"duplicate generator at bus {gen.bus}")
            self.generators[gen.bus] = gen
        for load in loads:
            if load.bus in self.loads:
                raise ModelError(f"duplicate load at bus {load.bus}")
            self.loads[load.bus] = load
        self._validate()
        self._lines_in: Dict[int, List[Line]] = {b.index: [] for b in self.buses}
        self._lines_out: Dict[int, List[Line]] = {b.index: [] for b in self.buses}
        for line in self.lines:
            self._lines_out[line.from_bus].append(line)
            self._lines_in[line.to_bus].append(line)

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        indices = [b.index for b in self.buses]
        if indices != list(range(1, len(indices) + 1)):
            raise ModelError("bus indices must be contiguous from 1")
        line_indices = [l.index for l in self.lines]
        if line_indices != list(range(1, len(line_indices) + 1)):
            raise ModelError("line indices must be contiguous from 1")
        bus_set = set(indices)
        for line in self.lines:
            if line.from_bus not in bus_set or line.to_bus not in bus_set:
                raise ModelError(
                    f"line {line.index} references an unknown bus")
        for bus in list(self.generators) + list(self.loads):
            if bus not in bus_set:
                raise ModelError(f"generator/load at unknown bus {bus}")
        if self.reference_bus not in bus_set:
            raise ModelError(f"unknown reference bus {self.reference_bus}")

    # -- dimensions ---------------------------------------------------------

    @property
    def num_buses(self) -> int:
        """b — the number of buses."""
        return len(self.buses)

    @property
    def num_lines(self) -> int:
        """l — the number of lines."""
        return len(self.lines)

    @property
    def num_potential_measurements(self) -> int:
        """m = 2l + b (paper Section III-B)."""
        return 2 * self.num_lines + self.num_buses

    # -- lookups -------------------------------------------------------------

    def bus(self, index: int) -> Bus:
        return self.buses[index - 1]

    def line(self, index: int) -> Line:
        return self.lines[index - 1]

    def lines_in(self, bus: int) -> List[Line]:
        """Lines whose *to* end is *bus* (the paper's L_{j,in})."""
        return self._lines_in[bus]

    def lines_out(self, bus: int) -> List[Line]:
        """Lines whose *from* end is *bus* (the paper's L_{j,out})."""
        return self._lines_out[bus]

    def lines_at(self, bus: int) -> List[Line]:
        return self._lines_in[bus] + self._lines_out[bus]

    def in_service_lines(self) -> List[Line]:
        return [line for line in self.lines if line.in_service]

    def total_load(self) -> Fraction:
        return sum((load.existing for load in self.loads.values()),
                   Fraction(0))

    def total_generation_capacity(self) -> Fraction:
        return sum((gen.p_max for gen in self.generators.values()),
                   Fraction(0))

    # -- topology ------------------------------------------------------------

    def is_connected(self, line_indices: Optional[Iterable[int]] = None) -> bool:
        """Is the grid connected using only the given lines?

        ``line_indices`` defaults to the lines that are in service.
        """
        if line_indices is None:
            active = [l for l in self.lines if l.in_service]
        else:
            chosen = set(line_indices)
            active = [l for l in self.lines if l.index in chosen]
        if self.num_buses == 0:
            return True
        adjacency: Dict[int, Set[int]] = {b.index: set() for b in self.buses}
        for line in active:
            adjacency[line.from_bus].add(line.to_bus)
            adjacency[line.to_bus].add(line.from_bus)
        seen = {self.buses[0].index}
        frontier = [self.buses[0].index]
        while frontier:
            bus = frontier.pop()
            for neighbor in adjacency[bus]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == self.num_buses

    def with_line_statuses(self, in_service: Dict[int, bool]) -> "Grid":
        """A copy of the grid with some lines' service status changed."""
        new_lines = [
            replace(line, in_service=in_service.get(line.index,
                                                    line.in_service))
            for line in self.lines
        ]
        return Grid(self.buses, new_lines, list(self.generators.values()),
                    list(self.loads.values()), self.reference_bus)

    def with_loads(self, new_loads: Dict[int, Fraction]) -> "Grid":
        """A copy with the *existing* load at some buses replaced.

        Load bounds are widened if necessary so the replacement remains a
        valid :class:`Load` (used when applying attack-shifted loads).
        """
        loads = []
        for load in self.loads.values():
            value = new_loads.get(load.bus, load.existing)
            loads.append(Load(
                load.bus, value,
                max(load.p_max, value), min(load.p_min, value)))
        return Grid(self.buses, self.lines, list(self.generators.values()),
                    loads, self.reference_bus)

    def __repr__(self) -> str:
        return (f"Grid(b={self.num_buses}, l={self.num_lines}, "
                f"generators={len(self.generators)}, loads={len(self.loads)})")
