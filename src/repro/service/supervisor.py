"""Worker supervision for the analysis service.

The :class:`Supervisor` owns N worker processes (see
:mod:`repro.service.worker`), a bounded job queue, and one dispatcher
thread that multiplexes the worker pipes with
:func:`multiprocessing.connection.wait`.  Its job is to make worker
failure boring:

* a worker that **dies** (crash, OOM-kill, injected ``os._exit``) is
  detected via its closed pipe / dead process, restarted with a fresh
  (empty) session pool after an exponential restart backoff, and the
  job it was holding is re-queued — at most ``retry_limit`` times,
  after which the job fails cleanly with ``worker_failed`` instead of
  wedging its connection;
* a worker that **hangs** past its job's deadline (plus slack for the
  budget's own cooperative degrade) is killed and treated the same —
  the in-band :meth:`~repro.smt.budget.SolverBudget.clamped` wall
  budget is the soft limit, the supervisor's kill is the hard one;
* the queue is **bounded**: once ``queue_limit`` jobs are pending or
  in flight, :meth:`submit` raises :class:`QueueFull` and the acceptor
  sheds the request with 429 + ``Retry-After`` rather than building an
  unbounded backlog;
* **drain** (SIGTERM) flips submissions to :class:`ServiceDraining`
  (503 upstream) while in-flight and queued jobs run to completion and
  checkpoint into the shared cache, then workers shut down cleanly.

If worker *processes* cannot be spawned at all (restricted sandboxes),
the supervisor degrades to daemon *threads* running the same
``worker_main`` loop: full functionality, reduced isolation (a hung
thread can only be abandoned, not killed — the pipe is severed and a
fresh worker thread takes its slot).
"""

from __future__ import annotations

import collections
import multiprocessing
import multiprocessing.connection
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.cache import DEFAULT_CACHE_DIR
from repro.service.protocol import PROTOCOL_VERSION, ServiceRequest
from repro.service.worker import worker_main

#: multiplier on a job's deadline before the supervisor hard-kills: the
#: clamped wall budget should fire first; this is the backstop for code
#: that never reaches a budget hook (e.g. a sleep in C, a real hang).
HANG_MULTIPLIER = 1.25


class QueueFull(Exception):
    """Load shed: the bounded queue is at capacity (HTTP 429)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"queue full; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class ServiceDraining(Exception):
    """The service is draining for shutdown (HTTP 503)."""


@dataclass
class ServiceConfig:
    """Tunables for one service instance."""

    workers: int = 2
    queue_limit: int = 16
    #: default per-job deadline when the request does not set one.
    request_timeout: float = 60.0
    #: extra seconds past deadline*HANG_MULTIPLIER before a hard kill.
    hang_grace: float = 1.0
    #: re-dispatches after a worker failure before the job fails.
    retry_limit: int = 1
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    use_cache: bool = True
    session_limit: int = 8
    self_check: Optional[bool] = None
    restart_backoff: float = 0.05
    restart_backoff_cap: float = 2.0
    #: seconds a restarted worker must stay alive before its restart
    #: *backoff* resets to the base value (the lifetime ``restarts``
    #: counter is untouched).  Without this, backoff grows monotonically
    #: over a worker's whole life and a transient crash burst months ago
    #: would permanently slow recovery from the next one.
    healthy_reset: float = 30.0
    #: path to a ServiceFaultPlan JSON file (chaos testing only).
    fault_plan: Optional[str] = None
    start_method: Optional[str] = None
    poll_interval: float = 0.05
    drain_timeout: float = 30.0

    def worker_options(self) -> Dict[str, Any]:
        return {"session_limit": self.session_limit,
                "cache_dir": self.cache_dir if self.use_cache else None,
                "self_check": self.self_check,
                "fault_plan": self.fault_plan}


class ServiceJob:
    """One queued/in-flight request and its completion latch."""

    __slots__ = ("id", "request", "payload", "deadline", "attempts",
                 "done", "result", "failure", "worker_id")

    def __init__(self, job_id: int, request: ServiceRequest,
                 deadline: float) -> None:
        self.id = job_id
        self.request = request
        self.payload = dict(request.job_payload(), op="job", id=job_id,
                            deadline=deadline)
        self.deadline = deadline
        self.attempts = 0
        self.done = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.failure: Optional[Tuple[str, str]] = None
        self.worker_id: Optional[int] = None

    def finish(self, result: Dict[str, Any]) -> None:
        self.result = result
        self.done.set()

    def fail(self, code: str, message: str) -> None:
        self.failure = (code, message)
        self.done.set()

    def kill_after(self, hang_grace: float) -> float:
        return self.deadline * HANG_MULTIPLIER + hang_grace


class WorkerHandle:
    """One supervised worker: its process/thread, pipe and bookkeeping."""

    def __init__(self, worker_id: int, options: Dict[str, Any],
                 ctx) -> None:
        self.worker_id = worker_id
        self.options = options
        self.ctx = ctx
        self.conn = None
        self.process = None
        self.thread = None
        self.restarts = 0
        #: consecutive-failure level the next restart backoff derives
        #: from; reset to 0 once the worker stays healthy for
        #: ``ServiceConfig.healthy_reset`` seconds (unlike ``restarts``,
        #: which counts for the worker's whole lifetime).
        self.backoff_level = 0
        self.spawned_at: Optional[float] = None
        self.busy: Optional[ServiceJob] = None
        self.dispatched_at: Optional[float] = None
        self.respawn_at: Optional[float] = None
        self.last_stats: Dict[str, Any] = {}
        self.pinged_at = 0.0

    # -- lifecycle -----------------------------------------------------

    def spawn(self) -> None:
        parent, child = self.ctx.Pipe(duplex=True)
        try:
            process = self.ctx.Process(
                target=worker_main,
                args=(child, self.worker_id, self.options),
                daemon=True, name=f"repro-worker-{self.worker_id}")
            process.start()
            child.close()
            self.process, self.thread = process, None
        except (OSError, ValueError):
            # Restricted sandbox: same loop in a daemon thread (reduced
            # isolation — hangs are abandoned, not killed).
            thread = threading.Thread(
                target=worker_main,
                args=(child, self.worker_id, self.options),
                daemon=True, name=f"repro-worker-{self.worker_id}")
            thread.start()
            self.process, self.thread = None, thread
        self.conn = parent
        self.busy = None
        self.dispatched_at = None
        self.respawn_at = None
        self.spawned_at = time.monotonic()
        self.last_stats = {}

    def alive(self) -> bool:
        if self.process is not None:
            return self.process.is_alive()
        if self.thread is not None:
            return self.thread.is_alive()
        return False

    def kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(0.5)
                if self.process.is_alive():
                    self.process.kill()
                    self.process.join(0.5)
            self.process = None
        # A hung thread cannot be killed; severing the pipe lets a
        # healthy one exit and abandons a truly wedged one.
        self.thread = None

    def shutdown(self, timeout: float = 2.0) -> None:
        if self.conn is not None and self.busy is None:
            try:
                self.conn.send({"op": "shutdown"})
            except (OSError, ValueError, BrokenPipeError):
                pass
        process = self.process
        if process is not None:
            process.join(timeout)
        self.kill()

    # -- dispatch ------------------------------------------------------

    def dispatch(self, job: ServiceJob) -> bool:
        """Send *job* down the pipe; False means this worker is dead."""
        if self.conn is None:
            return False
        try:
            self.conn.send(job.payload)
        except (OSError, ValueError, BrokenPipeError):
            return False
        job.attempts += 1
        job.worker_id = self.worker_id
        self.busy = job
        self.dispatched_at = time.monotonic()
        return True

    def ping(self) -> None:
        if self.conn is None or self.busy is not None:
            return
        try:
            self.conn.send({"op": "ping", "id": -1})
            self.pinged_at = time.monotonic()
        except (OSError, ValueError, BrokenPipeError):
            pass

    def describe(self) -> Dict[str, Any]:
        return {"worker": self.worker_id, "alive": self.alive(),
                "mode": "thread" if self.thread is not None else "process",
                "restarts": self.restarts,
                "busy": self.busy.id if self.busy is not None else None,
                "stats": dict(self.last_stats)}


class Supervisor:
    """Dispatches jobs to supervised workers; restarts what breaks."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ValueError("need at least one worker")
        if self.config.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        method = self.config.start_method
        self._ctx = multiprocessing.get_context(method) if method \
            else multiprocessing.get_context()
        self._workers: List[WorkerHandle] = []
        self._pending: "collections.deque[ServiceJob]" = \
            collections.deque()
        self._lock = threading.Lock()
        self._job_ids = iter(range(1, 1 << 62)).__next__
        self._loop_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self.started_at: Optional[float] = None
        # counters (under _lock)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.shed = 0
        #: counters inherited from killed workers, so /stats totals
        #: survive restarts (gauges like "sessions"/"pid" excluded).
        self._retired_totals: Dict[str, float] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Supervisor":
        if self._loop_thread is not None:
            return self
        options = self.config.worker_options()
        for worker_id in range(self.config.workers):
            handle = WorkerHandle(worker_id, options, self._ctx)
            handle.spawn()
            self._workers.append(handle)
        self._loop_thread = threading.Thread(
            target=self._loop, daemon=True, name="repro-supervisor")
        self._loop_thread.start()
        self.started_at = time.monotonic()
        return self

    def stop(self) -> None:
        """Immediate shutdown: fail queued jobs, kill workers."""
        self._draining.set()
        self._stop.set()
        if self._loop_thread is not None:
            self._loop_thread.join(2.0)
            self._loop_thread = None
        with self._lock:
            pending = list(self._pending)
            self._pending.clear()
        for job in pending:
            job.fail("service_stopped", "service shut down before "
                                        "the job was dispatched")
        for handle in self._workers:
            if handle.busy is not None:
                handle.busy.fail("service_stopped",
                                 "service shut down mid-job")
                handle.busy = None
            handle.shutdown()
        self._workers = []

    def begin_drain(self) -> None:
        """Stop accepting new jobs; in-flight work keeps running."""
        self._draining.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain gracefully; True when every accepted job finished."""
        self.begin_drain()
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.config.drain_timeout)
        while time.monotonic() < deadline:
            with self._lock:
                queued = len(self._pending)
            busy = sum(1 for h in self._workers if h.busy is not None)
            if queued == 0 and busy == 0:
                self.stop()
                return True
            time.sleep(self.config.poll_interval)
        self.stop()
        return False

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- submission ----------------------------------------------------

    def submit(self, request: ServiceRequest) -> ServiceJob:
        """Queue one request; raises QueueFull/ServiceDraining to shed."""
        if self._draining.is_set():
            raise ServiceDraining("service is draining")
        deadline = request.deadline_seconds \
            if request.deadline_seconds is not None \
            else self.config.request_timeout
        with self._lock:
            in_flight = sum(1 for h in self._workers
                            if h.busy is not None)
            if len(self._pending) + in_flight >= self.config.queue_limit:
                self.shed += 1
                raise QueueFull(retry_after=max(
                    0.5, deadline / max(1, self.config.workers)))
            job = ServiceJob(self._job_ids(), request, deadline)
            self._pending.append(job)
            self.submitted += 1
        return job

    def wait(self, job: ServiceJob,
             timeout: Optional[float] = None) -> ServiceJob:
        """Block until *job* finishes (or the safety timeout trips)."""
        if timeout is None:
            # Generous backstop: every allowed attempt at its hard-kill
            # horizon, plus queueing/restart slack.  The dispatcher
            # should always beat this.
            per_attempt = job.kill_after(self.config.hang_grace)
            timeout = (self.config.retry_limit + 1) * per_attempt \
                + self.config.drain_timeout
        if not job.done.wait(timeout):
            job.fail("service_timeout",
                     f"job {job.id} did not complete within {timeout:.1f}s")
        return job

    # -- the dispatcher loop -------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._respawn_due()
                self._dispatch_pending()
                self._collect_replies()
                self._reap_dead_and_hung()
                self._reset_recovered_backoff()
                self._ping_idle()
            except Exception:
                # The loop must never die: a wedged dispatcher is the
                # one failure the service cannot recover from.
                time.sleep(self.config.poll_interval)

    def _respawn_due(self) -> None:
        now = time.monotonic()
        for handle in self._workers:
            if handle.conn is None and handle.respawn_at is not None \
                    and now >= handle.respawn_at:
                handle.spawn()

    def _dispatch_pending(self) -> None:
        for handle in self._workers:
            if handle.conn is None or handle.busy is not None:
                continue
            if not handle.alive():
                continue
            with self._lock:
                job = self._pending.popleft() if self._pending else None
            if job is None:
                return
            if not handle.dispatch(job):
                with self._lock:
                    self._pending.appendleft(job)
                self._worker_failed(handle, requeue=False)

    def _collect_replies(self) -> None:
        conns = {handle.conn: handle for handle in self._workers
                 if handle.conn is not None}
        if not conns:
            time.sleep(self.config.poll_interval)
            return
        ready = multiprocessing.connection.wait(
            list(conns), timeout=self.config.poll_interval)
        for conn in ready:
            handle = conns[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._worker_failed(handle, requeue=True)
                continue
            if not isinstance(message, dict):
                continue
            handle.last_stats = message.get("stats") or handle.last_stats
            if message.get("op") != "result":
                continue
            job = handle.busy
            handle.busy = None
            handle.dispatched_at = None
            if job is None or message.get("id") != job.id:
                continue
            job.finish(message)
            with self._lock:
                self.completed += 1

    def _reap_dead_and_hung(self) -> None:
        now = time.monotonic()
        for handle in self._workers:
            if handle.conn is None:
                continue
            if not handle.alive() and handle.process is not None:
                self._worker_failed(handle, requeue=True)
                continue
            job = handle.busy
            if job is not None and handle.dispatched_at is not None \
                    and now - handle.dispatched_at \
                    > job.kill_after(self.config.hang_grace):
                self._worker_failed(handle, requeue=True, hung=True)

    def _reset_recovered_backoff(self) -> None:
        """Forget the failure burst once a worker proves healthy.

        A worker that has stayed alive for ``healthy_reset`` seconds
        since its last (re)spawn gets its backoff level zeroed — the
        next crash restarts at the base backoff instead of wherever the
        last burst left off.  The lifetime ``restarts`` counter is
        deliberately untouched (it is an observability total, not a
        policy input).
        """
        now = time.monotonic()
        for handle in self._workers:
            if handle.backoff_level == 0 or handle.conn is None:
                continue
            if handle.spawned_at is not None and handle.alive() \
                    and now - handle.spawned_at \
                    >= self.config.healthy_reset:
                handle.backoff_level = 0

    def _ping_idle(self) -> None:
        now = time.monotonic()
        for handle in self._workers:
            if now - handle.pinged_at >= 1.0:
                handle.ping()

    def _worker_failed(self, handle: WorkerHandle, requeue: bool,
                       hung: bool = False) -> None:
        """Kill + schedule respawn; re-queue or fail the held job."""
        job = handle.busy
        handle.busy = None
        handle.dispatched_at = None
        self._retire_stats(handle.last_stats)
        handle.last_stats = {}      # don't report a dead worker's gauges
        handle.kill()
        handle.restarts += 1
        # Exponential backoff over the *recent* failure burst only: the
        # level resets after a healthy interval, so a worker that
        # crashed repeatedly last week still restarts promptly today.
        backoff = min(self.config.restart_backoff_cap,
                      self.config.restart_backoff
                      * (2 ** min(handle.backoff_level, 10)))
        handle.backoff_level += 1
        handle.respawn_at = time.monotonic() + backoff
        if job is None or not requeue:
            return
        why = "hung past its deadline" if hung else "died"
        if job.attempts <= self.config.retry_limit:
            with self._lock:
                self._pending.appendleft(job)
                self.retried += 1
        else:
            job.fail("worker_failed",
                     f"worker {handle.worker_id} {why} and the job "
                     f"already used its {job.attempts} attempt(s)")
            with self._lock:
                self.failed += 1

    def _retire_stats(self, last_stats: Dict[str, Any]) -> None:
        with self._lock:
            for key, value in (last_stats or {}).items():
                if key in ("pid", "sessions"):
                    continue        # gauges, not counters
                if isinstance(value, (int, float)):
                    self._retired_totals[key] = \
                        self._retired_totals.get(key, 0) + value

    # -- introspection -------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        workers = [handle.describe() for handle in self._workers]
        return {"ok": bool(workers)
                      and any(w["alive"] for w in workers),
                "draining": self.draining,
                "workers": workers,
                "restarts": sum(w["restarts"] for w in workers)}

    def readyz(self) -> Dict[str, Any]:
        alive = sum(1 for h in self._workers if h.alive())
        ready = alive > 0 and not self.draining
        return {"ready": ready, "alive_workers": alive,
                "draining": self.draining}

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            queued = len(self._pending)
            counters = {"submitted": self.submitted,
                        "completed": self.completed,
                        "failed": self.failed,
                        "retried": self.retried,
                        "shed": self.shed}
        busy = sum(1 for h in self._workers if h.busy is not None)
        worker_stats = [h.describe() for h in self._workers]
        with self._lock:
            totals: Dict[str, float] = dict(self._retired_totals)
        for entry in worker_stats:
            for key, value in entry["stats"].items():
                if isinstance(value, (int, float)) and key != "pid":
                    totals[key] = totals.get(key, 0) + value
        hits = totals.get("session_hits", 0)
        misses = totals.get("session_misses", 0)
        warm = hits / (hits + misses) if hits + misses else None
        uptime = None if self.started_at is None \
            else time.monotonic() - self.started_at
        return {"queued": queued, "busy": busy, "uptime": uptime,
                "queue_limit": self.config.queue_limit,
                "draining": self.draining, "counters": counters,
                "workers": worker_stats, "totals": totals,
                "warm_hit_ratio": warm,
                "protocol_version": PROTOCOL_VERSION}
