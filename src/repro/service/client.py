"""Retrying HTTP client for the analysis service.

:class:`ServiceClient` wraps ``http.client`` (stdlib only) with the
retry discipline the service's load-shedding contract expects:

* **retryable**: connection refused/reset/dropped, HTTP 429 (shed),
  503 (draining / worker failure) and other 5xx — retried up to
  ``retries`` times with exponential backoff, full jitter
  (``delay = min(cap, base * 2**attempt) * (0.5 + rng())``), and the
  server's ``Retry-After`` hint honoured (capped, so a confused server
  cannot park the client);
* **terminal**: HTTP 400 protocol rejections raise
  :class:`ProtocolRejected` carrying the server's structured
  ``diagnostics`` — retrying a malformed request is never useful —
  and 404/405 raise plain :class:`ServiceError`.

Pass a seeded ``random.Random`` as *rng* for deterministic backoff in
tests.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import urlsplit

from repro.service.protocol import PROTOCOL_VERSION

__all__ = ["ProtocolRejected", "ServiceClient", "ServiceError",
           "ServiceUnavailable"]


class ServiceError(Exception):
    """Base class for client-visible service failures."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body or {}


class ProtocolRejected(ServiceError):
    """HTTP 400: the server refused the request shape; never retried."""

    @property
    def diagnostics(self) -> List[Dict[str, Any]]:
        report = self.body.get("diagnostics") or {}
        return list(report.get("diagnostics", []))

    @property
    def codes(self) -> List[str]:
        return [d.get("code") for d in self.diagnostics]


class ServiceUnavailable(ServiceError):
    """Retries exhausted against shed/drain/failure responses."""


class ServiceClient:
    """A small blocking client with exponential backoff + jitter."""

    def __init__(self, base_url: str, retries: int = 5,
                 backoff_seconds: float = 0.1,
                 backoff_cap: float = 2.0,
                 retry_after_cap: float = 5.0,
                 timeout: float = 120.0,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme: {parts.scheme!r}")
        netloc = parts.netloc or parts.path
        self.host = netloc.rsplit(":", 1)[0] or "127.0.0.1"
        self.port = int(netloc.rsplit(":", 1)[1]) if ":" in netloc \
            else 80
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap = backoff_cap
        self.retry_after_cap = retry_after_cap
        self.timeout = timeout
        self.rng = rng or random.Random()
        self.sleep = sleep
        self.attempts_made = 0      # across the client's lifetime

    # -- transport -----------------------------------------------------

    def _once(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None
              ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers = {"Content-Type": "application/json",
                           "Content-Length": str(len(body))}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"message": raw[:200].decode("utf-8",
                                                       "replace")}
            decoded["_status"] = response.status
            retry_after = response.headers.get("Retry-After")
            if retry_after is not None:
                decoded["_retry_after"] = retry_after
            return decoded
        finally:
            conn.close()

    def _retry_after_seconds(self, hint: str) -> Optional[float]:
        """Seconds a ``Retry-After`` header asks for, or None.

        RFC 7231 allows both delta-seconds and HTTP-date forms.  A
        header in neither form (or a date that fails to parse) yields
        None — the caller falls back to its computed backoff instead of
        raising, so a creative server can never crash the retry loop.
        """
        try:
            return float(hint)
        except (TypeError, ValueError):
            pass
        try:
            from email.utils import parsedate_to_datetime
            when = parsedate_to_datetime(hint)
        except (TypeError, ValueError, IndexError):
            return None
        if when is None:
            return None
        from datetime import timezone
        if when.tzinfo is None:
            when = when.replace(tzinfo=timezone.utc)
        from datetime import datetime
        return max(0.0,
                   (when - datetime.now(timezone.utc)).total_seconds())

    def _delay(self, attempt: int,
               hint: Optional[str] = None) -> float:
        delay = min(self.backoff_cap,
                    self.backoff_seconds * (2 ** attempt))
        delay *= 0.5 + self.rng.random()
        if hint is not None:
            hinted = self._retry_after_seconds(hint)
            if hinted is not None:
                delay = max(delay, min(hinted, self.retry_after_cap))
        return delay

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
        """One logical request; retries transport + shed failures."""
        last_error: Optional[str] = None
        last_body: Optional[Dict[str, Any]] = None
        for attempt in range(self.retries + 1):
            self.attempts_made += 1
            hint = None
            try:
                body = self._once(method, path, payload)
            except (ConnectionError, socket.timeout, socket.error,
                    http.client.HTTPException, OSError) as exc:
                # Includes injected drop_connection faults: the server
                # severed the socket without a response.
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                status = body.pop("_status")
                hint = body.pop("_retry_after", None)
                if status < 400:
                    return body
                if status == 400:
                    raise ProtocolRejected(
                        body.get("message", "rejected"),
                        status=status, body=body)
                if status in (404, 405, 413):
                    raise ServiceError(
                        body.get("message", f"HTTP {status}"),
                        status=status, body=body)
                # 429 / 503 / other 5xx: retryable
                last_error = f"HTTP {status}: " \
                             f"{body.get('error', 'unavailable')}"
                last_body = body
            if attempt < self.retries:
                self.sleep(self._delay(attempt, hint))
        raise ServiceUnavailable(
            f"{method} {path} failed after "
            f"{self.retries + 1} attempt(s): {last_error}",
            body=last_body)

    # -- endpoints -----------------------------------------------------

    def analyze(self, spec: Dict[str, Any],
                **options: Any) -> Dict[str, Any]:
        return self.request("POST", "/v1/analyze",
                            dict(options, spec=spec))

    def maximize(self, spec: Dict[str, Any],
                 **options: Any) -> Dict[str, Any]:
        return self.request("POST", "/v1/maximize",
                            dict(options, spec=spec))

    def sweep(self, specs: List[Dict[str, Any]],
              **options: Any) -> Dict[str, Any]:
        return self.request("POST", "/v1/sweep",
                            dict(options, specs=specs))

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        return self.request("GET", "/readyz")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def wait_ready(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Poll /readyz until ready (startup handshake for tests/CI)."""
        deadline = time.monotonic() + timeout
        last: Dict[str, Any] = {}
        while time.monotonic() < deadline:
            try:
                last = self._once("GET", "/readyz")
                if last.pop("_status", None) == 200 \
                        and last.get("ready"):
                    return last
            except (ConnectionError, socket.error, OSError,
                    http.client.HTTPException):
                pass
            self.sleep(0.1)
        raise ServiceUnavailable(
            f"service not ready within {timeout:.1f}s: {last}")

    def __repr__(self) -> str:
        return f"ServiceClient(http://{self.host}:{self.port}, " \
               f"retries={self.retries}, " \
               f"protocol={PROTOCOL_VERSION})"
