"""The service's worker process: warm session pools + cache read-through.

One worker owns a :class:`SessionPool` of warm analyzers keyed by
:meth:`~repro.runner.spec.ScenarioSpec.encoding_group` fingerprints —
the same grouping the sweep engine batches warm units by, so repeated
requests against one (case, analyzer, state-infection) encoding re-solve
incrementally inside solver scopes instead of re-encoding per request.

Workers are crash-disposable by design: all durable state lives in the
shared on-disk result cache (read-through before computing, checkpoint
after), so the supervisor can kill and restart a worker at any moment
and lose nothing but warmth.  Each job's deadline is clamped into its
:class:`~repro.smt.budget.SolverBudget` wall budget, so a slow solve
degrades to a ``budget_exhausted`` partial outcome *inside* the
deadline — the supervisor's hard kill is the backstop, not the norm.

The pipe protocol (parent <-> worker) is tiny::

    {"op": "job", "id", "spec", "budget"?, "self_check"?, "deadline"?,
     "use_cache"?}                      -> {"op": "result", "id",
                                            "outcome", "stats"}
    {"op": "ping", "id"}                -> {"op": "pong", "id", "stats"}
    {"op": "shutdown"}                  -> (worker exits 0)
"""

from __future__ import annotations

import os
import time
import traceback
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import InputFormatError
from repro.runner.cache import ResultCache
from repro.runner.engine import (
    _rejected_outcome,
    build_analyzer,
    execute_with_analyzer,
    parse_failure_report,
    verify_cached_outcome,
)
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import ERROR, NUMERICAL_UNSTABLE, OK, \
    REJECTED_STATUSES, ScenarioOutcome
from repro.smt.budget import SolverBudget
from repro.smt.certificates import self_check_default
from repro.testing.faults import ServiceFaultPlan

#: os._exit code for a worker told to shut down while mid-recv.
_CLEAN_EXIT = 0


class SessionPool:
    """LRU pool of warm analyzers keyed by encoding-group fingerprint."""

    def __init__(self, limit: int = 8) -> None:
        if limit < 1:
            raise ValueError("session pool limit must be >= 1")
        self.limit = limit
        self._sessions: "OrderedDict[str, Tuple[Any, str]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def acquire(self, key: str, case, kind: str,
                backend: Optional[str] = None) -> Tuple[Any, str]:
        """The warm (analyzer, kind) for *key*, building on first use.

        ``key`` (the encoding group) already folds in the resolved
        backend, so two backends of the same case never share a session.
        """
        entry = self._sessions.get(key)
        if entry is not None:
            self._sessions.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        entry = (build_analyzer(case, kind, warm=True, backend=backend),
                 kind)
        self._sessions[key] = entry
        while len(self._sessions) > self.limit:
            self._sessions.popitem(last=False)
            self.evictions += 1
        return entry

    def invalidate(self, key: str) -> None:
        """Drop a session whose solver state is no longer trusted."""
        self._sessions.pop(key, None)

    def stats(self) -> Dict[str, Any]:
        return {"sessions": len(self._sessions), "session_hits": self.hits,
                "session_misses": self.misses,
                "session_evictions": self.evictions}


class ServiceWorker:
    """Executes jobs against a warm session pool (one per process)."""

    def __init__(self, worker_id: int,
                 options: Optional[Dict[str, Any]] = None) -> None:
        options = options or {}
        self.worker_id = worker_id
        self.pool = SessionPool(limit=int(options.get("session_limit", 8)))
        cache_dir = options.get("cache_dir")
        self._cache = ResultCache(cache_dir) if cache_dir else None
        self._self_check_default = options.get("self_check")
        self._fault_plan = options.get("fault_plan")
        self.jobs = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_write_errors = 0
        self.encode_seconds = 0.0
        self.solve_seconds = 0.0
        self.analysis_seconds = 0.0

    # -- stats ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        payload = {"pid": os.getpid(), "jobs": self.jobs,
                   "cache_hits": self.cache_hits,
                   "cache_misses": self.cache_misses,
                   "cache_write_errors": self.cache_write_errors,
                   "encode_seconds": self.encode_seconds,
                   "solve_seconds": self.solve_seconds,
                   "analysis_seconds": self.analysis_seconds}
        payload.update(self.pool.stats())
        return payload

    def _absorb(self, outcome: ScenarioOutcome) -> None:
        self.jobs += 1
        self.analysis_seconds += outcome.analysis_seconds
        session = (outcome.trace or {}).get("session", {})
        self.encode_seconds += session.get("encode_seconds", 0.0)
        self.solve_seconds += session.get("solve_seconds", 0.0)

    # -- job execution --------------------------------------------------

    def run_job(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one job message; always returns a result message."""
        outcome = self._execute(message)
        self._absorb(outcome)
        return {"op": "result", "id": message.get("id"),
                "outcome": outcome.to_dict(), "stats": self.stats()}

    def _budget(self, message: Dict[str, Any]) -> Optional[SolverBudget]:
        limits = message.get("budget")
        deadline = message.get("deadline")
        if limits is None and deadline is None:
            return None
        budget = SolverBudget.from_dict(limits) if limits \
            else SolverBudget()
        return budget.clamped(deadline)

    def _execute(self, message: Dict[str, Any]) -> ScenarioOutcome:
        started = time.perf_counter()
        try:
            spec = ScenarioSpec.from_dict(message.get("spec") or {})
        except ValueError as exc:
            # The protocol layer rejects these before dispatch; this is
            # the defensive belt for direct pipe speakers.
            return ScenarioOutcome(
                spec=ScenarioSpec(case="<malformed>"), fingerprint="",
                status=ERROR, error=str(exc), worker_pid=os.getpid())

        plan = None
        try:
            plan = ServiceFaultPlan.load(self._fault_plan)
        except (OSError, ValueError, KeyError):
            plan = None
        if plan is not None:
            plan.apply_worker_fault(spec.label)

        outcome = ScenarioOutcome(spec=spec, fingerprint="",
                                  worker_pid=os.getpid())
        budget = self._budget(message)
        self_check = message.get("self_check", self._self_check_default)
        certify = self_check_default(self_check)
        try:
            if budget is not None:
                budget.start()   # covers fingerprint + case build too
            try:
                fingerprint = spec.fingerprint()
            except InputFormatError as exc:
                rejected = _rejected_outcome(
                    spec, "", parse_failure_report(spec.case, exc))
                rejected.worker_pid = os.getpid()
                rejected.task_seconds = time.perf_counter() - started
                return rejected
            outcome.fingerprint = fingerprint

            cache = self._cache if message.get("use_cache", True) \
                else None
            if plan is not None:
                cache = plan.wrap_cache(spec.label, cache)
            if cache is not None:
                hit = cache.get(fingerprint)
                if hit is not None:
                    try:
                        served = ScenarioOutcome.from_dict(hit)
                        verify_cached_outcome(served, spec,
                                              require_certified=certify)
                        served.cache_hit = True
                        self.cache_hits += 1
                        return served
                    except ValueError:
                        pass    # stale/corrupt: recompute + overwrite
                self.cache_misses += 1

            case = spec.resolve_case()
            kind = spec.resolved_analyzer(case)
            group = spec.encoding_group()
            analyzer, kind = self.pool.acquire(
                group, case, kind, backend=spec.resolved_backend(case))
        except Exception as exc:
            outcome.status = ERROR
            outcome.error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
            outcome.task_seconds = time.perf_counter() - started
            return outcome

        finished = execute_with_analyzer(
            spec, fingerprint, analyzer, kind, budget, self_check,
            started=started, outcome=outcome)
        if finished.status == ERROR:
            # The warm solver may be mid-scope after an arbitrary
            # failure: evict so the next request re-encodes cleanly.
            self.pool.invalidate(group)
        cacheable = finished.status == OK \
            or finished.status in REJECTED_STATUSES \
            or finished.status == NUMERICAL_UNSTABLE
        if cache is not None and cacheable:
            error = cache.try_put(fingerprint, finished.to_dict())
            if error is not None:
                finished.cache_write_error = error
                self.cache_write_errors += 1
        return finished


def worker_main(conn, worker_id: int,
                options: Optional[Dict[str, Any]] = None) -> None:
    """Process entry point: serve jobs from the pipe until shutdown."""
    worker = ServiceWorker(worker_id, options)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break               # supervisor went away
            if not isinstance(message, dict):
                continue
            op = message.get("op")
            if op == "shutdown":
                break
            if op == "ping":
                conn.send({"op": "pong", "id": message.get("id"),
                           "stats": worker.stats()})
                continue
            if op == "job":
                conn.send(worker.run_job(message))
    finally:
        try:
            conn.close()
        except OSError:
            pass
