"""Wire protocol for the analysis service.

Requests and responses are plain JSON.  Parsing is *strict*: unknown
fields, wrong types and version-skewed payloads are rejected with a
:class:`ProtocolError` carrying a structured
:class:`~repro.validation.diagnostics.ValidationReport` — the acceptor
turns that into an HTTP 400 with the same stable-coded diagnostics the
preflight subsystem uses, never a stack trace.

Protocol error codes (stable, machine-matchable):

* ``protocol.malformed`` — the body is not a JSON object (or a
  required sub-object is missing/mistyped),
* ``protocol.unknown_field`` — a field the protocol does not define
  (components name each offender as ``field:<name>``),
* ``protocol.bad_field`` — a defined field with an invalid value,
* ``protocol.version_mismatch`` — the request pins a protocol or cache
  format version this server does not speak.

Request shape (``POST /v1/analyze`` | ``/v1/maximize``)::

    {
      "spec": { ... ScenarioSpec fields ... },
      "deadline_seconds": 30,          # optional per-request deadline
      "budget": {"max_conflicts": ...},  # optional SolverBudget limits
      "self_check": true,              # optional certified mode
      "use_cache": true,               # optional read-through toggle
      "protocol_version": 1,           # optional pin
      "cache_format": 5                # optional pin
    }

``POST /v1/sweep`` carries ``{"specs": [spec, ...], ...}`` with the
same shared options.  Successful responses wrap one scenario outcome::

    {"outcome": {...}, "served_by": 0, "attempts": 1,
     "protocol_version": 1}
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional

from repro.runner.spec import CACHE_FORMAT_VERSION, ScenarioSpec
from repro.validation.diagnostics import FATAL, ValidationReport

#: bump on incompatible wire-format changes.
PROTOCOL_VERSION = 1

#: stable protocol diagnostic codes.
MALFORMED = "protocol.malformed"
UNKNOWN_FIELD = "protocol.unknown_field"
BAD_FIELD = "protocol.bad_field"
VERSION_MISMATCH = "protocol.version_mismatch"

#: request fields shared by every analysis endpoint.
_OPTION_FIELDS = ("deadline_seconds", "budget", "self_check",
                  "use_cache", "protocol_version", "cache_format")

#: legal SolverBudget limit keys on the wire.
_BUDGET_FIELDS = ("wall_seconds", "max_conflicts", "max_decisions",
                  "max_pivots", "check_interval")

_SPEC_FIELDS = {f.name: f for f in dataclass_fields(ScenarioSpec)}


class ProtocolError(Exception):
    """A request the protocol refuses; carries the diagnostics."""

    def __init__(self, report: ValidationReport) -> None:
        summary = "; ".join(d.code for d in report.fatal) or "rejected"
        super().__init__(summary)
        self.report = report


@dataclass
class ServiceRequest:
    """One parsed, validated analysis request."""

    kind: str                       # "analyze" | "maximize"
    spec: ScenarioSpec
    deadline_seconds: Optional[float] = None
    budget: Optional[Dict[str, Any]] = None   # SolverBudget limits
    self_check: Optional[bool] = None
    use_cache: bool = True

    @property
    def label(self) -> str:
        return self.spec.label

    def job_payload(self) -> Dict[str, Any]:
        """The message a worker executes (JSON/pickle-clean)."""
        payload: Dict[str, Any] = {"spec": self.spec.to_dict(),
                                   "use_cache": self.use_cache}
        if self.budget is not None:
            payload["budget"] = dict(self.budget)
        if self.self_check is not None:
            payload["self_check"] = self.self_check
        return payload


def _report(subject: str) -> ValidationReport:
    return ValidationReport(subject=subject)


def _check_unknown(payload: Dict[str, Any], known, report,
                   where: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        report.add(
            UNKNOWN_FIELD, FATAL,
            f"unknown {where} field(s): {', '.join(unknown)}",
            [f"field:{name}" for name in unknown],
            hint="remove the field(s) or upgrade the server")


def _parse_spec(payload: Any, kind: str,
                report: ValidationReport) -> Optional[ScenarioSpec]:
    if not isinstance(payload, dict):
        report.add(MALFORMED, FATAL,
                   "request 'spec' must be a JSON object",
                   ["field:spec"])
        return None
    _check_unknown(payload, _SPEC_FIELDS, report, "spec")
    if not isinstance(payload.get("case"), str) or not payload["case"]:
        report.add(BAD_FIELD, FATAL,
                   "spec.case must be a non-empty string "
                   "(a bundled case name or a label for case_text)",
                   ["field:case"])
    expected_search = "maximize" if kind == "maximize" else "decision"
    declared = payload.get("search")
    if declared is not None and declared != expected_search:
        report.add(BAD_FIELD, FATAL,
                   f"spec.search {declared!r} conflicts with the "
                   f"/{kind} endpoint (expects {expected_search!r})",
                   ["field:search"],
                   hint=f"drop spec.search or post to the matching "
                        f"endpoint")
    if not report.ok:
        return None
    data = dict(payload)
    data["search"] = expected_search
    try:
        # build() re-validates analyzer/search/tolerance semantics and
        # derives a label when none is given.
        return ScenarioSpec.build(
            data.pop("case"),
            analyzer=data.pop("analyzer", "auto"),
            case_text=data.pop("case_text", None),
            attacker_seed=data.pop("attacker_seed", None),
            target=data.pop("target", None),
            with_state_infection=bool(
                data.pop("with_state_infection", False)),
            max_candidates=int(data.pop("max_candidates", 60)),
            state_samples=int(data.pop("state_samples", 24)),
            sample_seed=int(data.pop("sample_seed", 0)),
            search=data.pop("search"),
            tolerance=data.pop("tolerance", None),
            label=str(data.pop("label", "") or ""))
    except Exception as exc:
        report.add(BAD_FIELD, FATAL, f"invalid scenario spec: {exc}",
                   ["field:spec"])
        return None


def _parse_options(payload: Dict[str, Any],
                   report: ValidationReport) -> Dict[str, Any]:
    options: Dict[str, Any] = {}

    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            report.add(BAD_FIELD, FATAL,
                       "deadline_seconds must be a positive number",
                       ["field:deadline_seconds"])
        else:
            options["deadline_seconds"] = float(deadline)

    budget = payload.get("budget")
    if budget is not None:
        if not isinstance(budget, dict):
            report.add(BAD_FIELD, FATAL,
                       "budget must be an object of SolverBudget limits",
                       ["field:budget"])
        else:
            _check_unknown(budget, _BUDGET_FIELDS, report, "budget")
            bad = [k for k, v in budget.items()
                   if k in _BUDGET_FIELDS
                   and (not isinstance(v, (int, float))
                        or isinstance(v, bool) or v <= 0)]
            for name in bad:
                report.add(BAD_FIELD, FATAL,
                           f"budget.{name} must be a positive number",
                           [f"field:budget.{name}"])
            if report.ok:
                options["budget"] = dict(budget)

    self_check = payload.get("self_check")
    if self_check is not None:
        if not isinstance(self_check, bool):
            report.add(BAD_FIELD, FATAL, "self_check must be a boolean",
                       ["field:self_check"])
        else:
            options["self_check"] = self_check

    use_cache = payload.get("use_cache")
    if use_cache is not None:
        if not isinstance(use_cache, bool):
            report.add(BAD_FIELD, FATAL, "use_cache must be a boolean",
                       ["field:use_cache"])
        else:
            options["use_cache"] = use_cache

    version = payload.get("protocol_version")
    if version is not None and version != PROTOCOL_VERSION:
        report.add(VERSION_MISMATCH, FATAL,
                   f"request pins protocol version {version!r}; this "
                   f"server speaks {PROTOCOL_VERSION}",
                   ["field:protocol_version"])
    cache_format = payload.get("cache_format")
    if cache_format is not None and cache_format != CACHE_FORMAT_VERSION:
        report.add(VERSION_MISMATCH, FATAL,
                   f"request pins cache format {cache_format!r}; this "
                   f"server reads/writes format {CACHE_FORMAT_VERSION}",
                   ["field:cache_format"],
                   hint="clear the client's cache assumptions or "
                        "upgrade to a matching release")
    return options


def parse_request(payload: Any, kind: str) -> ServiceRequest:
    """Parse and strictly validate one analyze/maximize request.

    Raises :class:`ProtocolError` (structured diagnostics, stable
    codes) on any malformation; never lets a ``TypeError``/``KeyError``
    stack trace escape to the transport.
    """
    report = _report(f"/{kind} request")
    if not isinstance(payload, dict):
        report.add(MALFORMED, FATAL,
                   "request body must be a JSON object")
        raise ProtocolError(report)
    _check_unknown(payload, ("spec",) + _OPTION_FIELDS, report,
                   "request")
    options = _parse_options(payload, report)
    spec = None
    if "spec" not in payload:
        report.add(MALFORMED, FATAL, "request has no 'spec' object",
                   ["field:spec"])
    else:
        spec = _parse_spec(payload["spec"], kind, report)
    if not report.ok or spec is None:
        raise ProtocolError(report)
    return ServiceRequest(kind=kind, spec=spec, **options)


def parse_sweep_request(payload: Any) -> List[ServiceRequest]:
    """Parse a ``/v1/sweep`` request into per-cell requests."""
    report = _report("/sweep request")
    if not isinstance(payload, dict):
        report.add(MALFORMED, FATAL,
                   "request body must be a JSON object")
        raise ProtocolError(report)
    _check_unknown(payload, ("specs", "search") + _OPTION_FIELDS,
                   report, "request")
    options = _parse_options(payload, report)
    search = payload.get("search", "decision")
    if search not in ("decision", "maximize"):
        report.add(BAD_FIELD, FATAL,
                   f"search must be 'decision' or 'maximize', "
                   f"got {search!r}", ["field:search"])
    specs = payload.get("specs")
    if not isinstance(specs, list) or not specs:
        report.add(MALFORMED, FATAL,
                   "request 'specs' must be a non-empty array",
                   ["field:specs"])
        raise ProtocolError(report)
    if not report.ok:
        raise ProtocolError(report)
    kind = "maximize" if search == "maximize" else "analyze"
    requests = []
    for index, entry in enumerate(specs):
        cell = _report(f"/sweep request specs[{index}]")
        spec = _parse_spec(entry, kind, cell)
        if spec is None or not cell.ok:
            report.extend(cell)
            raise ProtocolError(report)
        requests.append(ServiceRequest(kind=kind, spec=spec, **options))
    return requests


def error_body(code: str, message: str,
               report: Optional[ValidationReport] = None,
               retry_after: Optional[float] = None) -> Dict[str, Any]:
    """The JSON body of a non-200 response."""
    body: Dict[str, Any] = {"error": code, "message": message,
                            "protocol_version": PROTOCOL_VERSION}
    if report is not None:
        body["diagnostics"] = report.to_dict()
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body
