"""The fault-tolerant analysis service (``python -m repro serve``).

A stdlib-only HTTP/JSON daemon around the warm
:class:`~repro.core.session.AnalysisSession` layer: an acceptor
(:mod:`repro.service.server`) routes analyze/maximize/sweep requests to
N supervised worker processes (:mod:`repro.service.supervisor`,
:mod:`repro.service.worker`), each owning a pool of warm sessions keyed
by :meth:`~repro.runner.spec.ScenarioSpec.encoding_group` fingerprints,
with the on-disk ``.repro-cache`` as the shared read-through layer.

Robustness is the product:

* the supervisor detects worker crashes and hangs (reply deadlines on
  top of per-request budgets) and restarts them with a fresh session
  pool, re-dispatching the in-flight request exactly once before
  failing it cleanly;
* per-request deadlines propagate into
  :meth:`~repro.smt.budget.SolverBudget.clamped` wall budgets, so a
  slow probe degrades to a ``budget_exhausted`` partial result inside
  the deadline instead of wedging the connection;
* the request queue is bounded — excess load is shed with 429/503 +
  ``Retry-After``, and :class:`~repro.service.client.ServiceClient`
  retries with exponential backoff and jitter;
* SIGTERM drains gracefully: stop accepting, finish (and cache-
  checkpoint) in-flight cells, shut workers down, exit 0.
"""

from repro.service.client import (
    ProtocolRejected,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceRequest,
    parse_request,
)
from repro.service.supervisor import (
    QueueFull,
    ServiceConfig,
    ServiceDraining,
    Supervisor,
)
from repro.service.server import ServiceServer
from repro.service.worker import SessionPool

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ProtocolRejected",
    "QueueFull",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceError",
    "ServiceRequest",
    "ServiceServer",
    "ServiceUnavailable",
    "SessionPool",
    "Supervisor",
    "parse_request",
]
