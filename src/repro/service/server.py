"""The HTTP acceptor in front of the supervisor.

A stdlib :class:`~http.server.ThreadingHTTPServer`: each connection
gets a thread that parses the request strictly (see
:mod:`repro.service.protocol`), submits it to the
:class:`~repro.service.supervisor.Supervisor`, and blocks on the job's
completion latch.  Failure surfaces map onto plain HTTP:

* malformed / version-skewed payloads → **400** with the structured
  ``diagnostics`` report (never a stack trace),
* bounded-queue shed → **429** + ``Retry-After``,
* draining, worker-failure after retry, service timeout → **503**
  (+ ``Retry-After`` where retrying is sensible),
* everything else — including ``budget_exhausted`` partial answers and
  ``invalid_input`` rejections — is a **200** whose outcome carries its
  own status, because the *service* worked even when the analysis
  degraded.

``GET /healthz`` (liveness + restart counts), ``GET /readyz``
(dispatchable right now?) and ``GET /stats`` (queue depth, warm-session
hit ratio, per-worker counters) feed orchestration and the soak tests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.service.protocol import (
    MALFORMED,
    PROTOCOL_VERSION,
    ProtocolError,
    error_body,
    parse_request,
    parse_sweep_request,
)
from repro.service.supervisor import (
    QueueFull,
    ServiceConfig,
    ServiceDraining,
    Supervisor,
)
from repro.testing.faults import ServiceFaultPlan

#: refuse request bodies past this size before reading them fully.
MAX_BODY_BYTES = 4 << 20

#: Retry-After hint when shedding because of drain/shutdown.
DRAIN_RETRY_AFTER = 2.0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/" + str(PROTOCOL_VERSION)

    # quiet by default; the CLI flips this on with --verbose.
    def log_message(self, format, *args):  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------

    @property
    def service(self) -> "ServiceServer":
        return self.server.service    # type: ignore[attr-defined]

    def _send_json(self, status: int, body: Dict[str, Any],
                   retry_after: Optional[float] = None) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After",
                             str(max(1, int(round(retry_after)))))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _HttpError(400, error_body(
                MALFORMED, "request has no body"))
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, error_body(
                MALFORMED,
                f"request body exceeds {MAX_BODY_BYTES} bytes"))
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, error_body(
                MALFORMED, f"request body is not valid JSON: {exc}"))

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        service = self.service
        if self.path == "/healthz":
            body = service.supervisor.healthz()
            self._send_json(200 if body["ok"] else 503, body)
        elif self.path == "/readyz":
            body = service.supervisor.readyz()
            self._send_json(200 if body["ready"] else 503, body)
        elif self.path == "/stats":
            body = service.supervisor.stats()
            body["http"] = service.http_stats()
            self._send_json(200, body)
        else:
            self._send_json(404, error_body(
                "not_found", f"no such endpoint: {self.path}"))

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        service = self.service
        route = {"/v1/analyze": "analyze", "/v1/maximize": "maximize",
                 "/v1/sweep": "sweep"}.get(self.path)
        if route is None:
            self._send_json(404, error_body(
                "not_found", f"no such endpoint: {self.path}"))
            return
        service.note_request()
        try:
            payload = self._read_body()
            if route == "sweep":
                status, body, retry_after = service.run_sweep(payload)
            else:
                status, body, retry_after = service.run_one(payload,
                                                            route)
        except _HttpError as exc:
            status, body, retry_after = exc.status, exc.body, None
        except Exception as exc:
            # Last-resort containment: the acceptor never leaks a
            # traceback onto the wire.
            status = 500
            body = error_body("internal_error",
                              f"{type(exc).__name__}: {exc}")
            retry_after = None
        if service.should_drop(body):
            # Injected connection fault: sever without responding so
            # clients exercise their retry path.
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
            return
        self._send_json(status, body, retry_after)


class _HttpError(Exception):
    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(body.get("message", ""))
        self.status = status
        self.body = body


class ServiceServer:
    """Owns the HTTP server + supervisor pair and their lifecycles."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config: Optional[ServiceConfig] = None,
                 verbose: bool = False) -> None:
        self.config = config or ServiceConfig()
        self.supervisor = Supervisor(self.config)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.allow_reuse_address = True
        self._httpd.service = self      # type: ignore[attr-defined]
        self._httpd.verbose = verbose   # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.requests = 0
        self.rejected = 0
        self.dropped = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        self.supervisor.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True, name="repro-acceptor")
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground mode for the CLI (blocks until shutdown())."""
        self.supervisor.start()
        self._httpd.serve_forever(poll_interval=0.1)

    def begin_drain(self) -> None:
        self.supervisor.begin_drain()

    def request_stop(self) -> None:
        """Signal-handler-safe stop: drain + async accept-loop halt.

        ``BaseServer.shutdown()`` deadlocks when called from the thread
        running ``serve_forever`` (which is where signal handlers run in
        foreground mode), so the halt is issued from a side thread.
        """
        self.begin_drain()
        threading.Thread(target=self._httpd.shutdown,
                         daemon=True).start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful stop: shed new work, finish in-flight, shut down."""
        self.begin_drain()
        drained = self.supervisor.drain(timeout)
        self.shutdown()
        return drained

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(2.0)
            self._serve_thread = None
        self.supervisor.stop()

    # -- request execution (called from handler threads) ---------------

    def note_request(self) -> None:
        with self._lock:
            self.requests += 1

    def http_stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"requests": self.requests,
                    "rejected": self.rejected,
                    "dropped": self.dropped}

    def _submit_and_wait(self, request) -> Tuple[int, Dict[str, Any],
                                                 Optional[float]]:
        supervisor = self.supervisor
        try:
            job = supervisor.submit(request)
        except QueueFull as exc:
            return 429, error_body(
                "queue_full", "request queue is at capacity",
                retry_after=exc.retry_after), exc.retry_after
        except ServiceDraining:
            return 503, error_body(
                "draining", "service is draining for shutdown",
                retry_after=DRAIN_RETRY_AFTER), DRAIN_RETRY_AFTER
        supervisor.wait(job)
        if job.failure is not None:
            code, message = job.failure
            retry = DRAIN_RETRY_AFTER if code == "worker_failed" \
                else None
            return 503, error_body(code, message,
                                   retry_after=retry), retry
        result = job.result or {}
        body = {"outcome": result.get("outcome"),
                "served_by": job.worker_id,
                "attempts": job.attempts,
                "protocol_version": PROTOCOL_VERSION}
        return 200, body, None

    def run_one(self, payload: Any, kind: str
                ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        try:
            request = parse_request(payload, kind)
        except ProtocolError as exc:
            with self._lock:
                self.rejected += 1
            return 400, error_body(
                "bad_request", str(exc), report=exc.report), None
        status, body, retry_after = self._submit_and_wait(request)
        if status == 200:
            body["label"] = request.label
        return status, body, retry_after

    def run_sweep(self, payload: Any
                  ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        try:
            requests = parse_sweep_request(payload)
        except ProtocolError as exc:
            with self._lock:
                self.rejected += 1
            return 400, error_body(
                "bad_request", str(exc), report=exc.report), None
        cells = []
        for request in requests:
            status, body, retry_after = self._submit_and_wait(request)
            if status != 200:
                # Shed/fail the whole sweep with the cell that broke it;
                # completed cells are already checkpointed in the cache,
                # so a client retry resumes warm.
                body["completed_cells"] = cells
                return status, body, retry_after
            cells.append({"label": request.label,
                          "outcome": body["outcome"],
                          "served_by": body["served_by"],
                          "attempts": body["attempts"]})
        return 200, {"cells": cells, "count": len(cells),
                     "protocol_version": PROTOCOL_VERSION}, None

    # -- chaos hooks ---------------------------------------------------

    def should_drop(self, body: Dict[str, Any]) -> bool:
        """Injected DROP_CONNECTION fault for the finished request."""
        plan_path = self.config.fault_plan
        try:
            plan = ServiceFaultPlan.load(plan_path)
        except (OSError, ValueError, KeyError):
            return False
        if plan is None:
            return False
        label = body.get("label") or ""
        if not label:
            outcome = body.get("outcome") or {}
            spec = outcome.get("spec") if isinstance(outcome, dict) \
                else {}
            label = (spec or {}).get("label") or ""
        if not label:
            return False
        if plan.should_drop_connection(label):
            with self._lock:
                self.dropped += 1
            return True
        return False
