"""The fabric coordinator: shards a grid and serves it to workers.

One :class:`Coordinator` owns a scenario grid end to end:

1. **Plan** — fingerprint every spec, resolve what needs no worker
   (preflight rejections, verified cache hits), and partition the rest
   into warm encoding-group units with the *same*
   :func:`repro.runner.engine.plan_units` the single-machine sweep
   uses, capped at ``unit_cells`` so lease durations stay bounded.
2. **Serve** — a stdlib ``ThreadingHTTPServer`` hands units out as
   leases (``/fabric/v1/lease``), extends them on heartbeats, and
   accepts commits exactly once (see :mod:`repro.fabric.queue`).
   Committed outcomes are structurally and semantically re-validated —
   the same :meth:`ScenarioOutcome.from_dict` + spec-equality gate the
   cache path uses — before they can enter the journal, and cacheable
   ones are checkpointed to the shared result cache write-behind.
3. **Survive** — every plan and commit is journaled durably before it
   is acknowledged, so a coordinator killed at any instant restarts
   with ``--journal`` pointing at the same file: the journal's commits
   plus the cache determine every finished cell, the remainder is
   re-planned, and the old journal generation is kept as ``<path>.N``
   for audit.  SIGTERM checkpoints and exits with the documented
   resumable code 5, exactly like ``repro sweep``.

Workers never see the journal or the queue — just the three HTTP
endpoints — so the fleet can span machines; the shared cache is an
optimisation, not a correctness requirement (commits carry the full
outcome payloads).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import traceback
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InputFormatError
from repro.fabric.journal import Journal, read_events
from repro.fabric.protocol import (
    FABRIC_PROTOCOL_VERSION,
    ProtocolError,
    error_body,
    parse_commit_request,
    parse_heartbeat_request,
    parse_lease_request,
)
from repro.fabric.queue import LeaseQueue
from repro.runner.cache import ResultCache
from repro.runner.engine import (
    _rejected_outcome,
    parse_failure_report,
    plan_units,
    verify_cached_outcome,
)
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import (
    CRASHED,
    ERROR,
    NUMERICAL_UNSTABLE,
    OK,
    REJECTED_STATUSES,
    ScenarioOutcome,
    SweepTrace,
)
from repro.service.protocol import MALFORMED
from repro.smt.certificates import self_check_default
from repro.testing.faults import FabricFaultPlan

__all__ = ["Coordinator", "CoordinatorConfig", "FabricError"]

#: refuse request bodies past this size before reading them fully.
MAX_BODY_BYTES = 32 << 20

#: lease-poll hint when nothing is leasable right now.
IDLE_RETRY_AFTER = 0.2


class FabricError(Exception):
    """A coordinator-level refusal (e.g. resuming a different grid)."""


@dataclass
class CoordinatorConfig:
    """Coordinator knobs (lease timing, durability, cache, faults)."""

    host: str = "127.0.0.1"
    port: int = 0
    journal_path: str = "fabric-journal.jsonl"
    #: seconds a lease lives without a heartbeat.
    lease_ttl: float = 15.0
    #: seconds a unit may be held before speculative re-dispatch.
    steal_after: float = 30.0
    #: lease expiries per unit before it is recorded as ``crashed``.
    retry_budget: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 10.0
    #: cap on cells per unit (bounds lease duration); None: group size.
    unit_cells: Optional[int] = 8
    #: encoding groups are split into at least this many pieces.
    chunks: int = 2
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: SolverBudget limits shipped to workers per scenario.
    budget_limits: Optional[Dict[str, Any]] = None
    self_check: Optional[bool] = None
    #: :class:`FabricFaultPlan` file for the chaos suite.
    fault_plan: Optional[str] = None
    poll_interval: float = 0.1


@dataclass
class _Plan:
    """Everything the planning pass resolves before serving."""

    grid: str
    fingerprints: List[str]
    outcomes: List[Optional[ScenarioOutcome]]
    units: List[List[int]]
    cache_hits: int = 0
    cache_rejected: int = 0
    journal_recovered: int = 0
    generation: int = 0
    resumed: bool = False


def grid_fingerprint(specs: Sequence[ScenarioSpec],
                     budget_limits: Optional[Dict[str, Any]],
                     self_check: Optional[bool]) -> str:
    """Deterministic identity of a grid run.

    Covers the ordered spec payloads plus the execution options that
    change outcomes (budget limits, certified mode) — a journal can
    only resume the exact run that wrote it.
    """
    digest = hashlib.sha256()
    payload = {"specs": [spec.to_dict() for spec in specs],
               "budget": budget_limits, "self_check": self_check}
    digest.update(json.dumps(payload, sort_keys=True,
                             separators=(",", ":")).encode())
    return digest.hexdigest()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-fabric/" + str(FABRIC_PROTOCOL_VERSION)

    def log_message(self, format, *args):  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def coordinator(self) -> "Coordinator":
        return self.server.coordinator    # type: ignore[attr-defined]

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _HttpError(400, error_body(
                MALFORMED, "request has no body"))
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, error_body(
                MALFORMED,
                f"request body exceeds {MAX_BODY_BYTES} bytes"))
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, error_body(
                MALFORMED, f"request body is not valid JSON: {exc}"))

    def do_GET(self) -> None:  # noqa: N802
        coordinator = self.coordinator
        if self.path == "/healthz":
            self._send_json(200, {"ok": True,
                                  "done": coordinator.queue.done})
        elif self.path == "/readyz":
            self._send_json(200, {"ready": True})
        elif self.path == "/fabric/v1/status":
            self._send_json(200, coordinator.status())
        else:
            self._send_json(404, error_body(
                "not_found", f"no such endpoint: {self.path}"))

    def do_POST(self) -> None:  # noqa: N802
        coordinator = self.coordinator
        routes = {"/fabric/v1/lease": coordinator.handle_lease,
                  "/fabric/v1/heartbeat": coordinator.handle_heartbeat,
                  "/fabric/v1/commit": coordinator.handle_commit}
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, error_body(
                "not_found", f"no such endpoint: {self.path}"))
            return
        try:
            payload = self._read_body()
            status, body = handler(payload)
        except _HttpError as exc:
            status, body = exc.status, exc.body
        except ProtocolError as exc:
            status = 400
            body = error_body("bad_request", str(exc),
                              report=exc.report)
        except Exception as exc:
            status = 500
            body = error_body("internal_error",
                              f"{type(exc).__name__}: {exc}")
        self._send_json(status, body)


class _HttpError(Exception):
    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(body.get("message", ""))
        self.status = status
        self.body = body


class Coordinator:
    """Owns the plan, the lease queue, the journal and the acceptor."""

    def __init__(self, specs: Sequence[ScenarioSpec],
                 config: Optional[CoordinatorConfig] = None,
                 verbose: bool = False) -> None:
        self.specs = list(specs)
        self.config = config or CoordinatorConfig()
        self.verbose = verbose
        self.cache = ResultCache(self.config.cache_dir) \
            if self.config.use_cache and self.config.cache_dir else None
        self.journal: Optional[Journal] = None
        self.queue: Optional[LeaseQueue] = None
        self.plan: Optional[_Plan] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._lease_requests = 0
        self._commits = 0
        self._duplicates = 0

    # -- planning ------------------------------------------------------

    def prepare(self) -> _Plan:
        """Resolve, recover, and partition; opens the journal."""
        config = self.config
        grid = grid_fingerprint(self.specs, config.budget_limits,
                                config.self_check)
        fingerprints: List[str] = []
        outcomes: List[Optional[ScenarioOutcome]] = \
            [None] * len(self.specs)
        for idx, spec in enumerate(self.specs):
            try:
                fingerprints.append(spec.fingerprint())
            except InputFormatError as exc:
                fingerprints.append("")
                outcomes[idx] = _rejected_outcome(
                    spec, "", parse_failure_report(spec.case, exc))
            except Exception as exc:
                fingerprints.append("")
                outcomes[idx] = ScenarioOutcome(
                    spec=spec, fingerprint="", status=ERROR,
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip())

        plan = _Plan(grid=grid, fingerprints=fingerprints,
                     outcomes=outcomes, units=[])
        journal_file = Path(config.journal_path)
        if journal_file.exists():
            self._recover(plan, journal_file)

        certify = self_check_default(config.self_check)
        for idx, fingerprint in enumerate(fingerprints):
            if plan.outcomes[idx] is not None:
                continue
            hit = self.cache.get(fingerprint) if self.cache else None
            if hit is None:
                continue
            try:
                outcome = ScenarioOutcome.from_dict(hit)
                verify_cached_outcome(outcome, self.specs[idx],
                                      require_certified=certify)
            except ValueError:
                plan.cache_rejected += 1
                continue
            outcome.cache_hit = True
            plan.outcomes[idx] = outcome
            plan.cache_hits += 1

        pending = [idx for idx in range(len(self.specs))
                   if plan.outcomes[idx] is None]
        plan.units = plan_units(self.specs, pending,
                                chunks=max(1, config.chunks),
                                max_cells=config.unit_cells)
        self._open_generation(plan, journal_file)
        self.plan = plan
        self.queue = LeaseQueue(
            plan.units, lease_ttl=config.lease_ttl,
            steal_after=config.steal_after,
            retry_budget=config.retry_budget,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap, journal=self.journal)
        return plan

    def _recover(self, plan: _Plan, journal_file: Path) -> None:
        """Fold a previous generation's journal into the plan."""
        events = read_events(journal_file)
        plan_event = next((e for e in events if e["event"] == "plan"),
                          None)
        if plan_event is None:
            # A journal with no plan event recorded nothing durable;
            # treat it as absent (it is rotated away regardless).
            plan.resumed = True
            return
        if plan_event.get("grid") != plan.grid:
            raise FabricError(
                f"journal {journal_file} belongs to a different grid "
                f"(or different budget/self-check options); refusing "
                f"to resume — pass a fresh --journal path or rerun the "
                f"original command line")
        plan.resumed = True
        plan.generation = int(plan_event.get("generation", 0)) + 1
        determined: Dict[int, Dict[str, Any]] = {}
        for key, payload in (plan_event.get("resolved") or {}).items():
            determined[int(key)] = payload
        units = plan_event.get("units") or []
        for event in events:
            if event["event"] != "commit":
                continue
            unit_id = event.get("unit")
            if not isinstance(unit_id, int) \
                    or not 0 <= unit_id < len(units):
                continue
            for idx, payload in zip(units[unit_id],
                                    event.get("outcomes") or []):
                determined[idx] = payload
        for idx, payload in determined.items():
            if not 0 <= idx < len(self.specs) \
                    or plan.outcomes[idx] is not None:
                continue
            try:
                outcome = ScenarioOutcome.from_dict(payload)
            except ValueError:
                continue
            if outcome.spec.to_dict() != self.specs[idx].to_dict():
                continue
            plan.outcomes[idx] = outcome
            plan.journal_recovered += 1

    def _open_generation(self, plan: _Plan,
                         journal_file: Path) -> None:
        """Rotate any previous journal aside and start a fresh one.

        The new generation's ``plan`` event carries every cell already
        determined (journal-recovered, cache-served, rejected), so each
        generation's journal is *self-contained*: a second kill only
        ever needs the newest file.
        """
        if journal_file.exists():
            suffix = 1
            while journal_file.with_name(
                    journal_file.name + f".{suffix}").exists():
                suffix += 1
            journal_file.rename(journal_file.with_name(
                journal_file.name + f".{suffix}"))
        self.journal = Journal(journal_file)
        resolved = {
            str(idx): outcome.to_dict()
            for idx, outcome in enumerate(plan.outcomes)
            if outcome is not None}
        self.journal.append({
            "event": "plan", "generation": plan.generation,
            "grid": plan.grid, "cells": len(self.specs),
            "units": [list(unit) for unit in plan.units],
            "resolved": resolved})

    # -- request handlers (called from acceptor threads) ---------------

    def handle_lease(self, payload: Any
                     ) -> Tuple[int, Dict[str, Any]]:
        worker = parse_lease_request(payload)
        with self._lock:
            self._lease_requests += 1
        grant = self.queue.lease(worker)
        if grant is None:
            return 200, {"unit": None, "done": self.queue.done,
                         "retry_after": IDLE_RETRY_AFTER,
                         "protocol_version": FABRIC_PROTOCOL_VERSION}
        config = self.config
        unit = {
            "unit_id": grant.unit_id,
            "attempt": grant.attempt,
            "speculative": grant.speculative,
            "deadline_seconds": grant.deadline_seconds,
            "specs": [self.specs[idx].to_dict()
                      for idx in grant.indices],
            "fingerprints": [self.plan.fingerprints[idx]
                             for idx in grant.indices],
        }
        if config.budget_limits:
            unit["budget"] = dict(config.budget_limits)
        if config.self_check is not None:
            unit["self_check"] = config.self_check
        return 200, {"unit": unit, "done": False,
                     "protocol_version": FABRIC_PROTOCOL_VERSION}

    def handle_heartbeat(self, payload: Any
                         ) -> Tuple[int, Dict[str, Any]]:
        worker, unit_id = parse_heartbeat_request(
            payload, len(self.queue.units))
        alive = self.queue.heartbeat(worker, unit_id)
        return 200, {"ok": True, "lease_valid": alive,
                     "protocol_version": FABRIC_PROTOCOL_VERSION}

    def handle_commit(self, payload: Any
                      ) -> Tuple[int, Dict[str, Any]]:
        worker, unit_id, payloads = parse_commit_request(
            payload, len(self.queue.units))
        indices = self.queue.units[unit_id].indices
        outcomes = self._validate_commit(unit_id, indices, payloads)
        verdict = self.queue.commit(worker, unit_id, payloads)
        if verdict == "duplicate":
            with self._lock:
                self._duplicates += 1
            return 200, {"accepted": True, "duplicate": True,
                         "protocol_version": FABRIC_PROTOCOL_VERSION}
        with self._lock:
            self._commits += 1
        self._checkpoint(indices, outcomes)
        self._maybe_die(outcomes)
        return 200, {"accepted": True, "duplicate": False,
                     "protocol_version": FABRIC_PROTOCOL_VERSION}

    def _validate_commit(self, unit_id: int, indices: Sequence[int],
                         payloads: List[Dict[str, Any]]
                         ) -> List[ScenarioOutcome]:
        """Reject a commit whose outcomes don't match the unit's cells."""
        from repro.validation.diagnostics import FATAL, ValidationReport
        report = ValidationReport(subject="/fabric/commit request")
        if len(payloads) != len(indices):
            report.add("protocol.bad_field", FATAL,
                       f"unit {unit_id} has {len(indices)} cell(s); "
                       f"commit carries {len(payloads)} outcome(s)",
                       ["field:outcomes"])
            raise ProtocolError(report)
        outcomes: List[ScenarioOutcome] = []
        for position, (idx, payload) in enumerate(zip(indices,
                                                      payloads)):
            try:
                outcome = ScenarioOutcome.from_dict(payload)
            except ValueError as exc:
                report.add("protocol.bad_field", FATAL,
                           f"outcomes[{position}] is malformed: {exc}",
                           [f"field:outcomes[{position}]"])
                raise ProtocolError(report)
            if outcome.spec.to_dict() != self.specs[idx].to_dict():
                report.add("protocol.bad_field", FATAL,
                           f"outcomes[{position}] is for a different "
                           f"scenario than the unit's cell",
                           [f"field:outcomes[{position}]"])
                raise ProtocolError(report)
            outcomes.append(outcome)
        return outcomes

    def _checkpoint(self, indices: Sequence[int],
                    outcomes: Sequence[ScenarioOutcome]) -> None:
        """Write-behind committed outcomes to the shared cache."""
        if self.cache is None:
            return
        for idx, outcome in zip(indices, outcomes):
            fingerprint = self.plan.fingerprints[idx]
            cacheable = outcome.status == OK \
                or outcome.status in REJECTED_STATUSES \
                or outcome.status == NUMERICAL_UNSTABLE
            if cacheable and fingerprint:
                self.cache.try_put(fingerprint, outcome.to_dict())

    def _maybe_die(self, outcomes: Sequence[ScenarioOutcome]) -> None:
        """Injected COORDINATOR_KILL: die right *after* the journaled
        commit — the resume path's worst case (commit durable, queue
        gone, workers orphaned)."""
        try:
            plan = FabricFaultPlan.load(self.config.fault_plan)
        except (OSError, ValueError, KeyError):
            return
        if plan is None:
            return
        labels = [outcome.spec.label for outcome in outcomes]
        if plan.should_kill_coordinator(labels):
            os._exit(5)

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "Coordinator":
        """Plan (or resume) and start serving leases in the background."""
        if self.plan is None:
            self.prepare()
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.allow_reuse_address = True
        self._httpd.coordinator = self   # type: ignore[attr-defined]
        self._httpd.verbose = self.verbose  # type: ignore[attr-defined]
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True, name="repro-fabric-acceptor")
        self._serve_thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every unit is committed or failed.

        Keeps sweeping lease deadlines while waiting, so crashed or
        partitioned workers are detected even when no healthy worker is
        polling for leases.  Returns False on timeout.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while not self.queue.done:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            self.queue.expire_overdue()
            time.sleep(self.config.poll_interval)
        return True

    def shutdown(self) -> None:
        """Stop serving and close the journal (idempotent, kill-safe)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(2.0)
            self._serve_thread = None
        if self.journal is not None:
            self.journal.close()

    # -- results -------------------------------------------------------

    def trace(self, wall_seconds: float, workers: int = 0) -> SweepTrace:
        """The finished (or interrupted) run as a ``SweepTrace``.

        Cells whose unit exhausted its retry budget are recorded as
        ``crashed`` with the unit's failure reason; cells still pending
        at interrupt time are simply absent (they resume next
        generation).
        """
        outcomes: List[Optional[ScenarioOutcome]] = \
            list(self.plan.outcomes)
        committed = self.queue.committed_outcomes()
        for idx, payload in committed.items():
            if outcomes[idx] is None:
                try:
                    outcomes[idx] = ScenarioOutcome.from_dict(payload)
                except ValueError:
                    continue
        for unit in self.queue.failed_units():
            for idx in unit.indices:
                if outcomes[idx] is None:
                    outcomes[idx] = ScenarioOutcome(
                        spec=self.specs[idx],
                        fingerprint=self.plan.fingerprints[idx],
                        status=CRASHED, attempts=unit.dispatches,
                        error=unit.failure or "unit failed")
        return SweepTrace(
            outcomes=[o for o in outcomes if o is not None],
            wall_seconds=wall_seconds,
            workers=workers, mode="fabric",
            cache_dir=str(self.cache.root) if self.cache else None,
            cache_rejected=self.plan.cache_rejected)

    def status(self) -> Dict[str, Any]:
        stats = self.queue.stats()
        with self._lock:
            stats.update({
                "lease_requests": self._lease_requests,
                "commits": self._commits,
                "duplicate_commits": self._duplicates,
            })
        stats.update({
            "grid": self.plan.grid,
            "generation": self.plan.generation,
            "resumed": self.plan.resumed,
            "cells_total": len(self.specs),
            "cells_resolved_at_plan": sum(
                1 for o in self.plan.outcomes if o is not None),
            "cache_hits": self.plan.cache_hits,
            "journal_recovered": self.plan.journal_recovered,
            "done": self.queue.done,
        })
        return stats
