"""A headless fabric worker: lease → compute → commit, forever.

``python -m repro worker --connect HOST:PORT`` runs this loop against a
coordinator.  Transport is the analysis service's
:class:`~repro.service.client.ServiceClient` (exponential backoff,
jitter, ``Retry-After``), so transient coordinator hiccups — a paused
process, a dropped connection — are retried; only *exhausted* retries
mean the coordinator is gone, and the worker then exits cleanly with
code 2 instead of spinning.

Per leased unit the worker:

1. serves any cell the shared result cache already has a verified
   answer for (read-through — pays off for re-dispatched units whose
   first copy checkpointed before dying),
2. runs the rest through the same warm
   :func:`~repro.runner.engine.execute_scenario_group` core the
   single-machine sweep uses (one encoding, incremental re-solves),
3. checkpoints cacheable outcomes to the shared cache *before*
   committing (write-behind: a coordinator killed between our cache
   write and our commit loses nothing — the resume pass read-throughs
   the cache), and
4. commits the unit's outcomes.  A ``duplicate`` acknowledgement means
   a speculative copy won the race — success, just not ours.

A background thread heartbeats each held lease at a third of its TTL.
The chaos suite injects faults via :class:`FabricFaultPlan`
(``REPRO_FABRIC_FAULTS``): crash, hang, straggle, partition
(heartbeats suppressed while the work continues) and lease-loss
(silent abandonment).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.fabric.protocol import FABRIC_PROTOCOL_VERSION
from repro.runner.cache import ResultCache
from repro.runner.engine import (
    execute_scenario_group,
    verify_cached_outcome,
)
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import NUMERICAL_UNSTABLE, OK, \
    REJECTED_STATUSES, ScenarioOutcome
from repro.service.client import ServiceClient, ServiceError, \
    ServiceUnavailable
from repro.smt.certificates import self_check_default
from repro.testing.faults import (
    CRASH_WORKER,
    HANG_WORKER,
    LEASE_LOSS,
    PARTITION,
    STRAGGLER,
    FabricFaultPlan,
)

__all__ = ["FabricWorker", "WorkerConfig",
           "EXIT_DONE", "EXIT_COORDINATOR_GONE"]

#: the grid is finished; nothing left to lease.
EXIT_DONE = 0
#: retries against the coordinator exhausted: it is gone.
EXIT_COORDINATOR_GONE = 2


@dataclass
class WorkerConfig:
    """Worker knobs."""

    worker_id: str = ""
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: ceiling on the heartbeat period (the grant's TTL/3 caps it too).
    heartbeat_interval: float = 5.0
    idle_sleep: float = 0.2
    #: :class:`FabricFaultPlan` file (chaos suite only).
    fault_plan: Optional[str] = None
    #: stop after this many leased units (tests; None: run to done).
    max_units: Optional[int] = None


class _Heartbeat:
    """Background lease keep-alive for one held unit."""

    def __init__(self, client: ServiceClient, worker_id: str,
                 unit_id: int, interval: float) -> None:
        self._client = client
        self._worker_id = worker_id
        self._unit_id = unit_id
        self._interval = interval
        self._stop = threading.Event()
        #: the PARTITION fault sets this: beats are silently skipped
        #: while the computation continues.
        self.suppressed = False
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"fabric-heartbeat-{unit_id}")

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self.suppressed:
                continue
            try:
                self._client.request(
                    "POST", "/fabric/v1/heartbeat",
                    {"worker": self._worker_id, "unit": self._unit_id,
                     "protocol_version": FABRIC_PROTOCOL_VERSION})
            except (ServiceError, OSError):
                # A missed beat is survivable (the lease has slack) and
                # a dead coordinator is detected by the main loop's
                # lease/commit calls; never crash the computation.
                pass


class FabricWorker:
    """The lease → compute → commit loop against one coordinator."""

    def __init__(self, base_url: str,
                 config: Optional[WorkerConfig] = None) -> None:
        self.config = config or WorkerConfig()
        if not self.config.worker_id:
            self.config.worker_id = \
                f"{socket.gethostname()}-{os.getpid()}"
        self.client = ServiceClient(base_url, retries=4,
                                    backoff_seconds=0.05,
                                    backoff_cap=1.0)
        #: separate low-retry client so a slow heartbeat can never
        #: block the unit's computation thread behind long backoffs.
        self.beat_client = ServiceClient(base_url, retries=0)
        self.cache = ResultCache(self.config.cache_dir) \
            if self.config.use_cache and self.config.cache_dir else None
        self.units_done = 0
        self.cells_done = 0
        self.duplicates = 0
        self.cache_hits = 0

    # -- the loop ------------------------------------------------------

    def run(self) -> int:
        """Work until the grid is done (0) or the coordinator dies (2)."""
        config = self.config
        while True:
            if config.max_units is not None \
                    and self.units_done >= config.max_units:
                return EXIT_DONE
            try:
                body = self.client.request(
                    "POST", "/fabric/v1/lease",
                    {"worker": config.worker_id,
                     "protocol_version": FABRIC_PROTOCOL_VERSION})
            except ServiceUnavailable:
                return EXIT_COORDINATOR_GONE
            except ServiceError:
                # 400/404: a coordinator speaking a different protocol
                # is as unusable as a dead one.
                return EXIT_COORDINATOR_GONE
            unit = body.get("unit")
            if unit is None:
                if body.get("done"):
                    return EXIT_DONE
                time.sleep(float(body.get("retry_after")
                                 or config.idle_sleep))
                continue
            try:
                self._work_unit(unit)
            except ServiceUnavailable:
                return EXIT_COORDINATOR_GONE
            self.units_done += 1

    def _work_unit(self, unit: Dict[str, Any]) -> None:
        config = self.config
        unit_id = int(unit["unit_id"])
        specs = [ScenarioSpec.from_dict(s) for s in unit["specs"]]
        fingerprints = [str(f) for f in unit["fingerprints"]]
        budget = unit.get("budget")
        self_check = unit.get("self_check")

        fault = None
        try:
            plan = FabricFaultPlan.load(config.fault_plan)
        except (OSError, ValueError, KeyError):
            plan = None
        if plan is not None:
            fired = plan.unit_fault([spec.label for spec in specs])
            if fired is not None:
                fault = fired[1]
        if fault is not None and fault.kind == CRASH_WORKER:
            os._exit(23)
        if fault is not None and fault.kind == LEASE_LOSS:
            # Silent abandonment: no heartbeat, no commit, no error —
            # recovery rides entirely on the coordinator's lease expiry.
            return
        if fault is not None and fault.kind == HANG_WORKER:
            # Hung before even a first heartbeat: the lease lapses,
            # then the unit resumes late (its commit should lose).
            time.sleep(fault.sleep_seconds)

        ttl = float(unit.get("deadline_seconds") or 15.0)
        beat = _Heartbeat(self.beat_client, config.worker_id, unit_id,
                          min(config.heartbeat_interval,
                              max(0.05, ttl / 3.0))).start()
        if fault is not None and fault.kind == PARTITION:
            beat.suppressed = True
        try:
            if fault is not None and fault.kind == STRAGGLER:
                # Heartbeats keep the lease alive while the unit sits
                # idle — only speculative re-dispatch can finish the
                # grid on time.
                time.sleep(fault.sleep_seconds)
            outcomes = self._execute(specs, fingerprints, budget,
                                     self_check)
        finally:
            beat.stop()
        self._write_behind(fingerprints, outcomes)
        body = self.client.request(
            "POST", "/fabric/v1/commit",
            {"worker": config.worker_id, "unit": unit_id,
             "outcomes": [outcome.to_dict() for outcome in outcomes],
             "protocol_version": FABRIC_PROTOCOL_VERSION})
        if body.get("duplicate"):
            self.duplicates += 1
        self.cells_done += len(outcomes)

    # -- execution -----------------------------------------------------

    def _execute(self, specs: List[ScenarioSpec],
                 fingerprints: List[str],
                 budget: Optional[Dict[str, Any]],
                 self_check: Optional[bool]
                 ) -> List[ScenarioOutcome]:
        """Cache read-through, then one warm group over the misses."""
        outcomes: List[Optional[ScenarioOutcome]] = [None] * len(specs)
        certify = self_check_default(self_check)
        if self.cache is not None:
            for position, (spec, fingerprint) in enumerate(
                    zip(specs, fingerprints)):
                hit = self.cache.get(fingerprint) if fingerprint \
                    else None
                if hit is None:
                    continue
                try:
                    outcome = ScenarioOutcome.from_dict(hit)
                    verify_cached_outcome(outcome, spec,
                                          require_certified=certify)
                except ValueError:
                    continue
                outcome.cache_hit = True
                outcomes[position] = outcome
                self.cache_hits += 1
        misses = [position for position in range(len(specs))
                  if outcomes[position] is None]
        if misses:
            computed = execute_scenario_group(
                [specs[position] for position in misses],
                [fingerprints[position] for position in misses],
                budget, self_check=self_check)
            for position, outcome in zip(misses, computed):
                outcomes[position] = outcome
        return [outcome for outcome in outcomes if outcome is not None]

    def _write_behind(self, fingerprints: List[str],
                      outcomes: List[ScenarioOutcome]) -> None:
        """Checkpoint cacheable outcomes *before* the commit call."""
        if self.cache is None:
            return
        for fingerprint, outcome in zip(fingerprints, outcomes):
            cacheable = outcome.status == OK \
                or outcome.status in REJECTED_STATUSES \
                or outcome.status == NUMERICAL_UNSTABLE
            if cacheable and fingerprint and not outcome.cache_hit:
                error = self.cache.try_put(fingerprint,
                                           outcome.to_dict())
                if error is not None:
                    outcome.cache_write_error = error

    def stats(self) -> Dict[str, Any]:
        return {"worker": self.config.worker_id,
                "units": self.units_done,
                "cells": self.cells_done,
                "duplicates": self.duplicates,
                "cache_hits": self.cache_hits}
