"""Wire protocol between fabric workers and the coordinator.

Same discipline as :mod:`repro.service.protocol` (strict parsing,
stable diagnostic codes, never a stack trace on the wire), with the
fabric's own three POST endpoints::

    POST /fabric/v1/lease      {"worker": "w1"}
    POST /fabric/v1/heartbeat  {"worker": "w1", "unit": 3}
    POST /fabric/v1/commit     {"worker": "w1", "unit": 3,
                                "outcomes": [{...}, ...]}

A lease response either carries a unit…::

    {"unit": {"unit_id": 3, "attempt": 1, "speculative": false,
              "deadline_seconds": 15.0,
              "specs": [...], "fingerprints": [...],
              "budget": {...}?, "self_check": true?},
     "done": false}

…or ``{"unit": null, "done": <bool>, "retry_after": <seconds>}`` —
``done: true`` tells the worker the whole grid is finished and it
should exit 0; ``done: false`` with no unit means "nothing leasable
right now, poll again after ``retry_after``".

Commit responses are ``{"accepted": true, "duplicate": <bool>}``; a
duplicate is a *success* from the worker's point of view (its work was
correct, someone else just got there first).  ``GET /fabric/v1/status``
exposes queue statistics, and ``GET /healthz`` / ``GET /readyz`` serve
the same orchestration probes the analysis service does (so
:meth:`repro.service.client.ServiceClient.wait_ready` works unchanged).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.service.protocol import (
    BAD_FIELD,
    MALFORMED,
    VERSION_MISMATCH,
    ProtocolError,
    _check_unknown,
    error_body,
)
from repro.validation.diagnostics import FATAL, ValidationReport

__all__ = ["FABRIC_PROTOCOL_VERSION", "parse_commit_request",
           "parse_heartbeat_request", "parse_lease_request",
           "error_body", "ProtocolError"]

#: bump on incompatible fabric wire-format changes.
FABRIC_PROTOCOL_VERSION = 1


def _base(payload: Any, endpoint: str,
          known: Tuple[str, ...]) -> Tuple[Dict[str, Any],
                                           ValidationReport]:
    report = ValidationReport(subject=f"/fabric/{endpoint} request")
    if not isinstance(payload, dict):
        report.add(MALFORMED, FATAL,
                   "request body must be a JSON object")
        raise ProtocolError(report)
    _check_unknown(payload, known + ("protocol_version",), report,
                   "request")
    version = payload.get("protocol_version")
    if version is not None and version != FABRIC_PROTOCOL_VERSION:
        report.add(VERSION_MISMATCH, FATAL,
                   f"request pins fabric protocol {version!r}; this "
                   f"coordinator speaks {FABRIC_PROTOCOL_VERSION}",
                   ["field:protocol_version"])
    worker = payload.get("worker")
    if not isinstance(worker, str) or not worker:
        report.add(BAD_FIELD, FATAL,
                   "worker must be a non-empty string id",
                   ["field:worker"])
    return payload, report


def _unit_id(payload: Dict[str, Any], report: ValidationReport,
             unit_count: int) -> int:
    unit = payload.get("unit")
    if not isinstance(unit, int) or isinstance(unit, bool) \
            or not 0 <= unit < unit_count:
        report.add(BAD_FIELD, FATAL,
                   f"unit must be an integer in [0, {unit_count})",
                   ["field:unit"])
        return -1
    return unit


def parse_lease_request(payload: Any) -> str:
    """Returns the validated worker id."""
    payload, report = _base(payload, "lease", ("worker",))
    if not report.ok:
        raise ProtocolError(report)
    return payload["worker"]


def parse_heartbeat_request(payload: Any,
                            unit_count: int) -> Tuple[str, int]:
    """Returns the validated ``(worker, unit_id)`` pair."""
    payload, report = _base(payload, "heartbeat", ("worker", "unit"))
    unit = _unit_id(payload, report, unit_count)
    if not report.ok:
        raise ProtocolError(report)
    return payload["worker"], unit


def parse_commit_request(payload: Any, unit_count: int
                         ) -> Tuple[str, int, List[Dict[str, Any]]]:
    """Returns the validated ``(worker, unit_id, outcomes)`` triple.

    Outcome payloads are only shape-checked here (a list of objects);
    the coordinator re-validates each through
    :meth:`ScenarioOutcome.from_dict` before trusting it, exactly as it
    does for cache entries.
    """
    payload, report = _base(payload, "commit",
                            ("worker", "unit", "outcomes"))
    unit = _unit_id(payload, report, unit_count)
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, list) or not outcomes \
            or not all(isinstance(o, dict) for o in outcomes):
        report.add(BAD_FIELD, FATAL,
                   "outcomes must be a non-empty array of outcome "
                   "objects", ["field:outcomes"])
    if not report.ok:
        raise ProtocolError(report)
    return payload["worker"], unit, list(outcomes)
