"""Distributed sweep fabric: durable queue, leased workers, recovery.

Scales the single-machine :class:`~repro.runner.engine.SweepEngine` out
to a fleet: a :class:`~repro.fabric.coordinator.Coordinator`
(``python -m repro coordinate``) shards a scenario grid into warm
encoding-group units and serves them over HTTP/JSON to headless
:class:`~repro.fabric.worker.FabricWorker` processes
(``python -m repro worker --connect HOST:PORT``).

The robustness contract, held under ``tests/chaos``:

* units are *leases with heartbeats* — crashed, hung or partitioned
  workers lose them after a deadline and the unit is re-dispatched
  with exponential backoff under a per-unit retry budget;
* stragglers trigger *speculative re-dispatch* (work-stealing),
  first-commit-wins;
* execution is at-least-once but commit is *exactly-once*, idempotent
  through deterministic scenario fingerprints and the shared
  ``.repro-cache`` as a read-through/write-behind layer;
* the coordinator journals every plan and commit durably
  (:mod:`repro.fabric.journal`), so a killed coordinator resumes the
  whole fleet from journal + cache, and workers detect a dead
  coordinator and exit cleanly (code 2) instead of spinning.
"""

from repro.fabric.coordinator import (
    Coordinator,
    CoordinatorConfig,
    FabricError,
    grid_fingerprint,
)
from repro.fabric.journal import Journal, read_events
from repro.fabric.protocol import FABRIC_PROTOCOL_VERSION
from repro.fabric.queue import (
    COMMITTED,
    FAILED,
    LEASED,
    PENDING,
    LeaseGrant,
    LeaseQueue,
    WorkUnit,
)
from repro.fabric.worker import (
    EXIT_COORDINATOR_GONE,
    EXIT_DONE,
    FabricWorker,
    WorkerConfig,
)

__all__ = [
    "COMMITTED",
    "Coordinator",
    "CoordinatorConfig",
    "EXIT_COORDINATOR_GONE",
    "EXIT_DONE",
    "FABRIC_PROTOCOL_VERSION",
    "FAILED",
    "FabricError",
    "FabricWorker",
    "Journal",
    "LEASED",
    "LeaseGrant",
    "LeaseQueue",
    "PENDING",
    "WorkUnit",
    "WorkerConfig",
    "grid_fingerprint",
    "read_events",
]
