"""Append-only on-disk journal for the sweep fabric's coordinator.

One JSON object per line, flushed and fsync'd per append, so every
event the coordinator acts on is durable *before* the action's effects
become externally visible (a lease is journaled before the unit is
handed out; a commit is journaled before it is acknowledged).  A
coordinator killed at any instant — even mid-write — can therefore be
restarted from the journal alone: :func:`read_events` replays every
complete line and silently drops a torn trailing one (the only line
that can ever be incomplete, by the append-only discipline).

Event kinds (the coordinator's vocabulary, recorded for reference):

* ``plan`` — the full grid: spec payloads, fingerprints, the unit
  partition, and every cell already resolved at plan time (cache hits,
  preflight rejections).  Always the first event of a generation.
* ``lease`` / ``expire`` / ``steal`` — lease lifecycle per unit.
* ``commit`` — a unit's outcome payloads, exactly once per unit.
* ``duplicate`` — a late commit for an already-committed unit,
  acknowledged and discarded (first-commit-wins).
* ``fail`` — a unit whose retry budget is exhausted.

Only ``plan`` and ``commit`` carry recovery state; the lifecycle events
make the journal a readable audit log of what the fleet did (the chaos
suite asserts on them).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["Journal", "read_events"]


class Journal:
    """A durable append-only JSONL event log."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, event: Dict[str, Any]) -> None:
        """Durably append one event (flush + fsync before returning)."""
        line = json.dumps(event, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path, kinds: Optional[tuple] = None
                ) -> List[Dict[str, Any]]:
    """Replay a journal's complete events, oldest first.

    A torn trailing line (the coordinator died mid-append) is dropped;
    a torn or non-object line *before* the last one means the file is
    not an append-only journal and raises :class:`ValueError` rather
    than silently resuming from corrupt state.  ``kinds`` filters by
    the ``event`` field when given.
    """
    target = Path(path)
    if not target.exists():
        return []
    raw = target.read_text(encoding="utf-8")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(lines):
        try:
            event = json.loads(line)
            if not isinstance(event, dict) or "event" not in event:
                raise ValueError("journal line is not an event object")
        except (json.JSONDecodeError, ValueError) as exc:
            if number == len(lines) - 1:
                break       # torn trailing write: the only legal tear
            raise ValueError(
                f"{target}: corrupt journal line {number + 1}: "
                f"{exc}") from exc
        if kinds is None or event.get("event") in kinds:
            events.append(event)
    return events
