"""The coordinator's durable lease queue.

A :class:`LeaseQueue` owns the fabric's unit state machine::

    pending ──lease──▶ leased ──commit──▶ committed
       ▲                 │
       └──── expiry ─────┘──(budget exhausted)──▶ failed

and enforces the robustness contract the fabric is built around:

* **Leases with heartbeats** — a granted unit carries a deadline;
  heartbeats push it forward.  A worker that crashes, hangs or
  partitions stops heartbeating, the deadline passes, and the unit
  returns to ``pending`` with exponential backoff.  Expiries (not lease
  grants) count against the per-unit retry budget, so a healthy fleet
  re-leasing work after coordinator restarts is never penalised.
* **Speculative re-dispatch (work-stealing)** — when no pending unit
  remains, a unit whose oldest lease has been held past ``steal_after``
  can be leased a *second* time to a different worker.  Whichever copy
  commits first wins.
* **Exactly-once commit** — the first commit for a unit is accepted and
  journaled (even from an expired lease: execution is deterministic, so
  a partitioned worker's late answer is as good as anyone's); every
  later commit is acknowledged as a duplicate and discarded.  A commit
  even revives a ``failed`` unit — giving up was a scheduling decision,
  not a verdict about the work.

Every transition is journaled *before* it takes effect externally, so
the queue's state is always reconstructible (see
:mod:`repro.fabric.journal`).  All public methods are thread-safe; the
coordinator's HTTP handler threads call them directly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.fabric.journal import Journal

__all__ = ["LeaseGrant", "LeaseQueue", "WorkUnit",
           "PENDING", "LEASED", "COMMITTED", "FAILED"]

#: unit states.
PENDING = "pending"
LEASED = "leased"
COMMITTED = "committed"
FAILED = "failed"


@dataclass
class _Lease:
    worker: str
    attempt: int
    granted: float
    deadline: float
    speculative: bool = False


@dataclass
class WorkUnit:
    """One leased execution unit (a warm encoding-group slice)."""

    unit_id: int
    indices: List[int]
    state: str = PENDING
    leases: List[_Lease] = field(default_factory=list)
    #: times all leases on this unit lapsed (counts against the budget).
    expiries: int = 0
    #: lease grants handed out, ever (audit only).
    dispatches: int = 0
    backoff_until: float = 0.0
    outcomes: Optional[List[Dict[str, Any]]] = None
    committed_by: Optional[str] = None
    failure: Optional[str] = None


@dataclass(frozen=True)
class LeaseGrant:
    """What a worker receives for one lease request."""

    unit_id: int
    indices: List[int]
    attempt: int
    speculative: bool
    deadline_seconds: float


class LeaseQueue:
    """Thread-safe lease/commit state machine over planned units."""

    def __init__(self, units: Sequence[Sequence[int]],
                 lease_ttl: float = 15.0,
                 steal_after: float = 30.0,
                 retry_budget: int = 3,
                 backoff_base: float = 0.25,
                 backoff_cap: float = 10.0,
                 journal: Optional[Journal] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.units = [WorkUnit(unit_id=i, indices=list(unit))
                      for i, unit in enumerate(units)]
        self.lease_ttl = lease_ttl
        self.steal_after = steal_after
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.journal = journal
        self.clock = clock
        self._lock = threading.Lock()

    # -- journal plumbing ----------------------------------------------

    def _record(self, event: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event)

    # -- lease side ----------------------------------------------------

    def lease(self, worker: str) -> Optional[LeaseGrant]:
        """Grant the next unit to *worker*, or None when nothing fits.

        Preference order: the first pending unit whose backoff has
        elapsed; failing that, the longest-held singly-leased unit past
        the steal threshold (speculative re-dispatch) — never one of
        *worker*'s own leases, and never a third copy.
        """
        with self._lock:
            now = self.clock()
            self._expire_overdue(now)
            for unit in self.units:
                if unit.state == PENDING and unit.backoff_until <= now:
                    return self._grant(unit, worker, now,
                                       speculative=False)
            candidate: Optional[WorkUnit] = None
            for unit in self.units:
                if unit.state != LEASED or len(unit.leases) != 1:
                    continue
                lease = unit.leases[0]
                if lease.worker == worker:
                    continue
                if now - lease.granted < self.steal_after:
                    continue
                if candidate is None \
                        or lease.granted < candidate.leases[0].granted:
                    candidate = unit
            if candidate is not None:
                return self._grant(candidate, worker, now,
                                   speculative=True)
            return None

    def _grant(self, unit: WorkUnit, worker: str, now: float,
               speculative: bool) -> LeaseGrant:
        unit.dispatches += 1
        lease = _Lease(worker=worker, attempt=unit.dispatches,
                       granted=now, deadline=now + self.lease_ttl,
                       speculative=speculative)
        self._record({"event": "steal" if speculative else "lease",
                      "unit": unit.unit_id, "worker": worker,
                      "attempt": unit.dispatches})
        unit.state = LEASED
        unit.leases.append(lease)
        return LeaseGrant(unit_id=unit.unit_id,
                          indices=list(unit.indices),
                          attempt=unit.dispatches,
                          speculative=speculative,
                          deadline_seconds=self.lease_ttl)

    def heartbeat(self, worker: str, unit_id: int) -> bool:
        """Extend *worker*'s lease on the unit; False if it is gone."""
        with self._lock:
            now = self.clock()
            self._expire_overdue(now)
            unit = self._unit(unit_id)
            if unit is None or unit.state != LEASED:
                return False
            for lease in unit.leases:
                if lease.worker == worker:
                    lease.deadline = now + self.lease_ttl
                    return True
            return False

    # -- commit side ---------------------------------------------------

    def commit(self, worker: str, unit_id: int,
               outcomes: List[Dict[str, Any]]) -> str:
        """First-commit-wins: ``"committed"`` or ``"duplicate"``.

        Accepted regardless of lease validity — the work is
        deterministic, so a late answer from an expired or partitioned
        lease is exactly as correct as the speculative copy's.  The
        commit is journaled (with its full outcome payloads) before it
        is acknowledged, so an acknowledged commit is never lost.
        """
        with self._lock:
            unit = self._unit(unit_id)
            if unit is None:
                raise KeyError(f"no such unit: {unit_id}")
            if len(outcomes) != len(unit.indices):
                raise ValueError(
                    f"unit {unit_id} commit carries {len(outcomes)} "
                    f"outcome(s) for {len(unit.indices)} cell(s)")
            if unit.state == COMMITTED:
                self._record({"event": "duplicate", "unit": unit_id,
                              "worker": worker})
                return "duplicate"
            self._record({"event": "commit", "unit": unit_id,
                          "worker": worker, "outcomes": outcomes})
            unit.state = COMMITTED
            unit.outcomes = list(outcomes)
            unit.committed_by = worker
            unit.failure = None
            unit.leases = []
            return "committed"

    # -- expiry --------------------------------------------------------

    def expire_overdue(self) -> List[int]:
        """Drop lapsed leases; returns unit ids whose last lease fell."""
        with self._lock:
            return self._expire_overdue(self.clock())

    def _expire_overdue(self, now: float) -> List[int]:
        expired: List[int] = []
        for unit in self.units:
            if unit.state != LEASED:
                continue
            live = [l for l in unit.leases if l.deadline > now]
            if len(live) == len(unit.leases):
                continue
            unit.leases = live
            if live:
                # The other copy (primary or speculative) is still
                # heartbeating — the unit is not lost, so its budget
                # is untouched.
                continue
            unit.expiries += 1
            expired.append(unit.unit_id)
            self._record({"event": "expire", "unit": unit.unit_id,
                          "expiries": unit.expiries})
            if unit.expiries > self.retry_budget:
                unit.state = FAILED
                unit.failure = (f"retry budget exhausted after "
                                f"{unit.expiries} lease expiries")
                self._record({"event": "fail", "unit": unit.unit_id,
                              "reason": unit.failure})
            else:
                unit.state = PENDING
                unit.backoff_until = now + min(
                    self.backoff_cap,
                    self.backoff_base * (2 ** (unit.expiries - 1)))
        return expired

    # -- queries -------------------------------------------------------

    def _unit(self, unit_id: int) -> Optional[WorkUnit]:
        if 0 <= unit_id < len(self.units):
            return self.units[unit_id]
        return None

    @property
    def done(self) -> bool:
        with self._lock:
            return all(unit.state in (COMMITTED, FAILED)
                       for unit in self.units)

    def committed_outcomes(self) -> Dict[int, Dict[str, Any]]:
        """Cell index → outcome payload, over every committed unit."""
        with self._lock:
            results: Dict[int, Dict[str, Any]] = {}
            for unit in self.units:
                if unit.state == COMMITTED and unit.outcomes:
                    for idx, outcome in zip(unit.indices, unit.outcomes):
                        results[idx] = outcome
            return results

    def failed_units(self) -> List[WorkUnit]:
        with self._lock:
            return [unit for unit in self.units if unit.state == FAILED]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counts = {PENDING: 0, LEASED: 0, COMMITTED: 0, FAILED: 0}
            for unit in self.units:
                counts[unit.state] += 1
            return {
                "units": len(self.units),
                "cells": sum(len(u.indices) for u in self.units),
                "pending": counts[PENDING],
                "leased": counts[LEASED],
                "committed": counts[COMMITTED],
                "failed": counts[FAILED],
                "dispatches": sum(u.dispatches for u in self.units),
                "expiries": sum(u.expiries for u in self.units),
            }
