"""Defense planning: minimal countermeasure sets that kill an attack.

The paper positions the framework as a tool for operators to
"preemptively analyze and explore potential threats"; arXiv:1401.3274
frames the defender's half of that loop — find a *minimal* set of
protections under which no stealthy attack reaches the impact target.
:class:`DefensePlanner` runs that search using the repro analyzers'
UNSAT answers as kill-confirmation, reusing one warm analysis session
per distinct candidate case.
"""

from repro.defense.planner import (
    Countermeasure,
    DefensePlan,
    DefensePlanner,
    SecureLineStatus,
    SecureMeasurement,
    TightenBudgets,
    default_candidates,
    with_budgets,
    with_secured_line,
    with_secured_measurement,
)

__all__ = [
    "Countermeasure",
    "DefensePlan",
    "DefensePlanner",
    "SecureLineStatus",
    "SecureMeasurement",
    "TightenBudgets",
    "default_candidates",
    "with_budgets",
    "with_secured_line",
    "with_secured_measurement",
]
