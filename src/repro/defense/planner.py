"""Greedy-minimal countermeasure planning over warm analysis sessions.

A *countermeasure* is a case transformation that removes attacker
capability: securing a line's status channel (its exclusion can no
longer be spoofed), integrity-protecting a measurement (it can no
longer be altered), or tightening the assumed attacker resource
budgets.  A countermeasure *kills* the attack when the analyzer proves
the defended case unsatisfiable at the impact target — only a
definitive (``status="complete"``) UNSAT counts as kill-confirmation;
budget-exhausted or certificate-error probes are inconclusive and never
credited to the defender.

Every case transformation goes through :func:`dataclasses.replace`, so
*all* fields — including ``reference_bus`` and anything added later —
survive the rebuild.  (The original ``examples/defense_planning.py``
hand-copied the field list and silently reset a non-default slack bus
back to bus 1; that bug is why this module exists as the single
blessed rebuild path.)

Probe economics: :class:`DefensePlanner` keeps one analyzer per
distinct defended case (keyed by the case's serialized text plus the
analyzer kind), so re-probing the same variant — the baseline check,
the full-set check, and every greedy elimination step that lands on an
already-seen subset — reuses the warm session instead of re-encoding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.fast import FastImpactAnalyzer
from repro.core.framework import ImpactAnalyzer
from repro.core.results import ImpactReport
from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition, write_case
from repro.runner.spec import AUTO_SMT_MAX_BUSES
from repro.smt.budget import SolverBudget
from repro.smt.rational import to_fraction

# ----------------------------------------------------------------------
# Case transformations (the blessed rebuild path)
# ----------------------------------------------------------------------


def with_secured_line(case: CaseDefinition, line: int) -> CaseDefinition:
    """The case with ``line``'s status channel integrity-protected."""
    specs = [replace(s, status_secured=True) if s.index == line else s
             for s in case.line_specs]
    return replace(case, line_specs=specs,
                   name=f"{case.name}+secure-line-{line}")


def with_secured_measurement(case: CaseDefinition,
                             index: int) -> CaseDefinition:
    """The case with measurement ``index`` integrity-protected."""
    specs = [replace(m, secured=True) if m.index == index else m
             for m in case.measurement_specs]
    return replace(case, measurement_specs=specs,
                   name=f"{case.name}+secure-m{index}")


def with_budgets(case: CaseDefinition, measurements: int,
                 buses: int) -> CaseDefinition:
    """The case with the attacker's resource budgets tightened."""
    return replace(case, resource_measurements=measurements,
                   resource_buses=buses,
                   name=f"{case.name}+budget-{measurements}-{buses}")


# ----------------------------------------------------------------------
# Countermeasures
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Countermeasure:
    """One deployable protection; ``apply`` yields the defended case."""

    def apply(self, case: CaseDefinition) -> CaseDefinition:
        raise NotImplementedError

    @property
    def label(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SecureLineStatus(Countermeasure):
    line: int

    def apply(self, case: CaseDefinition) -> CaseDefinition:
        return with_secured_line(case, self.line)

    @property
    def label(self) -> str:
        return f"secure-line-{self.line}"


@dataclass(frozen=True)
class SecureMeasurement(Countermeasure):
    index: int

    def apply(self, case: CaseDefinition) -> CaseDefinition:
        return with_secured_measurement(case, self.index)

    @property
    def label(self) -> str:
        return f"secure-m{self.index}"


@dataclass(frozen=True)
class TightenBudgets(Countermeasure):
    measurements: int
    buses: int

    def apply(self, case: CaseDefinition) -> CaseDefinition:
        return with_budgets(case, self.measurements, self.buses)

    @property
    def label(self) -> str:
        return f"budget-{self.measurements}-{self.buses}"


def default_candidates(case: CaseDefinition) -> List[Countermeasure]:
    """Everything the operator could secure on this case.

    One countermeasure per attacker-reachable channel: each line whose
    status is alterable and not yet secured, and each taken measurement
    that is alterable and not yet secured.  (Budget cuts model
    *assumptions* about the attacker rather than deployable protections,
    so they are opt-in, not defaults.)
    """
    candidates: List[Countermeasure] = []
    for spec in case.line_specs:
        if spec.status_alterable and not spec.status_secured:
            candidates.append(SecureLineStatus(spec.index))
    for m in case.measurement_specs:
        if m.taken and m.alterable and not m.secured:
            candidates.append(SecureMeasurement(m.index))
    return candidates


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------


@dataclass
class DefensePlan:
    """Outcome of a planning run.

    ``status`` is ``"already_secure"`` (the undefended case admits no
    attack), ``"blocked"`` (``selected`` is a 1-minimal countermeasure
    set killing the attack: dropping any single member revives it),
    ``"unblockable"`` (even all candidates together leave the attack
    satisfiable), or ``"inconclusive"`` (a probe ended without a
    definitive verdict — its status is in ``probes``).
    """

    status: str
    target_increase_percent: Fraction
    analyzer: str
    selected: Tuple[Countermeasure, ...] = ()
    #: one entry per analyzer probe, in execution order.
    probes: List[Dict[str, Any]] = field(default_factory=list)
    sessions_built: int = 0
    sessions_reused: int = 0
    elapsed_seconds: float = 0.0
    #: the report of the probe that confirmed the final verdict.
    report: Optional[ImpactReport] = None

    @property
    def blocked(self) -> bool:
        return self.status in ("already_secure", "blocked")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "target_increase_percent": str(self.target_increase_percent),
            "analyzer": self.analyzer,
            "selected": [c.label for c in self.selected],
            "probes": list(self.probes),
            "sessions_built": self.sessions_built,
            "sessions_reused": self.sessions_reused,
            "elapsed_seconds": self.elapsed_seconds,
        }


class DefensePlanner:
    """Finds a 1-minimal countermeasure set that kills the attack.

    The search is the classic deletion-based minimization: confirm the
    full candidate set blocks the attack, then walk the set once,
    tentatively dropping each member and keeping the drop whenever the
    remainder still blocks.  Every kept member is *necessary* relative
    to the final set, so the result is 1-minimal (though not guaranteed
    globally minimum — that would need the full power-set search).
    """

    def __init__(self, case: CaseDefinition, target=None,
                 analyzer: str = "auto",
                 budget: Optional[SolverBudget] = None,
                 self_check: Optional[bool] = None,
                 incremental: bool = True,
                 **query_attrs) -> None:
        self.case = case
        self.target = to_fraction(
            target if target is not None else case.min_increase_percent)
        if analyzer == "auto":
            analyzer = "smt" if case.num_buses <= AUTO_SMT_MAX_BUSES \
                else "fast"
        if analyzer not in ("smt", "fast"):
            raise ModelError(f"unknown analyzer kind: {analyzer!r}")
        self.analyzer = analyzer
        self.budget = budget
        self.self_check = self_check
        self.incremental = incremental
        self.query_attrs = dict(query_attrs)
        #: warm analyzers keyed by (case text, analyzer kind).
        self._pool: Dict[Tuple[str, str], Any] = {}
        self.sessions_built = 0
        self.sessions_reused = 0

    # -- probing -------------------------------------------------------

    def _analyzer_for(self, case: CaseDefinition):
        key = (write_case(case), self.analyzer)
        analyzer = self._pool.get(key)
        if analyzer is None:
            if self.analyzer == "smt":
                analyzer = ImpactAnalyzer(case,
                                          incremental=self.incremental)
            else:
                analyzer = FastImpactAnalyzer(case)
            self._pool[key] = analyzer
            self.sessions_built += 1
        else:
            self.sessions_reused += 1
        return analyzer

    def probe(self, case: CaseDefinition) -> ImpactReport:
        """One decision query on a (possibly defended) case variant.

        Each probe gets a *fresh* budget built from the planner's
        limits, so a long plan never starves its later probes.
        """
        attrs = dict(self.query_attrs)
        if self.budget is not None:
            attrs["budget"] = SolverBudget.from_dict(self.budget.to_dict())
        if self.self_check is not None:
            attrs["self_check"] = self.self_check
        return self._analyzer_for(case).solve_at(self.target, **attrs)

    def attack_survives(self, case: CaseDefinition) -> Optional[bool]:
        """True/False on a definitive verdict, None when inconclusive."""
        report = self.probe(case)
        if report.status != "complete":
            return None
        return report.satisfiable

    # -- planning ------------------------------------------------------

    def plan(self,
             candidates: Optional[Sequence[Countermeasure]] = None
             ) -> DefensePlan:
        started = time.perf_counter()
        if candidates is None:
            candidates = default_candidates(self.case)
        candidates = list(candidates)
        probes: List[Dict[str, Any]] = []

        def checked(label: str, case: CaseDefinition
                    ) -> Tuple[Optional[bool], ImpactReport]:
            report = self.probe(case)
            probes.append({
                "defense": label,
                "verdict": "sat" if report.satisfiable else "unsat",
                "status": report.status,
                "seconds": report.elapsed_seconds,
            })
            survives = None if report.status != "complete" \
                else report.satisfiable
            return survives, report

        def finish(status: str, selected: Sequence[Countermeasure],
                   report: ImpactReport) -> DefensePlan:
            return DefensePlan(
                status=status,
                target_increase_percent=self.target,
                analyzer=self.analyzer,
                selected=tuple(selected),
                probes=probes,
                sessions_built=self.sessions_built,
                sessions_reused=self.sessions_reused,
                elapsed_seconds=time.perf_counter() - started,
                report=report)

        def apply_all(selected: Sequence[Countermeasure]) -> CaseDefinition:
            case = self.case
            for measure in selected:
                case = measure.apply(case)
            return case

        survives, report = checked("(undefended)", self.case)
        if survives is None:
            return finish("inconclusive", (), report)
        if not survives:
            return finish("already_secure", (), report)
        if not candidates:
            return finish("unblockable", (), report)

        survives, report = checked(
            "+".join(c.label for c in candidates), apply_all(candidates))
        if survives is None:
            return finish("inconclusive", candidates, report)
        if survives:
            return finish("unblockable", candidates, report)

        # Deletion-based 1-minimization of the (blocking) full set.
        selected = list(candidates)
        blocking_report = report
        for measure in list(selected):
            trial = [c for c in selected if c != measure]
            label = "+".join(c.label for c in trial) or "(undefended)"
            survives, report = checked(label, apply_all(trial))
            if survives is None:
                return finish("inconclusive", selected, blocking_report)
            if not survives:
                selected = trial
                blocking_report = report
        return finish("blocked", selected, blocking_report)
