"""Command-line interface: ``python -m repro``.

Mirrors the original tool's workflow — a case file in the paper's input
format goes in, the analysis verdict and attack vector come out::

    python -m repro analyze --case 5bus-study1
    python -m repro analyze --input my_case.txt --target 5 --with-states
    python -m repro analyze --case ieee57 --fast
    python -m repro opf --case 5bus-study1
    python -m repro cases
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Optional

from repro.core import (
    FastImpactAnalyzer,
    FastQuery,
    ImpactAnalyzer,
    ImpactQuery,
)
from repro.estimation import MeasurementPlan
from repro.grid import parse_case
from repro.grid.caseio import CaseDefinition
from repro.grid.cases import case_names, get_case
from repro.opf import solve_dc_opf


def _load_case(args) -> CaseDefinition:
    if args.input:
        with open(args.input) as handle:
            return parse_case(handle.read(), name=args.input)
    if args.case:
        return get_case(args.case)
    raise SystemExit("either --case <name> or --input <file> is required")


def _cmd_cases(_args) -> int:
    for name in case_names():
        case = get_case(name)
        print(f"{name:14} {case.num_buses:4} buses {case.num_lines:4} "
              f"lines {len(case.generators):3} generators")
    return 0


def _cmd_opf(args) -> int:
    case = _load_case(args)
    grid = case.build_grid()
    result = solve_dc_opf(grid, method=args.method)
    if not result.feasible:
        print("OPF infeasible")
        return 1
    print(f"optimal cost: {float(result.cost):.2f}")
    for bus, power in sorted(result.dispatch.items()):
        print(f"  generator at bus {bus}: {float(power):.4f} p.u.")
    if result.binding_lines:
        print(f"binding line limits: {result.binding_lines}")
    return 0


def _cmd_analyze(args) -> int:
    case = _load_case(args)
    target: Optional[Fraction] = None
    if args.target is not None:
        target = Fraction(args.target).limit_denominator(10000)

    if args.fast:
        analyzer = FastImpactAnalyzer(case)
        report = analyzer.analyze(FastQuery(
            target_increase_percent=target,
            with_state_infection=args.with_states,
            seed=args.seed))
    else:
        analyzer = ImpactAnalyzer(case)
        report = analyzer.analyze(ImpactQuery(
            target_increase_percent=target,
            with_state_infection=args.with_states,
            verify_with_smt_opf=args.verify_smt,
            max_candidates=args.max_candidates))

    plan = MeasurementPlan.from_case(case)
    text = report.render(plan)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0 if report.satisfiable else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Impact analysis of stealthy topology poisoning "
                    "attacks on Optimal Power Flow (ICDCS 2014 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    cases = sub.add_parser("cases", help="list the bundled test systems")
    cases.set_defaults(func=_cmd_cases)

    def add_case_args(p):
        p.add_argument("--case", help="bundled case name (see `cases`)")
        p.add_argument("--input",
                       help="case file in the paper's input format")

    opf = sub.add_parser("opf", help="solve the attack-free OPF")
    add_case_args(opf)
    opf.add_argument("--method", choices=("exact", "highs"),
                     default="exact")
    opf.set_defaults(func=_cmd_opf)

    analyze = sub.add_parser(
        "analyze", help="search for a stealthy attack with the target "
                        "OPF-cost impact")
    add_case_args(analyze)
    analyze.add_argument("--target", type=float,
                         help="minimum cost increase in percent "
                              "(default: the case's value)")
    analyze.add_argument("--with-states", action="store_true",
                         help="allow UFDI state infection "
                              "(paper Section III-D)")
    analyze.add_argument("--fast", action="store_true",
                         help="use the LODF/LCDF fast analyzer "
                              "(single-line attacks; 30+ bus systems)")
    analyze.add_argument("--verify-smt", action="store_true",
                         help="confirm the verdict with the SMT OPF "
                              "model (paper Eq. 37/38)")
    analyze.add_argument("--max-candidates", type=int, default=60)
    analyze.add_argument("--seed", type=int, default=0,
                         help="seed for the fast analyzer's sampling")
    analyze.add_argument("--output", help="write the report to a file "
                                          "(the paper's output file)")
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
