"""Command-line interface: ``python -m repro``.

Mirrors the original tool's workflow — a case file in the paper's input
format goes in, the analysis verdict and attack vector come out::

    python -m repro analyze --case 5bus-study1
    python -m repro analyze --input my_case.txt --target 5 --with-states
    python -m repro analyze --case ieee57 --fast
    python -m repro opf --case 5bus-study1
    python -m repro sweep --cases 5bus-study1,5bus-study2 --targets 1,2,3,4
    python -m repro cases
"""

from __future__ import annotations

import argparse
import os
import sys
from fractions import Fraction
from typing import List, Optional

from repro.core import (
    FastImpactAnalyzer,
    FastQuery,
    ImpactAnalyzer,
    ImpactQuery,
)
from repro.estimation import MeasurementPlan
from repro.exceptions import InputFormatError
from repro.grid import parse_case
from repro.grid.caseio import CaseDefinition
from repro.grid.cases import case_names, get_case
from repro.opf import solve_dc_opf

#: dedicated exit codes for preflight rejections (``analyze``/``opf``):
#: structurally malformed input vs. well-formed but degenerate case.
EXIT_INVALID_INPUT = 3
EXIT_DEGENERATE_CASE = 4


def _load_case(args) -> CaseDefinition:
    if args.input:
        with open(args.input) as handle:
            return parse_case(handle.read(), name=args.input)
    if args.case:
        return get_case(args.case)
    raise SystemExit("either --case <name> or --input <file> is required")


def _cmd_cases(_args) -> int:
    for name in case_names():
        case = get_case(name)
        print(f"{name:14} {case.num_buses:4} buses {case.num_lines:4} "
              f"lines {len(case.generators):3} generators")
    return 0


def _parse_failure(args, exc: InputFormatError) -> int:
    from repro.runner.engine import parse_failure_report
    subject = args.input or args.case or "case"
    print(parse_failure_report(subject, exc).render(), file=sys.stderr)
    return EXIT_INVALID_INPUT


def _cmd_opf(args) -> int:
    try:
        case = _load_case(args)
    except InputFormatError as exc:
        return _parse_failure(args, exc)
    grid = case.build_grid()
    result = solve_dc_opf(grid, method=args.method)
    if not result.feasible:
        print("OPF infeasible")
        return 1
    print(f"optimal cost: {float(result.cost):.2f}")
    for bus, power in sorted(result.dispatch.items()):
        print(f"  generator at bus {bus}: {float(power):.4f} p.u.")
    if result.binding_lines:
        print(f"binding line limits: {result.binding_lines}")
    return 0


def _cmd_analyze(args) -> int:
    try:
        case = _load_case(args)
    except InputFormatError as exc:
        return _parse_failure(args, exc)
    target: Optional[Fraction] = None
    if args.target is not None:
        target = Fraction(args.target).limit_denominator(10000)

    self_check = True if args.self_check else None
    if args.fast:
        analyzer = FastImpactAnalyzer(case)
        report = analyzer.analyze(FastQuery(
            target_increase_percent=target,
            with_state_infection=args.with_states,
            seed=args.seed,
            self_check=self_check))
    else:
        analyzer = ImpactAnalyzer(case)
        report = analyzer.analyze(ImpactQuery(
            target_increase_percent=target,
            with_state_infection=args.with_states,
            verify_with_smt_opf=args.verify_smt,
            max_candidates=args.max_candidates,
            self_check=self_check))

    plan = None
    if not report.is_rejected:
        try:
            plan = MeasurementPlan.from_case(case)
        except Exception:
            # Rendering must not crash on a case whose measurement plan
            # cannot be built; the report stands on its own.
            plan = None
    text = report.render(plan)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    if report.status == "certificate_error":
        return 2
    if report.status == "invalid_input":
        return EXIT_INVALID_INPUT
    if report.status == "degenerate_case":
        return EXIT_DEGENERATE_CASE
    return 0 if report.satisfiable else 1


def _cmd_fuzz(args) -> int:
    from repro.testing.fuzz import fuzz_bundled_case
    report = fuzz_bundled_case(
        args.case, seed=args.seed, iterations=args.iterations,
        analyzer=args.analyzer, max_mutations=args.max_mutations,
        time_limit=args.time_limit)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    from repro.benchlib import format_table
    from repro.benchlib.scenarios import scenario_seeds
    from repro.runner import (
        ResultCache,
        ScenarioSpec,
        SweepConfig,
        SweepEngine,
    )

    names = [name.strip() for name in args.cases.split(",") if name.strip()]
    if not names:
        raise SystemExit("--cases must name at least one bundled case")
    targets: List[Optional[str]] = [None]
    if args.targets:
        targets = [t.strip() for t in args.targets.split(",") if t.strip()]
    seeds: List[Optional[int]] = [None]
    if args.scenarios:
        seeds = list(scenario_seeds(args.scenarios))

    specs = []
    for name in names:
        for seed in seeds:
            for target in targets:
                try:
                    specs.append(ScenarioSpec.build(
                        name, analyzer=args.analyzer, attacker_seed=seed,
                        target=target,
                        with_state_infection=args.with_states,
                        max_candidates=args.max_candidates,
                        state_samples=args.state_samples,
                        sample_seed=args.seed))
                except (ValueError, ZeroDivisionError):
                    raise SystemExit(
                        f"--targets: {target!r} is not a number or "
                        f"fraction (try e.g. 3, 2.5 or 9/2)")

    cache_dir = None if args.no_cache else args.cache_dir
    if args.clear_cache and cache_dir:
        removed = ResultCache(cache_dir).clear()
        print(f"cleared {removed} cached result(s) from {cache_dir}")
    workers = 1 if args.serial else args.workers
    budget = None
    if args.max_conflicts or args.max_decisions or args.max_pivots:
        from repro.smt import SolverBudget
        budget = SolverBudget(max_conflicts=args.max_conflicts,
                              max_decisions=args.max_decisions,
                              max_pivots=args.max_pivots)
    engine = SweepEngine(SweepConfig(
        workers=workers, task_timeout=args.timeout,
        retries=args.retries, cache_dir=cache_dir,
        use_cache=cache_dir is not None, budget=budget,
        self_check=True if args.self_check else None))
    sweep = engine.run(specs)

    rows = []
    for outcome in sweep.outcomes:
        increase = outcome.achieved_increase_percent
        rows.append((
            outcome.spec.label,
            outcome.verdict,
            "-" if increase is None else f"{increase:.2f}%",
            outcome.candidates_examined,
            outcome.solver_calls,
            f"{outcome.analysis_seconds:.3f}",
            "hit" if outcome.cache_hit else "miss",
        ))
    print(format_table(
        f"sweep — {len(specs)} scenarios, {sweep.mode} "
        f"({sweep.workers} worker{'s' if sweep.workers != 1 else ''})",
        ("scenario", "verdict", "increase", "candidates", "smt calls",
         "time (s)", "cache"),
        rows))
    totals = sweep.to_dict()["totals"]
    print(f"wall time      : {sweep.wall_seconds:.3f}s "
          f"(sum of analyses: {totals['analysis_seconds']:.3f}s)")
    print(f"cache          : {sweep.cache_hits}/{len(specs)} hits"
          + (f" under {sweep.cache_dir}" if sweep.cache_dir else
             " (disabled)"))
    if totals.get("encodings_built"):
        print(f"encodings      : {totals['encodings_built']} built "
              f"({totals['encode_seconds']:.3f}s encode); warm "
              f"scenarios reused them incrementally")
    if totals["certificate_errors"] or totals["certified"]:
        print(f"certificates   : {totals['certified']} verified, "
              f"{totals['certificate_errors']} rejected")
    if sweep.cache_rejected:
        print(f"cache rejected : {sweep.cache_rejected} stale/corrupt "
              f"entr{'y' if sweep.cache_rejected == 1 else 'ies'} "
              f"recomputed")
    if totals["invalid_input"] or totals["degenerate_case"]:
        print(f"preflight      : {totals['invalid_input']} invalid "
              f"input(s), {totals['degenerate_case']} degenerate "
              f"case(s) rejected before analysis")
    if args.trace:
        path = sweep.write(args.trace)
        print(f"trace written  : {path}")
    failures = sweep.failures
    for outcome in failures:
        print(f"FAILED {outcome.spec.label}: {outcome.status} "
              f"({outcome.error})")
    if args.strict:
        # --strict: any non-definitive cell — error, unknown, a rejected
        # certificate, a rejected *input* (invalid/degenerate), a failed
        # cache write, or (under --self-check) a cell that somehow
        # skipped certification — fails the sweep hard.
        strict_bad = [
            o for o in sweep.outcomes
            if o.status in ("error", "unknown", "timeout", "crashed",
                            "certificate_error", "invalid_input",
                            "degenerate_case")
            or o.cache_write_error is not None
            or (args.self_check and o.certified is not True
                and o.status not in ("invalid_input",
                                     "degenerate_case"))]
        if strict_bad:
            print(f"STRICT: {len(strict_bad)} non-definitive "
                  f"outcome(s)")
            return 2
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Impact analysis of stealthy topology poisoning "
                    "attacks on Optimal Power Flow (ICDCS 2014 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    cases = sub.add_parser("cases", help="list the bundled test systems")
    cases.set_defaults(func=_cmd_cases)

    def add_case_args(p):
        p.add_argument("--case", help="bundled case name (see `cases`)")
        p.add_argument("--input",
                       help="case file in the paper's input format")

    opf = sub.add_parser("opf", help="solve the attack-free OPF")
    add_case_args(opf)
    opf.add_argument("--method", choices=("exact", "highs"),
                     default="exact")
    opf.set_defaults(func=_cmd_opf)

    analyze = sub.add_parser(
        "analyze", help="search for a stealthy attack with the target "
                        "OPF-cost impact")
    add_case_args(analyze)
    analyze.add_argument("--target", type=float,
                         help="minimum cost increase in percent "
                              "(default: the case's value)")
    analyze.add_argument("--with-states", action="store_true",
                         help="allow UFDI state infection "
                              "(paper Section III-D)")
    analyze.add_argument("--fast", action="store_true",
                         help="use the LODF/LCDF fast analyzer "
                              "(single-line attacks; 30+ bus systems)")
    analyze.add_argument("--verify-smt", action="store_true",
                         help="confirm the verdict with the SMT OPF "
                              "model (paper Eq. 37/38)")
    analyze.add_argument("--max-candidates", type=int, default=60)
    analyze.add_argument("--seed", type=int, default=0,
                         help="seed for the fast analyzer's sampling")
    analyze.add_argument("--output", help="write the report to a file "
                                          "(the paper's output file)")
    analyze.add_argument("--self-check", action="store_true",
                         help="certified mode: independently verify "
                              "every SAT model and UNSAT proof before "
                              "reporting (exit 2 on a rejected "
                              "certificate); REPRO_SELF_CHECK=1 does "
                              "the same")
    analyze.set_defaults(func=_cmd_analyze)

    fuzz = sub.add_parser(
        "fuzz", help="drive seeded case mutants through the analyze "
                     "path; exit 1 if any escapes as an uncaught "
                     "exception")
    fuzz.add_argument("--case", default="5bus-study1",
                      help="bundled case to mutate (default: "
                           "5bus-study1)")
    fuzz.add_argument("--iterations", type=int, default=200,
                      help="number of mutants to generate (default 200)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="mutation seed; (case, seed, iteration) "
                           "fully determines each mutant")
    fuzz.add_argument("--analyzer", choices=("fast", "smt"),
                      default="fast")
    fuzz.add_argument("--max-mutations", type=int, default=3,
                      help="max corruptions applied per mutant")
    fuzz.add_argument("--time-limit", type=float, default=None,
                      help="abort (exit 1) if the run exceeds this many "
                           "seconds")
    fuzz.set_defaults(func=_cmd_fuzz)

    sweep = sub.add_parser(
        "sweep", help="run a (case × target × scenario) grid on the "
                      "parallel sweep engine with result caching")
    sweep.add_argument("--cases", required=True,
                       help="comma-separated bundled case names")
    sweep.add_argument("--targets",
                       help="comma-separated impact targets in percent "
                            "(default: each case's own value)")
    sweep.add_argument("--scenarios", type=int, default=0,
                       help="number of randomized attacker scenarios per "
                            "cell (0: the case as-is)")
    sweep.add_argument("--with-states", action="store_true",
                       help="allow UFDI state infection")
    sweep.add_argument("--analyzer",
                       choices=("auto", "smt", "fast"), default="auto",
                       help="auto picks SMT up to 14 buses, fast above")
    sweep.add_argument("--workers", type=int,
                       default=min(4, os.cpu_count() or 1),
                       help="worker processes (default: min(4, cpus))")
    sweep.add_argument("--serial", action="store_true",
                       help="force in-process serial execution")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-task wall-clock budget in seconds, "
                            "enforced inside the solvers (works in "
                            "serial mode too); exhausted tasks are "
                            "recorded as 'unknown'")
    sweep.add_argument("--max-conflicts", type=int, default=None,
                       help="per-task SAT conflict budget")
    sweep.add_argument("--max-decisions", type=int, default=None,
                       help="per-task SAT decision budget")
    sweep.add_argument("--max-pivots", type=int, default=None,
                       help="per-task simplex pivot budget")
    sweep.add_argument("--retries", type=int, default=1,
                       help="resubmissions after a worker crash")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="result-cache directory")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache entirely")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="drop cached results before running")
    sweep.add_argument("--trace", default="sweep-trace.json",
                       help="write the per-sweep trace JSON here "
                            "('' disables)")
    sweep.add_argument("--max-candidates", type=int, default=60)
    sweep.add_argument("--state-samples", type=int, default=24)
    sweep.add_argument("--seed", type=int, default=0,
                       help="fast-analyzer sampling seed")
    sweep.add_argument("--self-check", action="store_true",
                       help="certified mode for every cell: answers are "
                            "verified against independent certificates "
                            "and cache hits must be certified; "
                            "REPRO_SELF_CHECK=1 does the same")
    sweep.add_argument("--strict", action="store_true",
                       help="exit 2 when any cell is non-definitive "
                            "(error/unknown/timeout/crashed/"
                            "certificate_error/invalid_input/"
                            "degenerate_case, or a failed cache "
                            "write)")
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
