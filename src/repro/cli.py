"""Command-line interface: ``python -m repro``.

Mirrors the original tool's workflow — a case file in the paper's input
format goes in, the analysis verdict and attack vector come out::

    python -m repro analyze --case 5bus-study1
    python -m repro analyze --input my_case.txt --target 5 --with-states
    python -m repro analyze --case ieee57 --fast
    python -m repro maximize --case 5bus-study1 --tolerance 1/8
    python -m repro defend --case 5bus-study1 --target 3
    python -m repro opf --case 5bus-study1
    python -m repro sweep --cases 5bus-study1,5bus-study2 --targets 1,2,3,4
    python -m repro serve --port 8734 --workers 2
    python -m repro cases
"""

from __future__ import annotations

import argparse
import os
import sys
from fractions import Fraction
from typing import List, Optional

from repro.core import (
    FastImpactAnalyzer,
    FastQuery,
    ImpactAnalyzer,
    ImpactQuery,
)
from repro.estimation import MeasurementPlan
from repro.exceptions import InputFormatError, ModelError
from repro.grid import parse_case
from repro.grid.caseio import CaseDefinition
from repro.grid.cases import case_names, get_case
from repro.opf import solve_dc_opf

#: dedicated exit codes for preflight rejections (``analyze``/``opf``):
#: structurally malformed input vs. well-formed but degenerate case.
EXIT_INVALID_INPUT = 3
EXIT_DEGENERATE_CASE = 4
#: ``sweep`` was interrupted (SIGINT/SIGTERM) after checkpointing the
#: completed cells; re-running the same sweep resumes from the cache.
EXIT_INTERRUPTED = 5
#: the guarded linear-algebra layer refused to return an unverified
#: result (``analyze``/``maximize``): the verdict is *withheld*, not
#: unsat — distinct from exit 1 so scripts never read a numeric refusal
#: as a proven absence of attacks.
EXIT_NUMERICAL_UNSTABLE = 6


def _load_case(args) -> CaseDefinition:
    if args.input:
        with open(args.input) as handle:
            return parse_case(handle.read(), name=args.input)
    if args.case:
        return get_case(args.case)
    raise SystemExit("either --case <name> or --input <file> is required")


def _cmd_cases(_args) -> int:
    for name in case_names():
        case = get_case(name)
        print(f"{name:14} {case.num_buses:4} buses {case.num_lines:4} "
              f"lines {len(case.generators):3} generators")
    return 0


def _parse_failure(args, exc: InputFormatError) -> int:
    from repro.runner.engine import parse_failure_report
    subject = args.input or args.case or "case"
    print(parse_failure_report(subject, exc).render(), file=sys.stderr)
    return EXIT_INVALID_INPUT


def _cmd_opf(args) -> int:
    try:
        case = _load_case(args)
    except InputFormatError as exc:
        return _parse_failure(args, exc)
    grid = case.build_grid()
    result = solve_dc_opf(grid, method=args.method)
    if not result.feasible:
        print("OPF infeasible")
        return 1
    print(f"optimal cost: {float(result.cost):.2f}")
    for bus, power in sorted(result.dispatch.items()):
        print(f"  generator at bus {bus}: {float(power):.4f} p.u.")
    if result.binding_lines:
        print(f"binding line limits: {result.binding_lines}")
    return 0


def _cmd_analyze(args) -> int:
    try:
        case = _load_case(args)
    except InputFormatError as exc:
        return _parse_failure(args, exc)
    target: Optional[Fraction] = None
    if args.target is not None:
        target = Fraction(args.target).limit_denominator(10000)

    self_check = True if args.self_check else None
    if args.fast:
        analyzer = FastImpactAnalyzer(case, backend=args.backend)
        report = analyzer.analyze(FastQuery(
            target_increase_percent=target,
            with_state_infection=args.with_states,
            seed=args.seed,
            self_check=self_check))
    else:
        analyzer = ImpactAnalyzer(case)
        report = analyzer.analyze(ImpactQuery(
            target_increase_percent=target,
            with_state_infection=args.with_states,
            verify_with_smt_opf=args.verify_smt,
            max_candidates=args.max_candidates,
            self_check=self_check))

    plan = None
    if not report.is_rejected:
        try:
            plan = MeasurementPlan.from_case(case)
        except Exception:
            # Rendering must not crash on a case whose measurement plan
            # cannot be built; the report stands on its own.
            plan = None
    text = report.render(plan)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    if report.status == "certificate_error":
        return 2
    if report.status == "invalid_input":
        return EXIT_INVALID_INPUT
    if report.status == "degenerate_case":
        return EXIT_DEGENERATE_CASE
    if report.status == "numerical_unstable":
        return EXIT_NUMERICAL_UNSTABLE
    return 0 if report.satisfiable else 1


def _fraction_arg(value, flag: str) -> Fraction:
    """Exact rational parsing for CLI bounds (no float round-trip)."""
    try:
        return Fraction(value)
    except (ValueError, ZeroDivisionError):
        raise SystemExit(f"{flag}: {value!r} is not a number or fraction "
                         f"(try e.g. 3, 2.5 or 9/2)")


def _resolved_kind(args, case: CaseDefinition) -> str:
    if args.analyzer != "auto":
        return args.analyzer
    from repro.runner.spec import AUTO_SMT_MAX_BUSES
    return "smt" if case.num_buses <= AUTO_SMT_MAX_BUSES else "fast"


def _cli_budget(args):
    if args.timeout is None and args.max_conflicts is None \
            and args.max_decisions is None:
        return None
    from repro.smt import SolverBudget
    return SolverBudget(wall_seconds=args.timeout,
                        max_conflicts=args.max_conflicts,
                        max_decisions=args.max_decisions)


def _cmd_maximize(args) -> int:
    try:
        case = _load_case(args)
    except InputFormatError as exc:
        return _parse_failure(args, exc)
    from repro.search import MaxImpactSearch

    kind = _resolved_kind(args, case)
    if kind == "smt":
        analyzer = ImpactAnalyzer(case, incremental=not args.cold)
        attrs = {"with_state_infection": args.with_states,
                 "max_candidates": args.max_candidates}
    else:
        analyzer = FastImpactAnalyzer(case, backend=args.backend)
        attrs = {"with_state_infection": args.with_states,
                 "seed": args.seed}
    try:
        search = MaxImpactSearch(
            analyzer,
            tolerance=_fraction_arg(args.tolerance, "--tolerance"),
            lo=_fraction_arg(args.lo, "--lo"),
            hi_cap=_fraction_arg(args.hi_cap, "--hi-cap"),
            budget=_cli_budget(args),
            self_check=True if args.self_check else None)
    except ModelError as exc:
        raise SystemExit(str(exc))
    result = search.run(**attrs)

    if args.json:
        import json
        print(json.dumps(result.to_dict(), indent=1))
    else:
        warmth = "fast" if kind == "fast" else \
            ("cold" if args.cold else "warm")
        print(f"case {case.name}: maximum-impact bisection "
              f"({kind} analyzer, {warmth}, tolerance "
              f"{result.tolerance}%)")
        if result.is_rejected:
            if result.diagnostics is not None:
                print(result.diagnostics.render())
        elif result.satisfiable:
            istar = result.max_increase_percent
            upper = "cap" if result.upper_bound is None \
                else f"{result.upper_bound}%"
            print(f"  I* = {istar}% (= {float(istar):.4f}%), "
                  f"bracket [{result.lower_bound}%, {upper})")
            if result.witness_cost is not None:
                print(f"  witness: excluded lines "
                      f"{list(result.witness.excluded)}, altered "
                      f"measurements "
                      f"{list(result.witness.altered_measurements)}, "
                      f"believed cost {float(result.witness_cost):.2f} "
                      f"(base {float(result.base_cost):.2f})")
        else:
            anchor = result.upper_bound
            print(f"  no attack achieves the bracket anchor "
                  f"({anchor}%): I* < {anchor}%")
        if result.status == "budget_exhausted":
            lo = "?" if result.lower_bound is None else result.lower_bound
            hi = "?" if result.upper_bound is None else result.upper_bound
            print(f"  PARTIAL: {result.budget_reason}; bracket so far "
                  f"[{lo}%, {hi}%)")
        if result.status == "certificate_error":
            print(f"  CERTIFICATE ERROR: {result.certificate_error}")
        certified = {True: "all probes certified", False: "NOT certified",
                     None: "self-check off"}[result.certified]
        print(f"  {result.solve_at_calls} solve_at calls "
              f"({result.warm_solves} warm), "
              f"{result.encodings_built} encoding(s) built, "
              f"{result.solver_calls} solver calls, "
              f"{result.elapsed_seconds:.3f}s; {certified}")
    if result.status == "certificate_error":
        return 2
    if result.status == "invalid_input":
        return EXIT_INVALID_INPUT
    if result.status == "degenerate_case":
        return EXIT_DEGENERATE_CASE
    if result.status == "numerical_unstable":
        return EXIT_NUMERICAL_UNSTABLE
    return 0 if result.is_definitive and result.satisfiable else 1


def _cmd_defend(args) -> int:
    try:
        case = _load_case(args)
    except InputFormatError as exc:
        return _parse_failure(args, exc)
    from repro.defense import (
        DefensePlanner,
        SecureLineStatus,
        SecureMeasurement,
        TightenBudgets,
        default_candidates,
    )

    kind = _resolved_kind(args, case)
    attrs = {"max_candidates": args.max_candidates} if kind == "smt" \
        else {"seed": args.seed}
    target = None if args.target is None \
        else _fraction_arg(args.target, "--target")
    planner = DefensePlanner(
        case, target=target, analyzer=kind, budget=_cli_budget(args),
        self_check=True if args.self_check else None, **attrs)

    candidates = []
    for line in args.secure_line or ():
        candidates.append(SecureLineStatus(line))
    for index in args.secure_measurement or ():
        candidates.append(SecureMeasurement(index))
    for pair in args.budget or ():
        try:
            measurements, buses = (int(v) for v in pair.split(",", 1))
        except ValueError:
            raise SystemExit(f"--budget: {pair!r} is not "
                             f"MEASUREMENTS,BUSES")
        candidates.append(TightenBudgets(measurements, buses))
    if not candidates:
        candidates = default_candidates(case)
    plan = planner.plan(candidates)

    if args.json:
        import json
        print(json.dumps(plan.to_dict(), indent=1))
    else:
        print(f"case {case.name}: defense planning at "
              f"{plan.target_increase_percent}% target "
              f"({plan.analyzer} analyzer, {len(candidates)} candidate "
              f"countermeasure(s))")
        if plan.status == "already_secure":
            print("  already secure: no attack reaches the target "
                  "undefended")
        elif plan.status == "blocked":
            print(f"  1-minimal blocking set "
                  f"({len(plan.selected)} countermeasure(s)):")
            for measure in plan.selected:
                print(f"    - {measure.label}")
        elif plan.status == "unblockable":
            print("  UNBLOCKABLE: the attack survives all candidate "
                  "countermeasures together")
        else:
            last = plan.probes[-1] if plan.probes else {}
            print(f"  INCONCLUSIVE: probe '{last.get('defense')}' ended "
                  f"with status {last.get('status')!r}")
        print(f"  {len(plan.probes)} probes, {plan.sessions_built} "
              f"session(s) built, {plan.sessions_reused} reused warm, "
              f"{plan.elapsed_seconds:.3f}s")
    if plan.status == "inconclusive":
        return 2
    return 0 if plan.blocked else 1


def _cmd_fuzz(args) -> int:
    if args.degenerate:
        from repro.testing.degenerate import fuzz_degenerate_case
        report = fuzz_degenerate_case(
            args.case, seed=args.seed, iterations=args.iterations,
            max_mutations=args.max_mutations,
            time_limit=args.time_limit)
    else:
        from repro.testing.fuzz import fuzz_bundled_case
        report = fuzz_bundled_case(
            args.case, seed=args.seed, iterations=args.iterations,
            analyzer=args.analyzer, max_mutations=args.max_mutations,
            time_limit=args.time_limit)
    print(report.render())
    return 0 if report.ok else 1


def _grid_specs(args) -> List:
    """The (case × scenario × target) grid a sweep/coordinate run names.

    Shared by ``sweep`` and ``coordinate`` so the distributed fabric
    and the single-machine engine plan byte-identical grids from the
    same command-line arguments (the differential chaos tests depend
    on this).
    """
    from repro.benchlib.scenarios import scenario_seeds
    from repro.runner import ScenarioSpec

    names = [name.strip() for name in args.cases.split(",")
             if name.strip()]
    if not names:
        raise SystemExit("--cases must name at least one bundled case")
    targets: List[Optional[str]] = [None]
    if args.targets:
        targets = [t.strip() for t in args.targets.split(",")
                   if t.strip()]
    seeds: List[Optional[int]] = [None]
    if args.scenarios:
        seeds = list(scenario_seeds(args.scenarios))

    tolerance = None
    if args.tolerance is not None:
        if args.search != "maximize":
            raise SystemExit("--tolerance requires --search maximize")
        tolerance = str(_fraction_arg(args.tolerance, "--tolerance"))

    specs = []
    for name in names:
        for seed in seeds:
            for target in targets:
                try:
                    specs.append(ScenarioSpec.build(
                        name, analyzer=args.analyzer, attacker_seed=seed,
                        target=target,
                        with_state_infection=args.with_states,
                        max_candidates=args.max_candidates,
                        state_samples=args.state_samples,
                        sample_seed=args.seed,
                        search=args.search, tolerance=tolerance,
                        backend=getattr(args, "backend", None)))
                except (ValueError, ZeroDivisionError):
                    raise SystemExit(
                        f"--targets: {target!r} is not a number or "
                        f"fraction (try e.g. 3, 2.5 or 9/2)")
    return specs


def _print_sweep_results(sweep, cell_count: int,
                         trace_path: Optional[str]) -> None:
    """Render a finished sweep/fabric run (table, totals, failures)."""
    from repro.benchlib import format_table

    rows = []
    for outcome in sweep.outcomes:
        increase = outcome.achieved_increase_percent
        shown = "-" if increase is None else f"{increase:.2f}%"
        if outcome.max_impact is not None:
            istar = outcome.max_impact.get("max_increase_percent")
            if istar is not None:
                shown = f"I*={float(Fraction(istar)):.3f}%"
        rows.append((
            outcome.spec.label,
            outcome.verdict,
            shown,
            outcome.candidates_examined,
            outcome.solver_calls,
            f"{outcome.analysis_seconds:.3f}",
            "hit" if outcome.cache_hit else "miss",
        ))
    workers = sweep.workers
    print(format_table(
        f"sweep — {cell_count} scenarios, {sweep.mode} "
        f"({workers} worker{'s' if workers != 1 else ''})",
        ("scenario", "verdict", "increase", "candidates", "smt calls",
         "time (s)", "cache"),
        rows))
    totals = sweep.to_dict()["totals"]
    print(f"wall time      : {sweep.wall_seconds:.3f}s "
          f"(sum of analyses: {totals['analysis_seconds']:.3f}s)")
    print(f"cache          : {sweep.cache_hits}/{cell_count} hits"
          + (f" under {sweep.cache_dir}" if sweep.cache_dir else
             " (disabled)"))
    if totals.get("encodings_built"):
        print(f"encodings      : {totals['encodings_built']} built "
              f"({totals['encode_seconds']:.3f}s encode); warm "
              f"scenarios reused them incrementally")
    if totals.get("max_impact_cells"):
        print(f"max impact     : {totals['max_impact_cells']} cell(s) "
              f"bisected to I* (bounds in the trace's max_impact "
              f"payloads)")
    if totals["certificate_errors"] or totals["certified"]:
        print(f"certificates   : {totals['certified']} verified, "
              f"{totals['certificate_errors']} rejected")
    if sweep.cache_rejected:
        print(f"cache rejected : {sweep.cache_rejected} stale/corrupt "
              f"entr{'y' if sweep.cache_rejected == 1 else 'ies'} "
              f"recomputed")
    if totals["invalid_input"] or totals["degenerate_case"]:
        print(f"preflight      : {totals['invalid_input']} invalid "
              f"input(s), {totals['degenerate_case']} degenerate "
              f"case(s) rejected before analysis")
    if totals.get("numerical_unstable"):
        print(f"numerics       : {totals['numerical_unstable']} cell(s) "
              f"degraded to numerical_unstable (verdict withheld; see "
              f"the trace diagnostics)")
    if trace_path:
        path = sweep.write(trace_path)
        print(f"trace written  : {path}")
    for outcome in sweep.failures:
        print(f"FAILED {outcome.spec.label}: {outcome.status} "
              f"({outcome.error})")


def _strict_failures(sweep, self_check: bool) -> int:
    """Count the non-definitive outcomes ``--strict`` refuses."""
    return len([
        o for o in sweep.outcomes
        if o.status in ("error", "unknown", "timeout", "crashed",
                        "certificate_error", "invalid_input",
                        "degenerate_case", "numerical_unstable")
        or o.cache_write_error is not None
        or (self_check and o.certified is not True
            and o.status not in ("invalid_input",
                                 "degenerate_case",
                                 "numerical_unstable"))])


def _cmd_sweep(args) -> int:
    from repro.runner import ResultCache, SweepConfig, SweepEngine

    specs = _grid_specs(args)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.clear_cache and cache_dir:
        removed = ResultCache(cache_dir).clear()
        print(f"cleared {removed} cached result(s) from {cache_dir}")
    workers = 1 if args.serial else args.workers
    budget = None
    if args.max_conflicts or args.max_decisions or args.max_pivots:
        from repro.smt import SolverBudget
        budget = SolverBudget(max_conflicts=args.max_conflicts,
                              max_decisions=args.max_decisions,
                              max_pivots=args.max_pivots)
    engine = SweepEngine(SweepConfig(
        workers=workers, task_timeout=args.timeout,
        retries=args.retries, cache_dir=cache_dir,
        use_cache=cache_dir is not None, budget=budget,
        self_check=True if args.self_check else None))

    # SIGTERM behaves like SIGINT: the engine checkpoints every
    # completed cell (including cells salvaged out of an interrupted
    # warm group) and we exit with the dedicated resumable code.
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass    # not the main thread (embedded use): no handler swap
    print(f"sweep: {len(specs)} scenario(s) queued "
          f"({'serial' if workers == 1 else f'{workers} workers'})",
          flush=True)
    try:
        sweep = engine.run(specs)
    except KeyboardInterrupt:
        where = f" under {cache_dir}" if cache_dir else \
            " (cache disabled: nothing persisted)"
        print(f"sweep interrupted: completed cells are "
              f"checkpointed{where}; re-run the same command to "
              f"resume from the cache", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)

    _print_sweep_results(sweep, len(specs), args.trace)
    if args.strict:
        # --strict: any non-definitive cell — error, unknown, a rejected
        # certificate, a rejected *input* (invalid/degenerate), a failed
        # cache write, or (under --self-check) a cell that somehow
        # skipped certification — fails the sweep hard.
        strict_bad = _strict_failures(sweep, args.self_check)
        if strict_bad:
            print(f"STRICT: {strict_bad} non-definitive outcome(s)")
            return 2
    return 1 if sweep.failures else 0


def _cmd_coordinate(args) -> int:
    import signal
    import subprocess
    import time

    from repro.fabric import Coordinator, CoordinatorConfig, FabricError

    specs = _grid_specs(args)
    cache_dir = None if args.no_cache else args.cache_dir
    budget_limits = {}
    if args.timeout is not None:
        budget_limits["wall_seconds"] = args.timeout
    if args.max_conflicts is not None:
        budget_limits["max_conflicts"] = args.max_conflicts
    if args.max_decisions is not None:
        budget_limits["max_decisions"] = args.max_decisions
    if args.max_pivots is not None:
        budget_limits["max_pivots"] = args.max_pivots
    config = CoordinatorConfig(
        host=args.host, port=args.port, journal_path=args.journal,
        lease_ttl=args.lease_ttl, steal_after=args.steal_after,
        retry_budget=args.retry_budget, unit_cells=args.unit_cells,
        cache_dir=cache_dir, use_cache=cache_dir is not None,
        budget_limits=budget_limits or None,
        self_check=True if args.self_check else None,
        fault_plan=args.fault_plan)
    coordinator = Coordinator(specs, config, verbose=args.verbose)
    started = time.monotonic()
    try:
        coordinator.start()
    except FabricError as exc:
        print(f"coordinate: {exc}", file=sys.stderr)
        return 2
    status = coordinator.status()
    resumed = " (resumed from journal)" if status["resumed"] else ""
    print(f"repro coordinate listening on {coordinator.url}{resumed}")
    print(f"grid: {status['cells_total']} cell(s), "
          f"{status['cells_resolved_at_plan']} already resolved "
          f"({status['cache_hits']} cache, "
          f"{status['journal_recovered']} journal), "
          f"{status['units']} unit(s) to lease; journal {args.journal}",
          flush=True)

    procs = []
    for _ in range(args.spawn):
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", f"{coordinator.address[0]}:"
                                f"{coordinator.address[1]}"]
        if cache_dir:
            command += ["--cache-dir", cache_dir]
        else:
            command += ["--no-cache"]
        if args.fault_plan:
            command += ["--fault-plan", args.fault_plan]
        procs.append(subprocess.Popen(command))

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass    # not the main thread (embedded use): no handler swap
    try:
        coordinator.wait()
    except KeyboardInterrupt:
        coordinator.shutdown()
        for proc in procs:
            proc.terminate()
        print(f"coordinate interrupted: committed cells are journaled "
              f"in {args.journal}; re-run the same command to resume "
              f"the fleet", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)

    # Grid done: give spawned workers a moment to observe done=true and
    # exit 0 before the lease endpoint disappears.
    for proc in procs:
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.terminate()
    sweep = coordinator.trace(time.monotonic() - started,
                              workers=args.spawn)
    coordinator.shutdown()
    _print_sweep_results(sweep, len(specs), args.trace)
    if args.strict:
        strict_bad = _strict_failures(sweep, args.self_check)
        if strict_bad:
            print(f"STRICT: {strict_bad} non-definitive outcome(s)")
            return 2
    return 1 if sweep.failures else 0


def _cmd_worker(args) -> int:
    from repro.fabric import FabricWorker, WorkerConfig
    from repro.service.client import ServiceClient, ServiceUnavailable

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit("--connect must be HOST:PORT")
    base_url = f"http://{host}:{port}"
    try:
        ServiceClient(base_url, retries=0).wait_ready(
            timeout=args.connect_timeout)
    except ServiceUnavailable:
        print(f"worker: no coordinator ready at {base_url} within "
              f"{args.connect_timeout:.0f}s", file=sys.stderr)
        return 2
    config = WorkerConfig(
        worker_id=args.id or "",
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        fault_plan=args.fault_plan)
    worker = FabricWorker(base_url, config)
    code = worker.run()
    stats = worker.stats()
    reason = "grid done" if code == 0 else "coordinator gone"
    print(f"worker {stats['worker']}: {reason} — {stats['units']} "
          f"unit(s), {stats['cells']} cell(s), {stats['duplicates']} "
          f"duplicate commit(s), {stats['cache_hits']} cache hit(s)")
    return code


def _cmd_cache(args) -> int:
    from repro.runner import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "prune":
        report = cache.prune()
        print(f"cache prune under {args.cache_dir}: "
              f"{report['scanned']} scanned, {report['kept']} kept, "
              f"{report['removed']} stale/corrupt removed, "
              f"{report['reclaimed_bytes']} bytes reclaimed")
        return 0
    removed = cache.clear()
    print(f"cleared {removed} cached result(s) from {args.cache_dir}")
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.service import ServiceConfig, ServiceServer

    config = ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        retry_limit=args.retry_limit,
        session_limit=args.session_limit,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        self_check=True if args.self_check else None,
        fault_plan=args.fault_plan,
        drain_timeout=args.drain_timeout)
    server = ServiceServer(host=args.host, port=args.port,
                           config=config, verbose=args.verbose)
    server.supervisor.start()

    def _graceful(signum, frame):
        # Runs on the serve_forever thread: flip to draining (new
        # submissions shed with 503) and stop the accept loop from a
        # side thread — BaseServer.shutdown() would deadlock here.
        server.request_stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _graceful)
        except ValueError:
            pass
    host, port = server.address
    print(f"repro serve listening on http://{host}:{port} "
          f"({config.workers} worker(s), queue limit "
          f"{config.queue_limit})")
    sys.stdout.flush()
    try:
        server.serve_forever()     # returns after request_stop()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    drained = server.supervisor.drain(config.drain_timeout)
    server.shutdown()
    if drained:
        print("drained cleanly: all accepted requests completed")
        return 0
    print("drain timed out: some in-flight work was abandoned",
          file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Impact analysis of stealthy topology poisoning "
                    "attacks on Optimal Power Flow (ICDCS 2014 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    cases = sub.add_parser("cases", help="list the bundled test systems")
    cases.set_defaults(func=_cmd_cases)

    def add_case_args(p):
        p.add_argument("--case", help="bundled case name (see `cases`)")
        p.add_argument("--input",
                       help="case file in the paper's input format")

    opf = sub.add_parser("opf", help="solve the attack-free OPF")
    add_case_args(opf)
    opf.add_argument("--method", choices=("exact", "highs"),
                     default="exact")
    opf.set_defaults(func=_cmd_opf)

    analyze = sub.add_parser(
        "analyze", help="search for a stealthy attack with the target "
                        "OPF-cost impact")
    add_case_args(analyze)
    analyze.add_argument("--target", type=float,
                         help="minimum cost increase in percent "
                              "(default: the case's value)")
    analyze.add_argument("--with-states", action="store_true",
                         help="allow UFDI state infection "
                              "(paper Section III-D)")
    analyze.add_argument("--fast", action="store_true",
                         help="use the LODF/LCDF fast analyzer "
                              "(single-line attacks; 30+ bus systems)")
    analyze.add_argument("--backend",
                         choices=("auto", "dense", "sparse"),
                         default=None,
                         help="linear-algebra backend for the fast "
                              "analyzer (auto: sparse at >= 300 buses)")
    analyze.add_argument("--verify-smt", action="store_true",
                         help="confirm the verdict with the SMT OPF "
                              "model (paper Eq. 37/38)")
    analyze.add_argument("--max-candidates", type=int, default=60)
    analyze.add_argument("--seed", type=int, default=0,
                         help="seed for the fast analyzer's sampling")
    analyze.add_argument("--output", help="write the report to a file "
                                          "(the paper's output file)")
    analyze.add_argument("--self-check", action="store_true",
                         help="certified mode: independently verify "
                              "every SAT model and UNSAT proof before "
                              "reporting (exit 2 on a rejected "
                              "certificate); REPRO_SELF_CHECK=1 does "
                              "the same")
    analyze.set_defaults(func=_cmd_analyze)

    maximize = sub.add_parser(
        "maximize", help="bisect to the maximum achievable cost-increase "
                         "I* (warm incremental re-solves)")
    add_case_args(maximize)
    maximize.add_argument("--analyzer", choices=("auto", "smt", "fast"),
                          default="auto",
                          help="auto picks SMT up to 14 buses, fast "
                               "above")
    maximize.add_argument("--backend",
                          choices=("auto", "dense", "sparse"),
                          default=None,
                          help="linear-algebra backend for the fast "
                               "analyzer (auto: sparse at >= 300 "
                               "buses)")
    maximize.add_argument("--cold", action="store_true",
                          help="rebuild the encoding per probe instead "
                               "of warm incremental re-solving (same "
                               "I*, more work; for comparison)")
    maximize.add_argument("--tolerance", default="1/8",
                          help="bisection tolerance in percent points, "
                               "as an exact fraction (default 1/8)")
    maximize.add_argument("--lo", default="0",
                          help="bracket anchor: the impact the search "
                               "starts from (default 0)")
    maximize.add_argument("--hi-cap", default="64",
                          help="upper cap of the galloping phase "
                               "(default 64)")
    maximize.add_argument("--with-states", action="store_true",
                          help="allow UFDI state infection")
    maximize.add_argument("--max-candidates", type=int, default=60)
    maximize.add_argument("--seed", type=int, default=0,
                          help="seed for the fast analyzer's sampling")
    maximize.add_argument("--timeout", type=float, default=None,
                          help="wall-clock budget over the whole search; "
                               "on exhaustion the partial bracket is "
                               "reported (exit 1)")
    maximize.add_argument("--max-conflicts", type=int, default=None,
                          help="SAT conflict budget over the whole "
                               "search")
    maximize.add_argument("--max-decisions", type=int, default=None,
                          help="SAT decision budget over the whole "
                               "search")
    maximize.add_argument("--self-check", action="store_true",
                          help="certified mode: the SAT witness at I* "
                               "and the UNSAT proof above it are both "
                               "independently verified")
    maximize.add_argument("--json", action="store_true",
                          help="emit the full MaxImpactResult as JSON")
    maximize.set_defaults(func=_cmd_maximize)

    defend = sub.add_parser(
        "defend", help="find a 1-minimal countermeasure set that makes "
                       "the impact target unsatisfiable")
    add_case_args(defend)
    defend.add_argument("--target",
                        help="impact target in percent (default: the "
                             "case's value)")
    defend.add_argument("--analyzer", choices=("auto", "smt", "fast"),
                        default="auto")
    defend.add_argument("--secure-line", type=int, action="append",
                        help="candidate: secure this line's status "
                             "channel (repeatable)")
    defend.add_argument("--secure-measurement", type=int,
                        action="append",
                        help="candidate: integrity-protect this "
                             "measurement (repeatable)")
    defend.add_argument("--budget", action="append",
                        metavar="MEASUREMENTS,BUSES",
                        help="candidate: tighten the attacker resource "
                             "budgets (repeatable)")
    defend.add_argument("--max-candidates", type=int, default=60)
    defend.add_argument("--seed", type=int, default=0,
                        help="seed for the fast analyzer's sampling")
    defend.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget per probe")
    defend.add_argument("--max-conflicts", type=int, default=None)
    defend.add_argument("--max-decisions", type=int, default=None)
    defend.add_argument("--self-check", action="store_true",
                        help="certified mode: every kill-confirmation "
                             "UNSAT proof is independently verified")
    defend.add_argument("--json", action="store_true",
                        help="emit the DefensePlan as JSON")
    defend.set_defaults(func=_cmd_defend)

    fuzz = sub.add_parser(
        "fuzz", help="drive seeded case mutants through the analyze "
                     "path; exit 1 if any escapes as an uncaught "
                     "exception")
    fuzz.add_argument("--case", default="5bus-study1",
                      help="bundled case to mutate (default: "
                           "5bus-study1)")
    fuzz.add_argument("--iterations", type=int, default=200,
                      help="number of mutants to generate (default 200)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="mutation seed; (case, seed, iteration) "
                           "fully determines each mutant")
    fuzz.add_argument("--analyzer", choices=("fast", "smt"),
                      default="fast")
    fuzz.add_argument("--max-mutations", type=int, default=3,
                      help="max corruptions applied per mutant")
    fuzz.add_argument("--time-limit", type=float, default=None,
                      help="abort (exit 1) if the run exceeds this many "
                           "seconds")
    fuzz.add_argument("--degenerate", action="store_true",
                      help="fuzz case numerics instead of case text: "
                           "seeded ill-conditioned mutants (near-"
                           "singular B, extreme admittance ratios, "
                           "near-redundant measurements) checked for "
                           "silent float/exact disagreements")
    fuzz.set_defaults(func=_cmd_fuzz)

    def add_grid_args(p, trace_default):
        """Grid + budget + cache options shared by sweep/coordinate."""
        p.add_argument("--cases", required=True,
                       help="comma-separated bundled case names")
        p.add_argument("--targets",
                       help="comma-separated impact targets in percent "
                            "(default: each case's own value)")
        p.add_argument("--scenarios", type=int, default=0,
                       help="number of randomized attacker scenarios "
                            "per cell (0: the case as-is)")
        p.add_argument("--with-states", action="store_true",
                       help="allow UFDI state infection")
        p.add_argument("--analyzer",
                       choices=("auto", "smt", "fast"), default="auto",
                       help="auto picks SMT up to 14 buses, fast above")
        p.add_argument("--backend",
                       choices=("auto", "dense", "sparse"), default=None,
                       help="linear-algebra backend for the fast "
                            "analyzer (auto: sparse at >= 300 buses); "
                            "folded into cache fingerprints")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-task wall-clock budget in seconds, "
                            "enforced inside the solvers; exhausted "
                            "tasks are recorded as 'unknown'")
        p.add_argument("--max-conflicts", type=int, default=None,
                       help="per-task SAT conflict budget")
        p.add_argument("--max-decisions", type=int, default=None,
                       help="per-task SAT decision budget")
        p.add_argument("--max-pivots", type=int, default=None,
                       help="per-task simplex pivot budget")
        p.add_argument("--cache-dir", default=".repro-cache",
                       help="result-cache directory")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache entirely")
        p.add_argument("--trace", default=trace_default,
                       help="write the per-sweep trace JSON here "
                            "('' disables)")
        p.add_argument("--search", choices=("decision", "maximize"),
                       default="decision",
                       help="maximize bisects every cell to its "
                            "maximum achievable I* (targets become "
                            "bracket anchors) on the same warm "
                            "sessions")
        p.add_argument("--tolerance", default=None,
                       help="bisection tolerance for --search "
                            "maximize, as an exact fraction "
                            "(default 1/8)")
        p.add_argument("--max-candidates", type=int, default=60)
        p.add_argument("--state-samples", type=int, default=24)
        p.add_argument("--seed", type=int, default=0,
                       help="fast-analyzer sampling seed")
        p.add_argument("--self-check", action="store_true",
                       help="certified mode for every cell: answers "
                            "are verified against independent "
                            "certificates and cache hits must be "
                            "certified; REPRO_SELF_CHECK=1 does the "
                            "same")
        p.add_argument("--strict", action="store_true",
                       help="exit 2 when any cell is non-definitive "
                            "(error/unknown/timeout/crashed/"
                            "certificate_error/invalid_input/"
                            "degenerate_case/numerical_unstable, or a "
                            "failed cache write)")

    sweep = sub.add_parser(
        "sweep", help="run a (case × target × scenario) grid on the "
                      "parallel sweep engine with result caching")
    add_grid_args(sweep, trace_default="sweep-trace.json")
    sweep.add_argument("--workers", type=int,
                       default=min(4, os.cpu_count() or 1),
                       help="worker processes (default: min(4, cpus))")
    sweep.add_argument("--serial", action="store_true",
                       help="force in-process serial execution")
    sweep.add_argument("--retries", type=int, default=1,
                       help="resubmissions after a worker crash")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="drop cached results before running")
    sweep.set_defaults(func=_cmd_sweep)

    coordinate = sub.add_parser(
        "coordinate", help="serve the same grid to a fleet of "
                           "`repro worker` processes over a durable, "
                           "crash-recoverable work queue")
    add_grid_args(coordinate, trace_default="")
    coordinate.add_argument("--host", default="127.0.0.1")
    coordinate.add_argument("--port", type=int, default=0,
                            help="listen port (default 0 picks a free "
                                 "one; the bound address is printed on "
                                 "startup)")
    coordinate.add_argument("--journal",
                            default="fabric-journal.jsonl",
                            help="append-only lease/commit journal; if "
                                 "it already exists the run resumes "
                                 "from it (same grid required)")
    coordinate.add_argument("--spawn", type=int, default=0,
                            help="also launch this many local worker "
                                 "subprocesses")
    coordinate.add_argument("--lease-ttl", type=float, default=15.0,
                            help="seconds a lease survives without a "
                                 "heartbeat before its unit is "
                                 "re-dispatched (default 15)")
    coordinate.add_argument("--steal-after", type=float, default=30.0,
                            help="seconds a heartbeating unit may run "
                                 "before an idle worker gets a "
                                 "speculative copy (default 30)")
    coordinate.add_argument("--retry-budget", type=int, default=3,
                            help="lease expiries tolerated per unit "
                                 "before it is marked failed "
                                 "(default 3)")
    coordinate.add_argument("--unit-cells", type=int, default=8,
                            help="max grid cells per leased unit "
                                 "(bounds lease duration; default 8)")
    coordinate.add_argument("--fault-plan", default=None,
                            help=argparse.SUPPRESS)  # chaos tests only
    coordinate.add_argument("--verbose", action="store_true",
                            help="log every HTTP request to stderr")
    coordinate.set_defaults(func=_cmd_coordinate)

    worker = sub.add_parser(
        "worker", help="lease, compute and commit sweep units from a "
                       "`repro coordinate` endpoint until the grid is "
                       "done (exit 0) or the coordinator dies (exit 2)")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    worker.add_argument("--id", default=None,
                        help="worker id (default: hostname-pid)")
    worker.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to wait for the coordinator's "
                             "readiness probe (default 10)")
    worker.add_argument("--cache-dir", default=".repro-cache",
                        help="shared result-cache directory")
    worker.add_argument("--no-cache", action="store_true",
                        help="work without the shared result cache")
    worker.add_argument("--fault-plan", default=None,
                        help=argparse.SUPPRESS)     # chaos tests only
    worker.set_defaults(func=_cmd_worker)

    cache = sub.add_parser(
        "cache", help="maintain the on-disk result cache")
    cache.add_argument("action", choices=("prune", "clear"),
                       help="prune drops stale-format and corrupt "
                            "entries and reports reclaimed bytes; "
                            "clear drops everything")
    cache.add_argument("--cache-dir", default=".repro-cache",
                       help="result-cache directory")
    cache.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the fault-tolerant analysis service "
                      "(supervised warm-session workers behind an "
                      "HTTP/JSON acceptor)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="listen port (0 picks a free one; the "
                            "bound address is printed on startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="supervised worker processes (default 2)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="max queued+in-flight requests before "
                            "shedding with 429 (default 16)")
    serve.add_argument("--request-timeout", type=float, default=60.0,
                       help="default per-request deadline in seconds; "
                            "requests may set a tighter "
                            "deadline_seconds (default 60)")
    serve.add_argument("--retry-limit", type=int, default=1,
                       help="re-dispatches after a worker failure "
                            "before the request fails with 503 "
                            "(default 1)")
    serve.add_argument("--session-limit", type=int, default=8,
                       help="warm sessions kept per worker (LRU; "
                            "default 8)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="shared result-cache directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the shared result cache")
    serve.add_argument("--self-check", action="store_true",
                       help="certified mode for every request")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds SIGTERM waits for in-flight work "
                            "before giving up (exit 1)")
    serve.add_argument("--fault-plan", default=None,
                       help=argparse.SUPPRESS)   # chaos testing only
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
