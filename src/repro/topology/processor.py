"""The topology processor (paper Section II-C).

Maps telemetered breaker statuses into the *believed* topology — the set
of lines the EMS considers closed (the paper's ``k_i``).  State estimation
and OPF both run against this view; poisoning the statuses therefore
poisons everything downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.exceptions import ModelError
from repro.grid.network import Grid
from repro.topology.statuses import LineStatus, StatusTelemetry


@dataclass
class TopologyView:
    """The processor's output: which lines the EMS believes are closed.

    ``mapped_lines`` is the believed topology (k_i true); the exclusion /
    inclusion diagnostics compare it with the physical truth.
    """

    grid: Grid
    mapped_lines: List[int]

    @property
    def excluded_lines(self) -> List[int]:
        """In-service lines the EMS wrongly believes are open (p_i)."""
        mapped = set(self.mapped_lines)
        return [l.index for l in self.grid.lines
                if l.in_service and l.index not in mapped]

    @property
    def included_lines(self) -> List[int]:
        """Open lines the EMS wrongly believes are closed (q_i)."""
        return [i for i in self.mapped_lines
                if not self.grid.line(i).in_service]

    @property
    def is_faithful(self) -> bool:
        return not self.excluded_lines and not self.included_lines

    def is_connected(self) -> bool:
        return self.grid.is_connected(self.mapped_lines)


class TopologyProcessor:
    """Builds the believed topology from status telemetry."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid

    def map_topology(self, telemetry: Optional[StatusTelemetry] = None
                     ) -> TopologyView:
        """Map the telemetry into a :class:`TopologyView`.

        With no telemetry supplied, uses faithful reports derived from the
        physical line statuses.
        """
        if telemetry is None:
            telemetry = StatusTelemetry.from_grid(self.grid)
        mapped = []
        for line in self.grid.lines:
            if telemetry.status(line.index) is LineStatus.CLOSED:
                mapped.append(line.index)
        return TopologyView(self.grid, mapped)

    def validate(self, view: TopologyView) -> List[str]:
        """Operational sanity checks a real processor would run.

        Returns a list of human-readable warnings (empty when clean).
        The checks intentionally do *not* catch stealthy single-line
        errors — that is the vulnerability the paper exploits.
        """
        warnings = []
        if not view.is_connected():
            warnings.append("believed topology is disconnected")
        for bus in self.grid.buses:
            incident = [l for l in self.grid.lines_at(bus.index)
                        if l.index in set(view.mapped_lines)]
            if not incident:
                warnings.append(f"bus {bus.index} is isolated")
        return warnings
