"""Topology processing substrate: breaker statuses and the topology
processor that maps them into the network model the EMS believes."""

from repro.topology.statuses import LineStatus, StatusTelemetry
from repro.topology.processor import TopologyProcessor, TopologyView

__all__ = [
    "LineStatus",
    "StatusTelemetry",
    "TopologyProcessor",
    "TopologyView",
]
