"""Breaker/switch status telemetry.

Each line's breakers report OPEN or CLOSED; the collection of reports is
what the topology processor consumes.  Status integrity mirrors the
paper's line attributes: a *secured* status cannot be spoofed, a *fixed*
(core) line is never legitimately opened.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.exceptions import ModelError
from repro.grid.network import Grid


class LineStatus(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"

    @classmethod
    def of(cls, in_service: bool) -> "LineStatus":
        return cls.CLOSED if in_service else cls.OPEN


@dataclass(frozen=True)
class StatusReport:
    """One line's reported breaker status."""

    line_index: int
    status: LineStatus
    spoofed: bool = False


class StatusTelemetry:
    """The full set of status reports arriving at the control center.

    Build from the physical grid with :meth:`from_grid`, then apply
    spoofing with :meth:`spoof` (which enforces the security flags).
    """

    def __init__(self, reports: Dict[int, StatusReport]) -> None:
        self.reports = dict(reports)

    @classmethod
    def from_grid(cls, grid: Grid) -> "StatusTelemetry":
        """Faithful telemetry: reported status equals true status."""
        return cls({
            line.index: StatusReport(line.index,
                                     LineStatus.of(line.in_service))
            for line in grid.lines
        })

    def status(self, line_index: int) -> LineStatus:
        try:
            return self.reports[line_index].status
        except KeyError:
            raise ModelError(f"no status report for line {line_index}")

    def spoof(self, line_index: int, status: LineStatus,
              secured: bool = False) -> "StatusTelemetry":
        """A copy with one line's report falsified.

        Raises :class:`ModelError` when the status channel is secured —
        the spoof would be rejected (paper Eqs. 11-12 preconditions).
        """
        if secured:
            raise ModelError(
                f"status of line {line_index} is integrity-protected")
        if line_index not in self.reports:
            raise ModelError(f"no status report for line {line_index}")
        reports = dict(self.reports)
        reports[line_index] = StatusReport(line_index, status, spoofed=True)
        return StatusTelemetry(reports)

    def spoofed_lines(self) -> List[int]:
        return sorted(i for i, r in self.reports.items() if r.spoofed)

    def closed_lines(self) -> List[int]:
        return sorted(i for i, r in self.reports.items()
                      if r.status is LineStatus.CLOSED)
