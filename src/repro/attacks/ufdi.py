"""Undetected False Data Injection (UFDI) attack construction.

Implements the classic Liu-Ning-Reiter construction (CCS 2009): any attack
vector in the column space of the measurement matrix, ``a = H c``, shifts
the state estimate by ``c`` while leaving the bad-data residual unchanged.

Also implements the *restricted* variant the paper's attacker model needs:
find a non-zero ``c`` whose induced measurement changes touch only the
measurements the attacker can actually alter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.model import AttackerModel
from repro.estimation.measurement import MeasurementPlan
from repro.exceptions import ModelError
from repro.grid.matrices import measurement_matrix, state_order
from repro.grid.network import Grid


@dataclass
class UfdiAttack:
    """A stealthy state-shift attack.

    ``state_shift`` maps bus index to the injected angle error ``c_j``;
    ``measurement_deltas`` maps potential-measurement index to the false
    data that must be added to keep the shift undetected.
    """

    state_shift: Dict[int, float]
    measurement_deltas: Dict[int, float]

    @property
    def infected_states(self) -> List[int]:
        return sorted(b for b, shift in self.state_shift.items()
                      if abs(shift) > 1e-12)

    @property
    def altered_measurements(self) -> List[int]:
        return sorted(i for i, delta in self.measurement_deltas.items()
                      if abs(delta) > 1e-12)


def craft_attack(grid: Grid, state_shift: Dict[int, float],
                 topology: Optional[Sequence[int]] = None,
                 tolerance: float = 1e-12) -> UfdiAttack:
    """Build ``a = H c`` for a chosen state shift (perfect knowledge)."""
    order = state_order(grid)
    c = np.zeros(len(order))
    for bus, shift in state_shift.items():
        if bus == grid.reference_bus:
            raise ModelError("cannot shift the reference-bus angle")
        if bus not in order:
            raise ModelError(f"unknown state bus {bus}")
        c[order.index(bus)] = shift
    H = measurement_matrix(grid, topology)
    a = H @ c
    deltas = {i + 1: float(a[i]) for i in range(len(a))
              if abs(a[i]) > tolerance}
    shifts = {bus: float(shift) for bus, shift in state_shift.items()}
    return UfdiAttack(shifts, deltas)


def restricted_attack_space(attacker: AttackerModel,
                            topology: Optional[Sequence[int]] = None,
                            tolerance: float = 1e-9) -> np.ndarray:
    """Basis of state shifts feasible under the attacker's restrictions.

    A shift ``c`` is feasible when every *taken* measurement it perturbs
    is alterable by the attacker: rows of H belonging to taken but
    non-alterable measurements must vanish on ``c``.  Returns an
    orthonormal basis (columns) of that null space — empty (shape
    ``(n, 0)``) when the protected measurements pin every state, which is
    the Bobba et al. defense condition.
    """
    grid = attacker.grid
    H = measurement_matrix(grid, topology)
    protected_rows = [
        i - 1 for i in attacker.plan.taken_indices()
        if not attacker.can_alter_measurement(i)
    ]
    if not protected_rows:
        return np.eye(grid.num_buses - 1)
    H_protected = H[protected_rows, :]
    # Null space via SVD.
    _, singular, vt = np.linalg.svd(H_protected)
    rank = int(np.sum(singular > tolerance))
    return vt[rank:].T


def feasible_attack(attacker: AttackerModel,
                    magnitude: float = 0.05,
                    topology: Optional[Sequence[int]] = None
                    ) -> Optional[UfdiAttack]:
    """A concrete UFDI attack within the attacker's restrictions.

    Scales the first basis vector of the restricted space to the given
    angle magnitude and checks the resource budgets; returns None when no
    restricted stealthy attack exists (or budgets are exceeded by every
    basis direction).
    """
    basis = restricted_attack_space(attacker, topology)
    if basis.shape[1] == 0:
        return None
    grid = attacker.grid
    order = state_order(grid)
    for column in basis.T:
        scale = magnitude / max(abs(column).max(), 1e-12)
        shift = {bus: float(column[i] * scale)
                 for i, bus in enumerate(order)
                 if abs(column[i] * scale) > 1e-12}
        attack = craft_attack(grid, shift, topology)
        altered = {
            i for i in attack.altered_measurements
            if attacker.plan.is_taken(i)
        }
        if not attacker.check_alteration_set(altered):
            return attack
    return None
