"""The attacker model: accessibility, resources and knowledge (Table I).

Wraps a case definition's attack attributes behind the queries the
framework and the fast analyzer need: which measurements the attacker can
successfully alter (``r_i`` and ``s_i``), which line statuses can be
spoofed (``v_i``, ``w_i`` and the per-line alterability), which admittances
are known (``g_i``), and the resource budgets (measurement count and
substation count ``T_B``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.estimation.measurement import MeasurementPlan
from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition, LineSpec
from repro.grid.network import Grid


@dataclass
class AttackerModel:
    """All attack attributes of a scenario in queryable form."""

    grid: Grid
    plan: MeasurementPlan
    line_specs: List[LineSpec]
    max_measurements: int
    max_buses: int

    @classmethod
    def from_case(cls, case: CaseDefinition,
                  grid: Optional[Grid] = None) -> "AttackerModel":
        grid = grid or case.build_grid()
        plan = MeasurementPlan.from_case(case, grid)
        return cls(grid, plan, list(case.line_specs),
                   case.resource_measurements, case.resource_buses)

    # -- line-level queries ---------------------------------------------------

    def line_spec(self, line_index: int) -> LineSpec:
        return self.line_specs[line_index - 1]

    def knows_admittance(self, line_index: int) -> bool:
        """g_i: can the attacker compute the right injection amounts?"""
        return self.line_spec(line_index).knowledge

    def can_exclude(self, line_index: int) -> bool:
        """Preconditions of an exclusion attack (paper Eq. 11)."""
        spec = self.line_spec(line_index)
        return (spec.in_true_topology and not spec.in_core
                and not spec.status_secured and spec.status_alterable)

    def can_include(self, line_index: int) -> bool:
        """Preconditions of an inclusion attack (paper Eq. 12)."""
        spec = self.line_spec(line_index)
        return (not spec.in_true_topology and not spec.status_secured
                and spec.status_alterable)

    def exclusion_candidates(self) -> List[int]:
        return [s.index for s in self.line_specs if self.can_exclude(s.index)]

    def inclusion_candidates(self) -> List[int]:
        return [s.index for s in self.line_specs if self.can_include(s.index)]

    # -- measurement-level queries --------------------------------------------

    def can_alter_measurement(self, index: int) -> bool:
        """r_i and not s_i — a successful false-data injection (Eq. 20)."""
        return (self.plan.is_alterable(index)
                and not self.plan.is_secured(index))

    def alterable_measurements(self) -> List[int]:
        total = self.grid.num_potential_measurements
        return [i for i in range(1, total + 1)
                if self.can_alter_measurement(i)]

    def check_alteration_set(self, measurements: Set[int]) -> List[str]:
        """Why (if at all) an alteration set violates the attacker model.

        Returns a list of violated-constraint descriptions; empty means
        the set is within the attacker's power (Eqs. 20-22).
        """
        problems = []
        for index in sorted(measurements):
            if not self.plan.is_taken(index):
                problems.append(f"measurement {index} is not taken; "
                                f"altering it is meaningless")
            if not self.plan.is_alterable(index):
                problems.append(f"measurement {index} is not accessible")
            elif self.plan.is_secured(index):
                problems.append(f"measurement {index} is secured")
        if len(measurements) > self.max_measurements:
            problems.append(
                f"{len(measurements)} alterations exceed the budget of "
                f"{self.max_measurements}")
        buses = {self.plan.location_of(i) for i in measurements}
        if len(buses) > self.max_buses:
            problems.append(
                f"measurements span {len(buses)} buses, more than T_B = "
                f"{self.max_buses}")
        return problems

    def compromised_buses(self, measurements: Set[int]) -> Set[int]:
        """h_j: the substations an alteration set requires (Eq. 21)."""
        return {self.plan.location_of(i) for i in measurements}
