"""Attack substrate: the attacker model (Table I attributes), classic UFDI
attack construction, and concrete topology-poisoning attacks."""

from repro.attacks.model import AttackerModel
from repro.attacks.topology_poisoning import (
    TopologyPoisoningAttack,
    apply_to_readings,
    apply_to_telemetry,
    craft_topology_attack,
    validate_against_attacker,
)
from repro.attacks.ufdi import (
    UfdiAttack,
    craft_attack,
    feasible_attack,
    restricted_attack_space,
)

__all__ = [
    "AttackerModel",
    "TopologyPoisoningAttack",
    "UfdiAttack",
    "apply_to_readings",
    "apply_to_telemetry",
    "craft_attack",
    "craft_topology_attack",
    "feasible_attack",
    "restricted_attack_space",
    "validate_against_attacker",
]
