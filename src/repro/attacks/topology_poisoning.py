"""Concrete topology-poisoning attacks (paper Sections III-C and III-D).

Given an operating point (the physical flows the attacker observes), an
exclusion or inclusion target and an optional state shift, computes the
exact false data that keeps the poisoned topology consistent — paper
Eqs. (13)-(16) for the pure topology attack and (23)-(29) for the
state-strengthened variant — and can apply it to simulated telemetry so
the full SE + BDD pipeline can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.attacks.model import AttackerModel
from repro.estimation.measurement import MeasurementPlan
from repro.exceptions import ModelError
from repro.grid.network import Grid
from repro.topology.statuses import LineStatus, StatusTelemetry


@dataclass
class TopologyPoisoningAttack:
    """A fully-specified stealthy topology attack.

    ``excluded`` / ``included`` are line indices; ``state_shift`` maps bus
    to the UFDI angle injection (empty for the pure topology variant).
    ``measurement_deltas`` is the resulting false data (potential-
    measurement index -> additive change), and ``believed_load_changes``
    the induced change in the loads the EMS will estimate.
    """

    excluded: List[int]
    included: List[int]
    state_shift: Dict[int, float] = field(default_factory=dict)
    measurement_deltas: Dict[int, float] = field(default_factory=dict)
    believed_load_changes: Dict[int, float] = field(default_factory=dict)

    @property
    def altered_measurements(self) -> List[int]:
        return sorted(i for i, d in self.measurement_deltas.items()
                      if abs(d) > 1e-12)

    def believed_topology(self, grid: Grid) -> List[int]:
        mapped = [l.index for l in grid.lines
                  if l.in_service and l.index not in set(self.excluded)]
        mapped.extend(self.included)
        return sorted(mapped)


def craft_topology_attack(grid: Grid,
                          flows: Dict[int, float],
                          angles: Dict[int, float],
                          excluded: Optional[List[int]] = None,
                          included: Optional[List[int]] = None,
                          state_shift: Optional[Dict[int, float]] = None,
                          tolerance: float = 1e-12
                          ) -> TopologyPoisoningAttack:
    """Compute the required false data for a topology attack.

    ``flows``/``angles`` describe the current physical operating point.
    ``state_shift`` (``delta-theta``) adds the UFDI strengthening of paper
    Section III-D; the reference bus cannot be shifted.
    """
    excluded = sorted(excluded or [])
    included = sorted(included or [])
    state_shift = dict(state_shift or {})
    if grid.reference_bus in state_shift:
        raise ModelError("cannot shift the reference-bus angle")
    for line_index in excluded:
        if not grid.line(line_index).in_service:
            raise ModelError(f"line {line_index} is open; cannot exclude")
    for line_index in included:
        if grid.line(line_index).in_service:
            raise ModelError(f"line {line_index} is closed; cannot include")
    overlap = set(excluded) & set(included)
    if overlap:
        raise ModelError(f"lines {sorted(overlap)} both excluded and "
                         f"included")

    l = grid.num_lines
    believed = set(l_.index for l_ in grid.lines if l_.in_service)
    believed -= set(excluded)
    believed |= set(included)

    def dtheta(bus: int) -> float:
        return state_shift.get(bus, 0.0)

    # Per-line total measurement change Delta-P'_i^L (Eqs. 13-15, 23-27).
    line_delta: Dict[int, float] = {}
    for line in grid.lines:
        idx = line.index
        physical_flow = flows.get(idx, 0.0)
        topo_delta = 0.0
        if idx in excluded:
            topo_delta = -physical_flow                   # Eq. 13
        elif idx in included:
            would_be = float(line.admittance) * (
                angles[line.from_bus] - angles[line.to_bus])
            topo_delta = would_be                          # Eq. 14
        state_delta = 0.0
        if idx in believed:                                # Eqs. 24-25
            state_delta = float(line.admittance) * (
                dtheta(line.from_bus) - dtheta(line.to_bus))
        line_delta[idx] = topo_delta + state_delta         # Eq. 27

    # Per-bus consumption change (Eqs. 16 / 28).
    bus_delta: Dict[int, float] = {}
    for bus in grid.buses:
        total = 0.0
        for line in grid.lines_in(bus.index):
            total += line_delta[line.index]
        for line in grid.lines_out(bus.index):
            total -= line_delta[line.index]
        bus_delta[bus.index] = total

    deltas: Dict[int, float] = {}
    for line in grid.lines:
        change = line_delta[line.index]
        if abs(change) > tolerance:
            deltas[line.index] = change              # forward measurement
            deltas[l + line.index] = -change         # backward measurement
    for bus in grid.buses:
        change = bus_delta[bus.index]
        if abs(change) > tolerance:
            deltas[2 * l + bus.index] = change

    load_changes = {bus: change for bus, change in bus_delta.items()
                    if abs(change) > tolerance}
    return TopologyPoisoningAttack(excluded, included, state_shift,
                                   deltas, load_changes)


def validate_against_attacker(attack: TopologyPoisoningAttack,
                              attacker: AttackerModel) -> List[str]:
    """All attacker-model violations of a crafted attack (paper Eqs. 11,
    12, 17-22); empty means the attack is within the attacker's power."""
    problems: List[str] = []
    for line_index in attack.excluded:
        if not attacker.can_exclude(line_index):
            problems.append(f"line {line_index} cannot be excluded "
                            f"(core, secured, or status not alterable)")
    for line_index in attack.included:
        if not attacker.can_include(line_index):
            problems.append(f"line {line_index} cannot be included")
    needed = {
        i for i in attack.altered_measurements
        if attacker.plan.is_taken(i)
    }
    # Knowledge requirement (Eq. 19): flow changes require the admittance.
    l = attacker.grid.num_lines
    for index in needed:
        if index <= 2 * l:
            line_index = index if index <= l else index - l
            if not attacker.knows_admittance(line_index):
                problems.append(
                    f"admittance of line {line_index} unknown; cannot "
                    f"compute the required change of measurement {index}")
    problems.extend(attacker.check_alteration_set(needed))
    return problems


def apply_to_readings(attack: TopologyPoisoningAttack,
                      plan: MeasurementPlan,
                      readings: np.ndarray) -> np.ndarray:
    """Add the attack's false data to taken-measurement readings."""
    taken = plan.taken_indices()
    if len(readings) != len(taken):
        raise ModelError("readings length does not match the plan")
    attacked = readings.copy()
    for position, index in enumerate(taken):
        attacked[position] += attack.measurement_deltas.get(index, 0.0)
    return attacked


def apply_to_telemetry(attack: TopologyPoisoningAttack,
                       telemetry: StatusTelemetry) -> StatusTelemetry:
    """Spoof the breaker statuses of the attacked lines."""
    poisoned = telemetry
    for line_index in attack.excluded:
        poisoned = poisoned.spoof(line_index, LineStatus.OPEN)
    for line_index in attack.included:
        poisoned = poisoned.spoof(line_index, LineStatus.CLOSED)
    return poisoned
