"""Condition-monitored, residual-verified linear algebra.

Replacements for the raw ``np.linalg.inv`` / ``np.linalg.solve`` /
``np.linalg.matrix_rank`` calls in the analysis core:

* :class:`GuardedFactorization` — an LU factorization that estimates
  its matrix's 1-norm condition number (Hager's method: O(n²) per
  estimate once factorized), refuses to produce results past the
  policy's fail threshold, and verifies every solve with iterative
  refinement plus a relative-residual check.
* :func:`guarded_solve` / :func:`guarded_inverse` — one-shot wrappers.
* :func:`guarded_rank` — SVD rank with a cutoff *scaled to the matrix*
  (``s > s_max * rtol``) instead of numpy's machine-epsilon default,
  flagging near-rank-deficiency.

Fail-level findings raise :class:`~repro.exceptions.NumericalInstability`
(the analysis layers surface these as a ``numerical_unstable`` status);
warning-level findings are emitted through
:func:`repro.numerics.diagnostics.collect_diagnostics` sinks.
"""

from __future__ import annotations

import warnings as _pywarnings
from typing import Optional

import numpy as np

from repro.exceptions import NumericalInstability
from repro.numerics.diagnostics import (
    FATAL,
    WARNING,
    NumericalDiagnostic,
    emit,
)
from repro.numerics.policy import NumericsPolicy, default_policy
from repro.numerics.sparse import (
    CsrMatrix,
    SingularMatrixError,
    SparseLU,
    UpdatedSolver,
)

try:                                   # scipy ships with the toolchain,
    from scipy.linalg import lu_factor, lu_solve    # but stay importable
    _HAVE_SCIPY = True                              # without it
except ImportError:                    # pragma: no cover - env dependent
    _HAVE_SCIPY = False


def _max_abs(values: np.ndarray) -> float:
    return float(np.max(np.abs(values))) if values.size else 0.0


def _fail(operation: str, context: str, detail: str,
          condition: Optional[float] = None,
          residual: Optional[float] = None) -> NumericalInstability:
    diagnostic = NumericalDiagnostic(
        operation=operation, context=context, severity=FATAL,
        detail=detail, condition=condition, residual=residual)
    return NumericalInstability(diagnostic.render(), diagnostic)


def _warn(operation: str, context: str, detail: str,
          condition: Optional[float] = None,
          residual: Optional[float] = None) -> None:
    emit(NumericalDiagnostic(
        operation=operation, context=context, severity=WARNING,
        detail=detail, condition=condition, residual=residual))


class GuardedFactorization:
    """A verified LU factorization of a square matrix.

    Factorizes once, estimates the condition number once, then serves
    any number of refined, residual-checked solves (vector or matrix
    right-hand sides) — the pattern behind the WLS gain matrix and the
    PTDF/LCDF base-susceptance inverses, where one matrix backs many
    solves.
    """

    def __init__(self, matrix, context: str = "matrix",
                 policy: Optional[NumericsPolicy] = None) -> None:
        self.context = context
        self.policy = policy or default_policy()
        if isinstance(matrix, CsrMatrix):
            if matrix.shape[0] != matrix.shape[1]:
                raise ValueError(f"{context}: expected a square matrix, "
                                 f"got shape {matrix.shape}")
            if not np.all(np.isfinite(matrix.data)):
                raise _fail("factorize", context,
                            "matrix contains non-finite entries")
            self.backend = "sparse"
            self._a = matrix
            self._n = matrix.shape[0]
            self.anorm = matrix.one_norm()
        else:
            a = np.asarray(matrix, dtype=float)
            if a.ndim != 2 or a.shape[0] != a.shape[1]:
                raise ValueError(f"{context}: expected a square matrix, "
                                 f"got shape {a.shape}")
            if not np.all(np.isfinite(a)):
                raise _fail("factorize", context,
                            "matrix contains non-finite entries")
            self.backend = "dense"
            self._a = a
            self._n = a.shape[0]
            self.anorm = float(
                np.max(np.abs(a).sum(axis=0))) if self._n else 0.0
        self._factorize()
        self.condition = self._estimate_condition()
        if self.condition >= self.policy.condition_fail:
            raise _fail(
                "factorize", context,
                f"condition estimate exceeds fail threshold "
                f"{self.policy.condition_fail:.1e}",
                condition=self.condition)
        if self.condition >= self.policy.condition_warn:
            _warn("factorize", context,
                  f"ill-conditioned (warn threshold "
                  f"{self.policy.condition_warn:.1e})",
                  condition=self.condition)

    # -- factorization ------------------------------------------------

    def _factorize(self) -> None:
        if self._n == 0:
            self._lu = None
            return
        if self.backend == "sparse":
            try:
                self._lu = SparseLU(self._a)
            except SingularMatrixError:
                raise _fail("factorize", self.context,
                            "matrix is singular to working precision") \
                    from None
            if not np.all(np.isfinite(self._lu._u_diag)):
                raise _fail("factorize", self.context,
                            "matrix is singular to working precision")
            return
        if _HAVE_SCIPY:
            with _pywarnings.catch_warnings():
                # scipy warns (LinAlgWarning) on an exactly-singular
                # input; we detect that case ourselves from U's diagonal
                # and raise a structured failure instead.
                _pywarnings.simplefilter("ignore")
                lu, piv = lu_factor(self._a, check_finite=False)
            diag = np.abs(np.diag(lu))
            if not np.all(np.isfinite(lu)) or np.any(diag == 0.0):
                raise _fail("factorize", self.context,
                            "matrix is singular to working precision")
            self._lu = (lu, piv)
        else:                          # pragma: no cover - env dependent
            try:
                np.linalg.solve(self._a, np.zeros(self._n))
            except np.linalg.LinAlgError:
                raise _fail("factorize", self.context,
                            "matrix is singular to working precision") \
                    from None
            self._lu = None

    def _raw_solve(self, rhs: np.ndarray,
                   transpose: bool = False) -> np.ndarray:
        if self._n == 0:
            return np.zeros_like(rhs)
        if self.backend == "sparse":
            return (self._lu.solve_transpose(rhs) if transpose
                    else self._lu.solve(rhs))
        if _HAVE_SCIPY and self._lu is not None:
            return lu_solve(self._lu, rhs, trans=1 if transpose else 0,
                            check_finite=False)
        matrix = self._a.T if transpose else self._a
        return np.linalg.solve(matrix, rhs)    # pragma: no cover

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        if self.backend == "sparse":
            return self._a.matvec(x)
        return self._a @ x

    # -- condition estimation (Hager 1988 / Higham 1988) ---------------

    def _estimate_condition(self) -> float:
        n = self._n
        if n == 0:
            return 0.0
        if n == 1:
            pivot = (abs(self._a.diagonal()[0]) if self.backend == "sparse"
                     else abs(self._a[0, 0]))
            return float("inf") if pivot == 0.0 else 1.0
        with np.errstate(all="ignore"):
            x = np.full(n, 1.0 / n)
            estimate = 0.0
            for _ in range(5):
                y = self._raw_solve(x)
                if not np.all(np.isfinite(y)):
                    return float("inf")
                estimate = float(np.abs(y).sum())
                xi = np.where(y >= 0.0, 1.0, -1.0)
                z = self._raw_solve(xi, transpose=True)
                if not np.all(np.isfinite(z)):
                    return float("inf")
                j = int(np.argmax(np.abs(z)))
                if float(abs(z[j])) <= float(z @ x):
                    break
                x = np.zeros(n)
                x[j] = 1.0
        condition = self.anorm * estimate
        return condition if np.isfinite(condition) else float("inf")

    # -- verified solves ----------------------------------------------

    def _relative_residual(self, rhs: np.ndarray,
                           solution: np.ndarray) -> float:
        residual = rhs - self._matvec(solution)
        denominator = self.anorm * _max_abs(solution) + _max_abs(rhs)
        if denominator == 0.0:
            return _max_abs(residual)
        value = _max_abs(residual) / denominator
        return value if np.isfinite(value) else float("inf")

    def solve(self, rhs, operation: str = "solve") -> np.ndarray:
        """Solve ``A x = rhs`` with refinement and residual verification.

        ``rhs`` may be a vector or a matrix of stacked right-hand-side
        columns.  Raises :class:`NumericalInstability` when the verified
        relative residual cannot be driven below the policy's fail
        threshold.
        """
        b = np.asarray(rhs, dtype=float)
        if not np.all(np.isfinite(b)):
            raise _fail(operation, self.context,
                        "right-hand side contains non-finite entries")
        with np.errstate(all="ignore"):
            x = self._raw_solve(b)
            if not np.all(np.isfinite(x)):
                raise _fail(operation, self.context,
                            "solve produced non-finite values",
                            condition=self.condition)
            residual = self._relative_residual(b, x)
            for _ in range(self.policy.refine_steps):
                if residual <= self.policy.residual_warn:
                    break
                correction = self._raw_solve(b - self._matvec(x))
                if not np.all(np.isfinite(correction)):
                    break
                refined = x + correction
                refined_residual = self._relative_residual(b, refined)
                if refined_residual >= residual:
                    break
                x, residual = refined, refined_residual
        if residual > self.policy.residual_fail:
            raise _fail(operation, self.context,
                        f"verified relative residual exceeds fail "
                        f"threshold {self.policy.residual_fail:.1e}",
                        condition=self.condition, residual=residual)
        if residual > self.policy.residual_warn:
            _warn(operation, self.context,
                  f"verified relative residual exceeds warn threshold "
                  f"{self.policy.residual_warn:.1e}",
                  condition=self.condition, residual=residual)
        return x

    def inverse(self) -> np.ndarray:
        """The verified explicit inverse (a solve against identity)."""
        return self.solve(np.eye(self._n), operation="inverse")

    def updated(self, updates, operation: str = "rank-1 update"
                ) -> UpdatedSolver:
        """A Sherman–Morrison/Woodbury solver for ``A + Σ α u v^T``.

        Solves against the updated matrix reuse this factorization's
        verified :meth:`solve`; a singular capacitance matrix (e.g. a
        bridge-line outage) raises :class:`NumericalInstability` with
        the same structured diagnostics as a direct factorization.
        """
        try:
            return UpdatedSolver(self.solve, self._matvec, updates)
        except SingularMatrixError as exc:
            raise _fail(operation, self.context, str(exc),
                        condition=self.condition) from None


def guarded_solve(matrix, rhs, context: str = "linear system",
                  policy: Optional[NumericsPolicy] = None) -> np.ndarray:
    """Factorize, condition-check and verify one solve of ``A x = b``."""
    return GuardedFactorization(matrix, context, policy).solve(rhs)


def guarded_inverse(matrix, context: str = "matrix inverse",
                    policy: Optional[NumericsPolicy] = None) -> np.ndarray:
    """A condition-checked, residual-verified replacement for
    ``np.linalg.inv`` (factorized solve against the identity)."""
    return GuardedFactorization(matrix, context, policy).inverse()


def guarded_rank(matrix, context: str = "matrix",
                 rtol: Optional[float] = None,
                 policy: Optional[NumericsPolicy] = None) -> int:
    """Numerical rank with a matrix-scaled singular-value cutoff.

    Counts singular values above ``s_max * rtol`` (policy
    ``rank_rtol`` by default, i.e. 1e-8 — far stricter than numpy's
    machine-epsilon-scaled default).  Emits a warning diagnostic when
    the smallest counted singular value sits within 10x of the cutoff:
    the rank decision itself is numerically fragile.
    """
    active = policy or default_policy()
    tolerance = active.rank_rtol if rtol is None else rtol
    if isinstance(matrix, CsrMatrix):
        # Sparse branch: numerical rank from the LU pivot magnitudes of
        # an ``allow_singular`` factorization (tiny pivots are recorded,
        # never divided through), with the same matrix-scaled cutoff and
        # the same near-deficiency warning semantics.  Only meaningful
        # for square matrices (the observability guard passes the Gram
        # matrix H^T H, whose rank equals H's).
        if matrix.nnz == 0 or min(matrix.shape) == 0:
            return 0
        if not np.all(np.isfinite(matrix.data)):
            raise _fail("rank", context,
                        "matrix contains non-finite entries")
        lu = SparseLU(matrix, allow_singular=True)
        magnitudes = np.sort(lu.pivot_magnitudes)[::-1]
        if magnitudes.size == 0 or magnitudes[0] == 0.0:
            return 0
        cutoff = float(magnitudes[0]) * tolerance
        rank = int(np.count_nonzero(magnitudes > cutoff))
        if rank and float(magnitudes[rank - 1]) <= cutoff * 10.0:
            _warn("rank", context,
                  f"near-rank-deficient: smallest counted pivot "
                  f"{magnitudes[rank - 1]:.3e} within 10x of cutoff "
                  f"{cutoff:.3e}")
        return rank
    a = np.asarray(matrix, dtype=float)
    if a.size == 0:
        return 0
    if not np.all(np.isfinite(a)):
        raise _fail("rank", context,
                    "matrix contains non-finite entries")
    singular_values = np.linalg.svd(a, compute_uv=False)
    cutoff = float(singular_values[0]) * tolerance
    rank = int(np.count_nonzero(singular_values > cutoff))
    if rank and float(singular_values[rank - 1]) <= cutoff * 10.0:
        _warn("rank", context,
              f"near-rank-deficient: smallest counted singular value "
              f"{singular_values[rank - 1]:.3e} within 10x of cutoff "
              f"{cutoff:.3e}")
    return rank
