"""Numerical-integrity guardrails for the analysis core.

Condition-monitored, residual-verified linear algebra
(:mod:`repro.numerics.guards`), the warn/fail threshold policy
(:mod:`repro.numerics.policy`) and the structured diagnostics the
guards emit (:mod:`repro.numerics.diagnostics`).  Fail-level findings
raise :class:`~repro.exceptions.NumericalInstability`, which the
analysis layers surface end to end as a ``numerical_unstable`` status
(report → sweep outcome → cache → service/fabric → CLI exit code 6)
instead of trusting silently-garbage floating point near the paper's
Eq. 37 decision boundaries.
"""

from repro.numerics.backend import (
    BACKENDS,
    SPARSE_AUTO_MIN_BUSES,
    default_backend,
    normalize_backend,
    resolve_backend,
    set_default_backend,
)
from repro.numerics.diagnostics import (
    FATAL,
    WARNING,
    NumericalDiagnostic,
    collect_diagnostics,
)
from repro.numerics.guards import (
    GuardedFactorization,
    guarded_inverse,
    guarded_rank,
    guarded_solve,
)
from repro.numerics.policy import NumericsPolicy, default_policy, set_policy
from repro.numerics.sparse import (
    CsrMatrix,
    SingularMatrixError,
    SparseLU,
    UpdatedSolver,
    rcm_ordering,
)

__all__ = [
    "BACKENDS",
    "FATAL",
    "SPARSE_AUTO_MIN_BUSES",
    "WARNING",
    "CsrMatrix",
    "GuardedFactorization",
    "NumericalDiagnostic",
    "NumericsPolicy",
    "SingularMatrixError",
    "SparseLU",
    "UpdatedSolver",
    "collect_diagnostics",
    "default_backend",
    "default_policy",
    "guarded_inverse",
    "guarded_rank",
    "guarded_solve",
    "normalize_backend",
    "rcm_ordering",
    "resolve_backend",
    "set_default_backend",
    "set_policy",
]
