"""Configurable thresholds for the guarded linear-algebra layer.

A :class:`NumericsPolicy` decides when a guarded operation *warns*
(emit a structured diagnostic, keep the result) and when it *fails*
(raise :class:`~repro.exceptions.NumericalInstability`, withhold the
result).  The defaults are deliberately conservative for double
precision: a condition number of 1e8 already costs ~8 of the ~16
significant digits, and a verified relative residual above 1e-6 means
the solve cannot be trusted near the paper's Eq. 37 boundary
comparisons.

Every threshold is overridable through the environment
(``REPRO_NUMERIC_CONDITION_WARN`` etc.), and :meth:`NumericsPolicy.key`
folds the active thresholds into scenario fingerprints so cached
verdicts never alias across policies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

_ENV_PREFIX = "REPRO_NUMERIC_"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(_ENV_PREFIX + name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(_ENV_PREFIX + name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class NumericsPolicy:
    """Warn/fail thresholds for condition numbers, residuals and ranks."""

    #: 1-norm condition-number estimate above which a factorization
    #: emits a warning diagnostic (result still returned).
    condition_warn: float = 1e8
    #: condition estimate above which the factorization refuses to
    #: produce results at all (``NumericalInstability``).
    condition_fail: float = 1e12
    #: verified relative residual ``|Ax-b| / (|A||x| + |b|)`` above
    #: which a solve warns (after iterative refinement).
    residual_warn: float = 1e-8
    #: residual above which the solve fails.
    residual_fail: float = 1e-6
    #: relative singular-value cutoff for :func:`guarded_rank`
    #: (``s > s_max * rank_rtol`` counts toward the rank) — scaled to
    #: the matrix instead of numpy's machine-epsilon default, so
    #: near-rank-deficient measurement plans are flagged instead of
    #: passing observability and estimating garbage.
    rank_rtol: float = 1e-8
    #: iterative-refinement steps attempted per verified solve.
    refine_steps: int = 2

    @classmethod
    def from_env(cls) -> "NumericsPolicy":
        return cls(
            condition_warn=_env_float("CONDITION_WARN", 1e8),
            condition_fail=_env_float("CONDITION_FAIL", 1e12),
            residual_warn=_env_float("RESIDUAL_WARN", 1e-8),
            residual_fail=_env_float("RESIDUAL_FAIL", 1e-6),
            rank_rtol=_env_float("RANK_RTOL", 1e-8),
            refine_steps=_env_int("REFINE_STEPS", 2),
        )

    def key(self) -> str:
        """Deterministic identity string for cache fingerprints."""
        return (f"cw={self.condition_warn!r};cf={self.condition_fail!r};"
                f"rw={self.residual_warn!r};rf={self.residual_fail!r};"
                f"rk={self.rank_rtol!r};it={self.refine_steps!r}")


_active: Optional[NumericsPolicy] = None


def default_policy() -> NumericsPolicy:
    """The process-wide active policy (environment-derived, cached)."""
    global _active
    if _active is None:
        _active = NumericsPolicy.from_env()
    return _active


def set_policy(policy: Optional[NumericsPolicy]) -> None:
    """Override (or with ``None`` reset) the process-wide policy.

    Test hook: the degeneracy suites tighten/loosen thresholds without
    round-tripping through the environment.
    """
    global _active
    _active = policy
