"""Structured diagnostics emitted by the guarded linear-algebra layer.

Fatal findings travel inside :class:`~repro.exceptions.NumericalInstability`;
warning-level findings (ill-conditioned but still usable) are delivered
to whoever registered a sink via :func:`collect_diagnostics` — the
analysis session uses this to convert them into run-notes on the
:class:`~repro.core.results.ImpactReport`.  With no sink registered,
warnings are dropped (fail-level findings still raise).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

#: diagnostic severities.
WARNING = "warning"
FATAL = "fatal"


@dataclass(frozen=True)
class NumericalDiagnostic:
    """One condition/residual/rank finding from a guarded operation."""

    operation: str            # "factorize" | "solve" | "inverse" | "rank"
    context: str              # which matrix, e.g. "wls gain matrix"
    severity: str             # WARNING | FATAL
    detail: str               # human-readable finding
    condition: Optional[float] = None   # 1-norm condition estimate
    residual: Optional[float] = None    # verified relative residual

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        parts = [f"{self.context}: {self.detail}"]
        if self.condition is not None:
            parts.append(f"cond~{self.condition:.2e}")
        if self.residual is not None:
            parts.append(f"residual~{self.residual:.2e}")
        return " ".join(parts)


_sinks: List[List[NumericalDiagnostic]] = []


def emit(diagnostic: NumericalDiagnostic) -> None:
    """Deliver a warning-level diagnostic to every registered sink."""
    for sink in _sinks:
        sink.append(diagnostic)


class collect_diagnostics:
    """Context manager collecting warning diagnostics into a list.

    >>> with collect_diagnostics() as warnings:
    ...     guarded_solve(A, b, context="...")
    >>> warnings     # the NumericalDiagnostics emitted inside the block
    """

    def __init__(self, sink: Optional[List[NumericalDiagnostic]] = None):
        self.sink: List[NumericalDiagnostic] = \
            sink if sink is not None else []

    def __enter__(self) -> List[NumericalDiagnostic]:
        _sinks.append(self.sink)
        return self.sink

    def __exit__(self, *exc_info) -> None:
        _sinks.remove(self.sink)
