"""In-repo sparse linear algebra (stdlib + numpy only — no scipy).

The scaling refactor (ROADMAP item 4) moves the whole analysis stack —
network matrices, PTDF/LODF sensitivities, WLS estimation and the
shift-factor OPF — onto factorized sparse solves.  This module provides
the primitives:

* :class:`CsrMatrix` — a compressed-sparse-row matrix with the handful
  of vectorized operations the stack needs (matvec, transpose, row and
  column selection, row scaling, and a weighted Gram product
  ``A^T diag(w) A`` for WLS gain matrices).
* :func:`rcm_ordering` — reverse Cuthill–McKee fill-reducing ordering
  (pseudo-peripheral start), applied symmetrically before factorizing.
* :class:`SparseLU` — a left-looking (Gilbert–Peierls) sparse LU with
  threshold partial pivoting and batched forward/backward/transpose
  triangular solves.  A ``allow_singular`` mode records pivot
  magnitudes without dividing through tiny pivots, which is what the
  scaled-rank observability guard consumes.
* :class:`UpdatedSolver` — Sherman–Morrison/Woodbury rank-k updates of
  an existing factorization, used for single-line outage/closure
  sensitivities without re-factorizing the base matrix.

Everything is deterministic: no randomized pivoting, no
hash-order-dependent iteration.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class SingularMatrixError(ValueError):
    """The matrix (or an update Schur complement) is numerically singular."""


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices ``[s0, s0+1, .., s0+l0-1, s1, ..]`` without a Python loop."""
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    nonempty = lengths > 0
    starts, lengths = starts[nonempty], lengths[nonempty]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(lengths)[:-1]
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


class CsrMatrix:
    """A real matrix in compressed-sparse-row form.

    ``data``/``indices``/``indptr`` follow the usual CSR convention;
    within each row the column indices are strictly increasing and
    duplicates have been summed (``from_coo`` guarantees this).
    """

    __slots__ = ("shape", "data", "indices", "indptr", "_rows_cache")

    def __init__(self, shape: Tuple[int, int], data: np.ndarray,
                 indices: np.ndarray, indptr: np.ndarray) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.data = np.asarray(data, dtype=float)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self._rows_cache: Optional[np.ndarray] = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_coo(cls, rows, cols, values,
                 shape: Tuple[int, int]) -> "CsrMatrix":
        """Build from triplets, summing duplicates (deterministically)."""
        r = np.asarray(rows, dtype=np.int64)
        c = np.asarray(cols, dtype=np.int64)
        v = np.asarray(values, dtype=float)
        if r.size == 0:
            return cls(shape, np.empty(0), np.empty(0, np.int64),
                       np.zeros(shape[0] + 1, np.int64))
        order = np.lexsort((c, r))
        r, c, v = r[order], c[order], v[order]
        first = np.empty(r.size, dtype=bool)
        first[0] = True
        np.logical_or(r[1:] != r[:-1], c[1:] != c[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        data = np.add.reduceat(v, starts)
        rr, cc = r[starts], c[starts]
        counts = np.bincount(rr, minlength=shape[0])
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(shape, data, cc, indptr)

    @classmethod
    def from_dense(cls, array) -> "CsrMatrix":
        a = np.asarray(array, dtype=float)
        rows, cols = np.nonzero(a)
        return cls.from_coo(rows, cols, a[rows, cols], a.shape)

    @classmethod
    def identity(cls, n: int) -> "CsrMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.ones(n), idx,
                   np.arange(n + 1, dtype=np.int64))

    # -- basic properties ----------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def _row_expand(self) -> np.ndarray:
        """The row index of every stored entry (cached)."""
        if self._rows_cache is None:
            counts = np.diff(self.indptr)
            self._rows_cache = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), counts)
        return self._rows_cache

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        out[self._row_expand(), self.indices] = self.data  # entries unique
        return out

    def diagonal(self) -> np.ndarray:
        n = min(self.shape)
        out = np.zeros(n)
        rows = self._row_expand()
        mask = (rows == self.indices) & (rows < n)
        out[rows[mask]] = self.data[mask]
        return out

    def one_norm(self) -> float:
        """Maximum absolute column sum (matches the dense guard's anorm)."""
        if self.nnz == 0:
            return 0.0
        sums = np.bincount(self.indices, weights=np.abs(self.data),
                           minlength=self.shape[1])
        return float(sums.max())

    # -- products ------------------------------------------------------

    def matvec(self, x) -> np.ndarray:
        """``A @ x`` for a vector (n,) or stacked columns (n, k)."""
        x = np.asarray(x, dtype=float)
        m = self.shape[0]
        rows = self._row_expand()
        if x.ndim == 1:
            return np.bincount(rows, weights=self.data * x[self.indices],
                               minlength=m)
        prod = self.data[:, None] * x[self.indices]
        out = np.empty((m, x.shape[1]))
        for k in range(x.shape[1]):
            out[:, k] = np.bincount(rows, weights=prod[:, k], minlength=m)
        return out

    def rmatvec(self, x) -> np.ndarray:
        """``A.T @ x`` for a vector (m,) or stacked columns (m, k)."""
        x = np.asarray(x, dtype=float)
        n = self.shape[1]
        rows = self._row_expand()
        if x.ndim == 1:
            return np.bincount(self.indices, weights=self.data * x[rows],
                               minlength=n)
        prod = self.data[:, None] * x[rows]
        out = np.empty((n, x.shape[1]))
        for k in range(x.shape[1]):
            out[:, k] = np.bincount(self.indices, weights=prod[:, k],
                                    minlength=n)
        return out

    def transpose(self) -> "CsrMatrix":
        m, n = self.shape
        if self.nnz == 0:
            return CsrMatrix((n, m), np.empty(0), np.empty(0, np.int64),
                             np.zeros(n + 1, np.int64))
        rows = self._row_expand()
        order = np.argsort(self.indices, kind="stable")
        counts = np.bincount(self.indices, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CsrMatrix((n, m), self.data[order], rows[order], indptr)

    # -- selection / scaling -------------------------------------------

    def select_rows(self, rows: Sequence[int]) -> "CsrMatrix":
        """A new matrix holding the given rows, in the given order."""
        rows = np.asarray(rows, dtype=np.int64)
        lengths = np.diff(self.indptr)[rows]
        take = _concat_ranges(self.indptr[rows], lengths)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        return CsrMatrix((rows.size, self.shape[1]), self.data[take],
                         self.indices[take], indptr)

    def select_columns(self, keep: Sequence[int]) -> "CsrMatrix":
        """Keep the given columns (must be sorted ascending), renumbered."""
        keep = np.asarray(keep, dtype=np.int64)
        mapping = np.full(self.shape[1], -1, dtype=np.int64)
        mapping[keep] = np.arange(keep.size)
        mapped = mapping[self.indices]
        mask = mapped >= 0
        rows = self._row_expand()[mask]
        counts = np.bincount(rows, minlength=self.shape[0])
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CsrMatrix((self.shape[0], keep.size), self.data[mask],
                         mapped[mask], indptr)

    def scale_rows(self, factors) -> "CsrMatrix":
        """``diag(factors) @ A`` — same pattern, scaled values."""
        factors = np.asarray(factors, dtype=float)
        return CsrMatrix(self.shape, self.data * factors[self._row_expand()],
                         self.indices.copy(), self.indptr.copy())

    def gram(self, weights=None) -> "CsrMatrix":
        """``A^T diag(weights) A`` as CSR (weights default to ones).

        Built by expanding, per measurement row, the outer product of
        that row's nonzeros into triplets — rows are processed grouped
        by their nonzero count so the expansion stays vectorized.  This
        avoids a general sparse-sparse matmul, which the WLS gain (and
        observability Gram) never needs.
        """
        m, n = self.shape
        counts = np.diff(self.indptr)
        w = (np.ones(m) if weights is None
             else np.asarray(weights, dtype=float))
        parts_r: List[np.ndarray] = []
        parts_c: List[np.ndarray] = []
        parts_v: List[np.ndarray] = []
        for s in np.unique(counts):
            if s == 0:
                continue
            group = np.flatnonzero(counts == s)
            take = (self.indptr[group][:, None]
                    + np.arange(s, dtype=np.int64)[None, :])
            idx = self.indices[take]            # (g, s)
            vals = self.data[take]              # (g, s)
            wvals = vals * w[group][:, None]
            parts_r.append(np.broadcast_to(
                idx[:, :, None], (group.size, s, s)).ravel())
            parts_c.append(np.broadcast_to(
                idx[:, None, :], (group.size, s, s)).ravel())
            parts_v.append((wvals[:, :, None] * vals[:, None, :]).ravel())
        if not parts_r:
            return CsrMatrix((n, n), np.empty(0), np.empty(0, np.int64),
                             np.zeros(n + 1, np.int64))
        return CsrMatrix.from_coo(np.concatenate(parts_r),
                                  np.concatenate(parts_c),
                                  np.concatenate(parts_v), (n, n))


def rcm_ordering(matrix: CsrMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of a (pattern-)symmetric matrix.

    Returns a permutation ``perm`` with ``perm[new] = old``; applying it
    symmetrically concentrates the pattern near the diagonal, which
    bounds fill-in of the left-looking LU on mesh-like grids.  Each
    connected component is started from a pseudo-peripheral vertex
    found by a double BFS sweep.
    """
    n = matrix.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Symmetrize the pattern (cheap; B and gain matrices already are).
    rows = np.concatenate([matrix._row_expand(), matrix.indices])
    cols = np.concatenate([matrix.indices, matrix._row_expand()])
    pattern = CsrMatrix.from_coo(rows, cols, np.ones(rows.size), (n, n))
    indptr, indices = pattern.indptr, pattern.indices
    degree = np.diff(indptr)

    def bfs_levels(start: int, visited_mask: np.ndarray) -> List[int]:
        order = [start]
        visited_mask[start] = True
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            nbrs = indices[indptr[node]:indptr[node + 1]]
            fresh = nbrs[~visited_mask[nbrs]]
            if fresh.size:
                fresh = fresh[np.argsort(degree[fresh], kind="stable")]
                visited_mask[fresh] = True
                order.extend(int(v) for v in fresh)
        return order

    visited = np.zeros(n, dtype=bool)
    result: List[int] = []
    by_degree = np.argsort(degree, kind="stable")
    for candidate in by_degree:
        if visited[candidate]:
            continue
        # Double sweep: BFS from the min-degree seed, restart from the
        # last (deepest) vertex discovered — a pseudo-peripheral start.
        probe = np.zeros(n, dtype=bool)
        sweep = bfs_levels(int(candidate), probe)
        start = sweep[-1] if sweep else int(candidate)
        result.extend(bfs_levels(start, visited))
    return np.array(result[::-1], dtype=np.int64)


class SparseLU:
    """Left-looking sparse LU with threshold partial pivoting.

    Factors ``P_r (P A P^T) = L U`` where ``P`` is a symmetric
    fill-reducing permutation (RCM by default) and ``P_r`` the row
    pivoting.  The pivot rule prefers the symmetric diagonal entry when
    it is within ``pivot_threshold`` of the column maximum, preserving
    the RCM structure; otherwise the column maximum is chosen.

    With ``allow_singular=True``, columns whose eligible pivots are all
    below ``anorm * 1e-14`` are *skipped*: the tiny pivot magnitude is
    recorded (for rank decisions) but nothing is divided by it, so the
    factors never explode.  ``solve`` refuses to run on such a
    factorization.
    """

    def __init__(self, matrix: CsrMatrix, order: str = "rcm",
                 pivot_threshold: float = 0.1,
                 allow_singular: bool = False) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"sparse LU needs a square matrix, got {matrix.shape}")
        self.n = n = matrix.shape[0]
        self.anorm = matrix.one_norm()
        self.allow_singular = allow_singular
        if isinstance(order, str):
            if order == "rcm":
                self.perm = rcm_ordering(matrix)
            elif order == "natural":
                self.perm = np.arange(n, dtype=np.int64)
            else:
                raise ValueError(f"unknown ordering {order!r}")
        else:
            self.perm = np.asarray(order, dtype=np.int64)
        self.singular = False
        self.pivot_magnitudes = np.zeros(n)
        self._factorize(matrix, float(pivot_threshold))

    # -- factorization -------------------------------------------------

    def _factorize(self, matrix: CsrMatrix, tau: float) -> None:
        n = self.n
        iperm = np.empty(n, dtype=np.int64)
        iperm[self.perm] = np.arange(n, dtype=np.int64)
        # Column access of the permuted matrix: column j of A' is column
        # perm[j] of A with rows mapped through iperm.  Columns of A are
        # rows of A^T.
        csc = matrix.transpose()
        zero_cut = max(self.anorm, 1.0) * 1e-14

        pinv = np.full(n, -1, dtype=np.int64)    # permuted row -> pivot pos
        rorder = np.empty(n, dtype=np.int64)     # pivot pos -> permuted row
        l_rows: List[np.ndarray] = [None] * n    # type: ignore[list-item]
        l_vals: List[np.ndarray] = [None] * n    # type: ignore[list-item]
        u_rows: List[np.ndarray] = [None] * n    # type: ignore[list-item]
        u_vals: List[np.ndarray] = [None] * n    # type: ignore[list-item]
        u_diag = np.zeros(n)

        x = np.zeros(n)
        stamp = np.full(n, -1, dtype=np.int64)
        unused_scan = 0                          # for singular assignment

        for j in range(n):
            col = self.perm[j]
            start, end = csc.indptr[col], csc.indptr[col + 1]
            seed_rows = iperm[csc.indices[start:end]]
            seed_vals = csc.data[start:end]
            # Symbolic: topological order of reachable pivotal nodes via
            # DFS over L's pattern; collect every touched row.
            topo: List[int] = []
            touched: List[int] = []
            for seed in seed_rows:
                seed = int(seed)
                if stamp[seed] == j:
                    continue
                stack = [(seed, 0)]
                stamp[seed] = j
                while stack:
                    node, ptr = stack[-1]
                    t = pinv[node]
                    children = l_rows[t] if t >= 0 else None
                    advanced = False
                    if children is not None:
                        while ptr < len(children):
                            child = int(children[ptr])
                            ptr += 1
                            if stamp[child] != j:
                                stamp[child] = j
                                stack[-1] = (node, ptr)
                                stack.append((child, 0))
                                advanced = True
                                break
                        else:
                            stack[-1] = (node, ptr)
                    if not advanced:
                        stack.pop()
                        touched.append(node)
                        if t >= 0:
                            topo.append(node)
            x[np.array(touched, dtype=np.int64)] = 0.0
            x[seed_rows] = seed_vals
            # Numeric: apply pivotal updates in topological order
            # (reverse postorder).
            for node in reversed(topo):
                t = pinv[node]
                xval = x[node]
                if xval != 0.0:
                    x[l_rows[t]] -= xval * l_vals[t]
            touched_arr = np.array(touched, dtype=np.int64)
            pivotal_mask = pinv[touched_arr] >= 0
            upper_rows = touched_arr[pivotal_mask]
            lower_rows = touched_arr[~pivotal_mask]
            u_positions = pinv[upper_rows]
            u_rows[j] = u_positions
            u_vals[j] = x[upper_rows].copy()

            pivot_row = -1
            pivot_val = 0.0
            if lower_rows.size:
                lower_abs = np.abs(x[lower_rows])
                cmax = float(lower_abs.max())
                self.pivot_magnitudes[j] = cmax
                if cmax > zero_cut:
                    # Threshold rule: keep the diagonal of the symmetric
                    # ordering when competitive.
                    if (pinv[j] == -1 and stamp[j] == j
                            and abs(x[j]) >= tau * cmax):
                        pivot_row = j
                    else:
                        pivot_row = int(lower_rows[int(lower_abs.argmax())])
                    pivot_val = float(x[pivot_row])
            if pivot_row < 0:
                if not self.allow_singular:
                    raise SingularMatrixError(
                        f"pivot for column {j} is below the singularity "
                        f"cutoff (matrix is singular to working precision)")
                self.singular = True
                # Record an empty L column and retire a row.  Prefer the
                # symmetric diagonal row: for the (symmetric) gain/B
                # matrices a dependent column means the matching row is
                # dependent too, and consuming any other row would
                # manufacture a second spurious deficiency later.
                if pinv[j] == -1:
                    pivot_row = j
                elif lower_rows.size:
                    pivot_row = int(lower_rows[0])
                else:
                    while pinv[unused_scan] != -1:
                        unused_scan += 1
                    pivot_row = unused_scan
                u_diag[j] = 0.0
                l_rows[j] = np.empty(0, dtype=np.int64)
                l_vals[j] = np.empty(0)
            else:
                u_diag[j] = pivot_val
                others = lower_rows[lower_rows != pivot_row]
                vals = x[others] / pivot_val
                keepers = vals != 0.0
                l_rows[j] = others[keepers]
                l_vals[j] = vals[keepers]
            pinv[pivot_row] = j
            rorder[j] = pivot_row

        # Remap L's row indices (permuted rows) to pivot positions so the
        # triangular solves run in pivot space.
        self._l_rows = [pinv[r] for r in l_rows]
        self._l_vals = l_vals
        self._u_rows = u_rows
        self._u_vals = u_vals
        self._u_diag = u_diag
        self._rorder = rorder
        nonskipped = u_diag != 0.0
        self.pivot_magnitudes[nonskipped] = np.abs(u_diag[nonskipped])
        self.fill_nnz = int(sum(r.size for r in self._l_rows)
                            + sum(r.size for r in u_rows)) + n

    # -- solves --------------------------------------------------------

    def _require_nonsingular(self) -> None:
        if self.singular:
            raise SingularMatrixError(
                "matrix is singular to working precision")

    def solve(self, rhs) -> np.ndarray:
        """Solve ``A x = b`` for a vector (n,) or stacked columns (n, k)."""
        self._require_nonsingular()
        b = np.asarray(rhs, dtype=float)
        n = self.n
        if n == 0:
            return np.zeros_like(b)
        bp = b[self.perm]
        z = bp[self._rorder].copy()       # pivot space
        matrix_rhs = z.ndim == 2
        for j in range(n):
            yj = z[j]
            if (yj.any() if matrix_rhs else yj != 0.0):
                rows = self._l_rows[j]
                if rows.size:
                    if matrix_rhs:
                        z[rows] -= self._l_vals[j][:, None] * yj
                    else:
                        z[rows] -= self._l_vals[j] * yj
        for j in range(n - 1, -1, -1):
            xj = z[j] / self._u_diag[j]
            z[j] = xj
            rows = self._u_rows[j]
            if rows.size:
                if matrix_rhs:
                    z[rows] -= self._u_vals[j][:, None] * xj
                else:
                    z[rows] -= self._u_vals[j] * xj
        out = np.empty_like(b)
        out[self.perm] = z
        return out

    def solve_transpose(self, rhs) -> np.ndarray:
        """Solve ``A^T x = b`` (vector or stacked columns)."""
        self._require_nonsingular()
        b = np.asarray(rhs, dtype=float)
        n = self.n
        if n == 0:
            return np.zeros_like(b)
        w = b[self.perm].astype(float, copy=True)
        for j in range(n):                # U^T w = b'
            rows = self._u_rows[j]
            if rows.size:
                w[j] = (w[j] - self._u_vals[j] @ w[rows]) / self._u_diag[j]
            else:
                w[j] = w[j] / self._u_diag[j]
        for j in range(n - 1, -1, -1):    # L^T v = w
            rows = self._l_rows[j]
            if rows.size:
                w[j] = w[j] - self._l_vals[j] @ w[rows]
        out = np.empty_like(b)
        permuted = np.empty_like(w)
        permuted[self._rorder] = w
        out[self.perm] = permuted
        return out


class UpdatedSolver:
    """Sherman–Morrison/Woodbury solver for ``A + U diag(alpha) V^T``.

    Wraps an existing solver for ``A`` (any callable accepting vector or
    matrix right-hand sides) with a rank-k correction.  For the
    topology-change use the updates are symmetric rank-1 terms
    ``±y_k a_k a_k^T`` (line k's admittance and reduced incidence
    vector), so adding/removing a line never re-factorizes the base.

    Raises :class:`SingularMatrixError` when the capacitance (Schur)
    matrix ``diag(1/alpha) + V^T A^-1 U`` is singular — exactly the
    bridge-outage condition of the LODF denominator.
    """

    def __init__(self, base_solve: Callable[[np.ndarray], np.ndarray],
                 base_matvec: Callable[[np.ndarray], np.ndarray],
                 updates: Sequence[Tuple[float, np.ndarray, np.ndarray]]
                 ) -> None:
        if not updates:
            raise ValueError("UpdatedSolver needs at least one update term")
        self._base_solve = base_solve
        self._base_matvec = base_matvec
        self._alphas = np.array([float(a) for a, _, _ in updates])
        if np.any(self._alphas == 0.0):
            raise ValueError("update coefficients must be nonzero")
        self._u = np.column_stack([np.asarray(u, dtype=float)
                                   for _, u, _ in updates])
        self._v = np.column_stack([np.asarray(v, dtype=float)
                                   for _, _, v in updates])
        self._z = base_solve(self._u)            # A^-1 U, one batched solve
        if self._z.ndim == 1:
            self._z = self._z[:, None]
        projected = self._v.T @ self._z
        capacitance = np.diag(1.0 / self._alphas) + projected
        k = capacitance.shape[0]
        # Singularity is cancellation between diag(1/alpha) and V^T Z,
        # so the scale must come from the *operands*: measured against
        # the (possibly fully cancelled) result, a near-zero capacitance
        # would read as full-scale and slip through.
        scale = float(max(np.max(np.abs(1.0 / self._alphas)),
                          np.max(np.abs(projected)) if projected.size
                          else 0.0))
        if scale == 0.0 or (
                abs(float(np.linalg.det(capacitance)))
                <= (scale ** k) * 1e-12):
            raise SingularMatrixError(
                "rank-1 update makes the matrix singular to working "
                "precision (capacitance matrix is singular)")
        self._capacitance = capacitance

    def solve(self, rhs) -> np.ndarray:
        """Solve ``(A + U diag(alpha) V^T) x = rhs``."""
        y = self._base_solve(np.asarray(rhs, dtype=float))
        w = np.linalg.solve(self._capacitance, self._v.T @ y)
        return y - self._z @ w

    def matvec(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        correction = self._u @ (self._alphas[:, None] * (self._v.T @ x)
                                if x.ndim == 2
                                else self._alphas * (self._v.T @ x))
        return self._base_matvec(x) + correction
