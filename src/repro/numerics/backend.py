"""The dense/sparse linear-algebra backend knob.

Every matrix-building layer (grid matrices, sensitivities, estimation,
OPF) accepts a ``backend`` argument:

* ``"dense"``  — the original numpy arrays and LAPACK factorizations.
* ``"sparse"`` — the in-repo CSR structures and sparse LU of
  :mod:`repro.numerics.sparse`.
* ``"auto"``   — pick per problem size: sparse at or above
  :data:`SPARSE_AUTO_MIN_BUSES` buses, dense below.

``None`` means "use the process default", which is ``auto`` unless the
``REPRO_BACKEND`` environment variable or :func:`set_default_backend`
says otherwise.  The *resolved* backend (never ``auto``) is folded into
scenario fingerprints so cached results from the two numerical paths
are never conflated.
"""

from __future__ import annotations

import os
from typing import Optional

BACKENDS = ("dense", "sparse", "auto")

#: Bus count at or above which ``auto`` resolves to the sparse backend.
SPARSE_AUTO_MIN_BUSES = 300

_default: Optional[str] = None


def _env_default() -> str:
    value = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return value if value in BACKENDS else "auto"


def default_backend() -> str:
    """The process-wide backend default (``dense``/``sparse``/``auto``)."""
    return _default if _default is not None else _env_default()


def set_default_backend(backend: Optional[str]) -> None:
    """Override the process default (``None`` restores env/auto)."""
    if backend is not None and backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    global _default
    _default = backend


def normalize_backend(backend: Optional[str]) -> str:
    """Map ``None`` to the process default and validate the name."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    return backend


def resolve_backend(backend: Optional[str], num_buses: int) -> str:
    """The concrete backend (``dense`` or ``sparse``) for a problem size."""
    choice = normalize_backend(backend)
    if choice == "auto":
        return "sparse" if num_buses >= SPARSE_AUTO_MIN_BUSES else "dense"
    return choice
