"""Preflight input validation with structured diagnostics.

Every entry point (analyzers, sweep engine, CLI) runs
:func:`validate_case` before an input reaches an encoder, and
:func:`validate_post_attack_topology` on the believed topology an attack
induces.  Fatal findings classify into the ``invalid_input`` /
``degenerate_case`` rejection statuses via
:meth:`ValidationReport.fatal_status`.
"""

from repro.validation.checks import (
    check_attack_spec,
    check_feasibility,
    check_measurements,
    check_structure,
    check_topology,
    validate_case,
    validate_post_attack_topology,
)
from repro.validation.diagnostics import (
    DEGENERATE_CASE,
    DEGENERATE_CODES,
    DEGRADED,
    FATAL,
    INVALID_INPUT,
    WARNING,
    Diagnostic,
    ValidationReport,
)

__all__ = [
    "DEGENERATE_CASE",
    "DEGENERATE_CODES",
    "DEGRADED",
    "FATAL",
    "INVALID_INPUT",
    "WARNING",
    "Diagnostic",
    "ValidationReport",
    "check_attack_spec",
    "check_feasibility",
    "check_measurements",
    "check_structure",
    "check_topology",
    "validate_case",
    "validate_post_attack_topology",
]
