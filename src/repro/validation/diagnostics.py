"""Structured diagnostics for the preflight validation subsystem.

Every failed check produces a :class:`Diagnostic`: a *stable* error code
(machine-matchable, never reworded), a severity, the offending component
ids and — where the repair is obvious — a hint.  A
:class:`ValidationReport` aggregates the diagnostics of one validated
input and classifies fatal outcomes into the two rejection statuses the
analyzers report:

* ``invalid_input`` — the input is structurally malformed (dangling
  references, inconsistent limits, unparsable fields).  Nothing
  meaningful can be computed from it.
* ``degenerate_case`` — the input is well-formed but describes a system
  the analysis is undefined on: an islanded bus, a disconnected
  in-service topology, load exceeding total generation capacity.
  Topology *exclusion attacks routinely create* exactly these topologies
  (a single spoofed breaker status can island a bus), so degeneracy is a
  reportable verdict, never a crash.

Severities:

* ``fatal`` — the input must be rejected,
* ``degraded`` — analysis can proceed but the result quality is reduced
  (e.g. an unobservable measurement set),
* ``warning`` — suspicious but harmless (e.g. a secured line marked
  alterable).

Diagnostics are JSON-clean values: they round-trip through the sweep
result cache (:meth:`Diagnostic.to_dict` / :meth:`Diagnostic.from_dict`
validate strictly so corrupt cached payloads are rejected at the
boundary, like every other cached field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: severity levels, most severe first.
FATAL = "fatal"
DEGRADED = "degraded"
WARNING = "warning"

_SEVERITY_RANK = {FATAL: 0, DEGRADED: 1, WARNING: 2}

#: fatal codes that classify as ``degenerate_case`` instead of
#: ``invalid_input``: the input parses and is internally consistent, but
#: the described system is analytically degenerate.
DEGENERATE_CODES = frozenset({
    "topology.disconnected",
    "topology.isolated_bus",
    "topology.no_lines",
    "grid.no_generators",
    "grid.load_exceeds_capacity",
    "grid.min_generation_exceeds_load",
    "opf.base_infeasible",
})

#: the two rejection statuses fatal diagnostics map to.
INVALID_INPUT = "invalid_input"
DEGENERATE_CASE = "degenerate_case"


@dataclass(frozen=True)
class Diagnostic:
    """One failed validation check.

    ``code`` is stable across releases (documented in the README error
    table); ``components`` name the offending parts as ``"kind:index"``
    strings (``"bus:3"``, ``"line:6"``, ``"measurement:12"``,
    ``"field:topology[2].admittance"``).
    """

    code: str
    severity: str
    message: str
    components: tuple = ()
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")
        object.__setattr__(self, "components",
                           tuple(str(c) for c in self.components))

    @property
    def is_fatal(self) -> bool:
        return self.severity == FATAL

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "components": list(self.components),
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Diagnostic":
        """Strictly rebuild a diagnostic from a cached JSON payload.

        Raises :class:`ValueError` on any malformation so a corrupt cache
        entry is detected at the boundary instead of poisoning a sweep.
        """
        if not isinstance(payload, dict):
            raise ValueError("diagnostic payload is not a JSON object")
        code = payload.get("code")
        severity = payload.get("severity")
        message = payload.get("message")
        components = payload.get("components", [])
        hint = payload.get("hint")
        if not isinstance(code, str) or not code:
            raise ValueError(f"diagnostic has invalid code {code!r}")
        if severity not in _SEVERITY_RANK:
            raise ValueError(
                f"diagnostic has invalid severity {severity!r}")
        if not isinstance(message, str):
            raise ValueError("diagnostic has no message")
        if not isinstance(components, list) \
                or not all(isinstance(c, str) for c in components):
            raise ValueError("diagnostic components must be strings")
        if hint is not None and not isinstance(hint, str):
            raise ValueError("diagnostic hint must be a string")
        return cls(code=code, severity=severity, message=message,
                   components=tuple(components), hint=hint)

    def render(self) -> str:
        where = f" [{', '.join(self.components)}]" if self.components \
            else ""
        text = f"{self.severity:8} {self.code}: {self.message}{where}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class ValidationReport:
    """All diagnostics of one validated input."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, code: str, severity: str, message: str,
            components: Sequence = (), hint: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(code, severity, message,
                                           tuple(components), hint))

    def extend(self, other: "ValidationReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- classification -------------------------------------------------

    @property
    def fatal(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == FATAL]

    @property
    def degraded(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == DEGRADED]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """No fatal diagnostics — the input may proceed to analysis."""
        return not self.fatal

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def fatal_status(self) -> Optional[str]:
        """``invalid_input`` / ``degenerate_case`` / None (accepted).

        A mix of structural and degeneracy errors classifies as
        ``invalid_input``: structural malformation dominates because the
        degeneracy findings may themselves be artifacts of it.
        """
        fatal = self.fatal
        if not fatal:
            return None
        if all(d.code in DEGENERATE_CODES for d in fatal):
            return DEGENERATE_CASE
        return INVALID_INPUT

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"subject": self.subject,
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ValidationReport":
        if not isinstance(payload, dict):
            raise ValueError("validation payload is not a JSON object")
        entries = payload.get("diagnostics")
        if not isinstance(entries, list):
            raise ValueError("validation payload has no diagnostics list")
        return cls(subject=str(payload.get("subject", "")),
                   diagnostics=[Diagnostic.from_dict(e) for e in entries])

    def render(self) -> str:
        """Human-readable diagnostic listing, most severe first."""
        if not self.diagnostics:
            return f"{self.subject or 'input'}: no findings"
        ordered = sorted(self.diagnostics,
                         key=lambda d: _SEVERITY_RANK[d.severity])
        lines = [f"preflight findings for {self.subject or 'input'}:"]
        lines += [f"  {d.render()}" for d in ordered]
        return "\n".join(lines)
