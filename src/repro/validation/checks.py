"""Preflight checks for grid cases, measurement sets and attack specs.

:func:`validate_case` is the orchestrator every entry point runs before an
input reaches an encoder: structural checks first (dangling references,
inconsistent limits), then — only when the structure is sound — topology
degeneracy, load–capacity feasibility, measurement-set and attack-spec
checks.  :func:`validate_post_attack_topology` re-validates the *believed*
topology an attack induces, so an exclusion attack that islands a bus
degrades to a reported diagnostic instead of a simplex failure deep in
the OPF pipeline.

All checks work on the :class:`~repro.grid.caseio.CaseDefinition` level
(raw specs) rather than on a built :class:`~repro.grid.network.Grid`, so
malformed inputs are diagnosed *before* the eager component constructors
get a chance to raise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grid.caseio import CaseDefinition
from repro.validation.diagnostics import (
    DEGRADED,
    FATAL,
    WARNING,
    ValidationReport,
)


def _connected_components(buses: Sequence[int],
                          edges: Iterable[Tuple[int, int]]
                          ) -> List[Set[int]]:
    adjacency: Dict[int, Set[int]] = {b: set() for b in buses}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    components: List[Set[int]] = []
    seen: Set[int] = set()
    for start in buses:
        if start in seen:
            continue
        frontier = [start]
        component = {start}
        seen.add(start)
        while frontier:
            bus = frontier.pop()
            for neighbor in adjacency[bus]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    return components


# ---------------------------------------------------------------------------
# Structural checks (fatal findings classify as invalid_input)
# ---------------------------------------------------------------------------

def check_structure(case: CaseDefinition) -> ValidationReport:
    """Reference integrity and parameter sanity of the raw case specs."""
    report = ValidationReport(subject=case.name)
    bus_indices = [b for b, _, _ in case.bus_types]
    bus_set = set(bus_indices)

    if len(bus_set) != len(bus_indices):
        dupes = sorted({b for b in bus_indices if bus_indices.count(b) > 1})
        report.add("case.duplicate_bus", FATAL,
                   "duplicate bus rows in the bus-types section",
                   [f"bus:{b}" for b in dupes],
                   hint="each bus must appear exactly once")
    elif sorted(bus_indices) != list(range(1, len(bus_indices) + 1)):
        report.add("case.bus_indices_noncontiguous", FATAL,
                   f"bus indices must run 1..{len(bus_indices)}, got "
                   f"{sorted(bus_indices)}",
                   hint="renumber buses contiguously from 1")
    if not bus_indices:
        report.add("case.no_buses", FATAL, "the case defines no buses")

    line_indices = [s.index for s in case.line_specs]
    if len(set(line_indices)) != len(line_indices):
        dupes = sorted({i for i in line_indices
                        if line_indices.count(i) > 1})
        report.add("case.duplicate_line", FATAL,
                   "duplicate line rows in the topology section",
                   [f"line:{i}" for i in dupes])
    elif line_indices != list(range(1, len(line_indices) + 1)):
        report.add("case.line_indices_noncontiguous", FATAL,
                   f"line indices must run 1..{len(line_indices)} in "
                   f"order, got {line_indices}",
                   hint="renumber lines contiguously from 1")

    seen_pairs: Dict[Tuple[int, int], int] = {}
    for spec in case.line_specs:
        where = [f"line:{spec.index}"]
        if spec.from_bus not in bus_set or spec.to_bus not in bus_set:
            report.add("line.unknown_bus", FATAL,
                       f"line {spec.index} connects bus {spec.from_bus} "
                       f"to bus {spec.to_bus}, but not all endpoints "
                       f"exist", where,
                       hint="endpoints must be declared in bus types")
            continue
        if spec.from_bus == spec.to_bus:
            report.add("line.self_loop", FATAL,
                       f"line {spec.index} connects bus {spec.from_bus} "
                       f"to itself", where)
        if spec.admittance <= 0:
            report.add("line.nonpositive_admittance", FATAL,
                       f"line {spec.index} admittance "
                       f"{spec.admittance} is not positive (zero or "
                       f"negative reactance)", where,
                       hint="DC-model admittances must be > 0")
        if spec.capacity <= 0:
            report.add("line.nonpositive_capacity", FATAL,
                       f"line {spec.index} capacity {spec.capacity} is "
                       f"not positive", where)
        pair = tuple(sorted((spec.from_bus, spec.to_bus)))
        if pair in seen_pairs:
            report.add("line.duplicate_pair", WARNING,
                       f"lines {seen_pairs[pair]} and {spec.index} both "
                       f"connect buses {pair[0]} and {pair[1]}",
                       [f"line:{seen_pairs[pair]}", f"line:{spec.index}"])
        else:
            seen_pairs[pair] = spec.index

    gen_types = {b for b, is_gen, _ in case.bus_types if is_gen}
    load_types = {b for b, _, is_load in case.bus_types if is_load}
    seen_gens: Set[int] = set()
    for gen in case.generators:
        where = [f"bus:{gen.bus}"]
        if gen.bus not in bus_set:
            report.add("gen.unknown_bus", FATAL,
                       f"generator references unknown bus {gen.bus}",
                       where)
        if gen.bus in seen_gens:
            report.add("gen.duplicate_bus", FATAL,
                       f"more than one generator at bus {gen.bus}", where,
                       hint="the paper assumes one generator per bus")
        seen_gens.add(gen.bus)
        if gen.p_min < 0 or gen.p_max < gen.p_min:
            report.add("gen.limits_inconsistent", FATAL,
                       f"generator at bus {gen.bus} needs "
                       f"0 <= p_min <= p_max, got [{gen.p_min}, "
                       f"{gen.p_max}]", where)
        if gen.bus in bus_set and gen.bus not in gen_types:
            report.add("gen.bus_not_marked", WARNING,
                       f"bus {gen.bus} hosts a generator but is not "
                       f"marked as a generator bus", where,
                       hint="set the is-generator flag in bus types")

    seen_loads: Set[int] = set()
    for load in case.loads:
        where = [f"bus:{load.bus}"]
        if load.bus not in bus_set:
            report.add("load.unknown_bus", FATAL,
                       f"load references unknown bus {load.bus}", where)
        if load.bus in seen_loads:
            report.add("load.duplicate_bus", FATAL,
                       f"more than one load at bus {load.bus}", where)
        seen_loads.add(load.bus)
        if not (load.p_min <= load.existing <= load.p_max):
            report.add("load.bounds_inconsistent", FATAL,
                       f"load at bus {load.bus}: existing value "
                       f"{load.existing} outside [{load.p_min}, "
                       f"{load.p_max}]", where,
                       hint="Eq. 36 needs p_min <= existing <= p_max")
        if load.bus in bus_set and load.bus not in load_types:
            report.add("load.bus_not_marked", WARNING,
                       f"bus {load.bus} hosts a load but is not marked "
                       f"as a load bus", where)

    if case.reference_bus not in bus_set and bus_set:
        report.add("case.unknown_reference_bus", FATAL,
                   f"reference bus {case.reference_bus} does not exist",
                   [f"bus:{case.reference_bus}"])
    return report


# ---------------------------------------------------------------------------
# Degeneracy checks (fatal findings classify as degenerate_case)
# ---------------------------------------------------------------------------

def check_topology(case: CaseDefinition) -> ValidationReport:
    """Connectivity of the in-service (true) topology.

    Assumes :func:`check_structure` passed — bus references are valid.
    """
    report = ValidationReport(subject=case.name)
    buses = [b for b, _, _ in case.bus_types]
    if len(buses) <= 1:
        return report
    active = [s for s in case.line_specs if s.in_true_topology]
    if not active:
        report.add("topology.no_lines", FATAL,
                   "no line is in service: every bus is islanded",
                   hint="set at least one in-true-topology flag")
        return report
    incident: Set[int] = set()
    for spec in active:
        incident.add(spec.from_bus)
        incident.add(spec.to_bus)
    for bus in buses:
        if bus not in incident:
            report.add("topology.isolated_bus", FATAL,
                       f"bus {bus} has no in-service line",
                       [f"bus:{bus}"],
                       hint="an islanded bus makes the DC power flow "
                            "undefined")
    components = _connected_components(
        buses, ((s.from_bus, s.to_bus) for s in active))
    if len(components) > 1:
        others = sorted(components, key=len)[:-1]
        stranded = sorted(b for comp in others for b in comp)
        report.add("topology.disconnected", FATAL,
                   f"the in-service topology splits into "
                   f"{len(components)} islands; buses {stranded} are "
                   f"cut off from the main island",
                   [f"bus:{b}" for b in stranded])
    return report


def check_feasibility(case: CaseDefinition) -> ValidationReport:
    """Load–capacity balance: can any dispatch serve the demand?"""
    report = ValidationReport(subject=case.name)
    if not case.generators:
        report.add("grid.no_generators", FATAL,
                   "the case defines no generators; no dispatch exists")
        return report
    total_load = sum((l.existing for l in case.loads), Fraction(0))
    capacity = sum((g.p_max for g in case.generators), Fraction(0))
    minimum = sum((g.p_min for g in case.generators), Fraction(0))
    if not case.loads:
        report.add("grid.no_loads", DEGRADED,
                   "the case defines no loads; the OPF is trivial and "
                   "load-shift attacks are meaningless")
    if total_load > capacity:
        report.add("grid.load_exceeds_capacity", FATAL,
                   f"total load {total_load} exceeds total generation "
                   f"capacity {capacity}; the OPF is infeasible",
                   hint="raise generator p_max or lower the loads")
    if minimum > total_load:
        report.add("grid.min_generation_exceeds_load", FATAL,
                   f"total minimum generation {minimum} exceeds total "
                   f"load {total_load}; the power balance cannot hold",
                   hint="lower generator p_min or raise the loads")
    return report


# ---------------------------------------------------------------------------
# Measurement-set checks
# ---------------------------------------------------------------------------

def check_measurements(case: CaseDefinition,
                       observability: bool = True,
                       backend=None) -> ValidationReport:
    """Sensor references, duplicates and (optionally) observability."""
    report = ValidationReport(subject=case.name)
    expected = case.num_potential_measurements
    specs = case.measurement_specs
    if not specs:
        report.add("meas.none_defined", DEGRADED,
                   "the case defines no measurement section; "
                   "stealthiness against state estimation cannot be "
                   "assessed")
        return report
    if len(specs) != expected:
        report.add("case.measurement_count_mismatch", FATAL,
                   f"expected {expected} potential measurements "
                   f"(2l + b), got {len(specs)}",
                   hint="one row per potential measurement, flow "
                        "measurements first")
    indices = [s.index for s in specs]
    duplicates = sorted({i for i in indices if indices.count(i) > 1})
    if duplicates:
        report.add("meas.duplicate_index", FATAL,
                   f"duplicate measurement rows: {duplicates}",
                   [f"measurement:{i}" for i in duplicates])
    dangling = sorted({i for i in indices if not 1 <= i <= expected})
    if dangling:
        report.add("meas.index_out_of_range", FATAL,
                   f"measurement indices {dangling} reference "
                   f"non-existent sensors (valid range 1..{expected})",
                   [f"measurement:{i}" for i in dangling])
    if not duplicates and not dangling \
            and indices != sorted(indices):
        report.add("meas.index_order", FATAL,
                   "measurement rows are out of order; positional "
                   "lookups would silently read the wrong sensor",
                   hint="sort the measurement section by index")
    if not any(s.taken for s in specs):
        report.add("meas.none_taken", DEGRADED,
                   "no measurement is taken; the estimator sees nothing")
    elif observability and report.ok \
            and len(specs) == expected:
        report.extend(_check_observability(case, backend=backend))
    return report


def _check_observability(case: CaseDefinition,
                         backend=None) -> ValidationReport:
    """Numerical observability of the taken set (needs a sound case)."""
    from repro.estimation.measurement import MeasurementPlan
    from repro.estimation.observability import is_numerically_observable
    report = ValidationReport(subject=case.name)
    try:
        plan = MeasurementPlan.from_case(case)
        observable = is_numerically_observable(plan, backend=backend)
    except Exception:
        # Structure problems are reported by their own checks; the
        # observability probe never escalates them into a crash.
        return report
    if not observable:
        report.add("meas.unobservable", DEGRADED,
                   "the taken measurement set does not make the system "
                   "observable; state estimation is underdetermined",
                   hint="take more flow/consumption measurements")
    return report


# ---------------------------------------------------------------------------
# Attack-spec checks
# ---------------------------------------------------------------------------

def check_attack_spec(case: CaseDefinition) -> ValidationReport:
    """Attacker resources and per-line attribute consistency."""
    report = ValidationReport(subject=case.name)
    if case.resource_measurements < 0 or case.resource_buses < 0:
        report.add("attack.resource_invalid", FATAL,
                   f"attacker resources must be non-negative, got "
                   f"{case.resource_measurements} measurements / "
                   f"{case.resource_buses} buses")
    for spec in case.line_specs:
        where = [f"line:{spec.index}"]
        if spec.in_core and not spec.in_true_topology:
            report.add("attack.core_line_open", WARNING,
                       f"line {spec.index} is marked as a fixed core "
                       f"line yet is out of service", where,
                       hint="core lines are never legitimately opened")
    attackable = [
        s.index for s in case.line_specs
        if (s.in_true_topology and not s.in_core and not s.status_secured
            and s.status_alterable)
        or (not s.in_true_topology and not s.status_secured
            and s.status_alterable)]
    if not attackable:
        report.add("attack.no_candidates", WARNING,
                   "no line status is attackable; pure topology attacks "
                   "are trivially impossible")
    if case.min_increase_percent < 0:
        report.add("attack.target_negative", WARNING,
                   f"impact target {case.min_increase_percent}% is "
                   f"negative")
    if case.base_cost < 0:
        report.add("attack.base_cost_negative", WARNING,
                   f"declared base cost {case.base_cost} is negative",
                   hint="a zero base cost means 'compute it from the "
                        "attack-free OPF'")
    return report


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

def validate_case(case: CaseDefinition,
                  observability: bool = True,
                  backend=None) -> ValidationReport:
    """Full preflight: structure, then degeneracy/measurements/attack.

    Topology, feasibility and measurement checks only run when the
    structural pass is clean — their results would be artifacts of the
    structural malformation otherwise.
    """
    report = check_structure(case)
    if report.ok:
        report.extend(check_topology(case))
        report.extend(check_feasibility(case))
        report.extend(check_measurements(case,
                                         observability=observability,
                                         backend=backend))
    report.extend(check_attack_spec(case))
    return report


def validate_post_attack_topology(grid, excluded: Sequence[int] = (),
                                  included: Sequence[int] = (),
                                  subject: str = "") -> ValidationReport:
    """Re-validate the believed topology a topology attack induces.

    ``grid`` is the physical :class:`~repro.grid.network.Grid`;
    ``excluded``/``included`` are the attack's line targets.  Detects
    references to nonexistent branches, duplicate/conflicting targets,
    and — the paper's core degeneracy — an exclusion attack that islands
    part of the network.
    """
    report = ValidationReport(subject=subject or "post-attack topology")
    known = {line.index for line in grid.lines}
    for kind, targets in (("exclusion", excluded), ("inclusion", included)):
        unknown = sorted({i for i in targets if i not in known})
        if unknown:
            report.add("attack.unknown_line", FATAL,
                       f"{kind} attack references nonexistent "
                       f"line(s) {unknown}",
                       [f"line:{i}" for i in unknown],
                       hint=f"valid line indices are 1..{len(known)}")
        duplicated = sorted({i for i in targets
                             if list(targets).count(i) > 1})
        if duplicated:
            report.add("attack.duplicate_target", WARNING,
                       f"{kind} attack names line(s) {duplicated} more "
                       f"than once",
                       [f"line:{i}" for i in duplicated])
    both = sorted(set(excluded) & set(included))
    if both:
        report.add("attack.conflicting_target", FATAL,
                   f"line(s) {both} are both excluded and included",
                   [f"line:{i}" for i in both])
    if not report.ok:
        return report

    for index in sorted(set(excluded)):
        if not grid.line(index).in_service:
            report.add("attack.exclude_open_line", WARNING,
                       f"exclusion target line {index} is already out "
                       f"of service", [f"line:{index}"])
    for index in sorted(set(included)):
        if grid.line(index).in_service:
            report.add("attack.include_closed_line", WARNING,
                       f"inclusion target line {index} is already in "
                       f"service", [f"line:{index}"])

    believed = ({l.index for l in grid.lines if l.in_service}
                - set(excluded)) | set(included)
    if not grid.is_connected(believed):
        components = _connected_components(
            [b.index for b in grid.buses],
            ((l.from_bus, l.to_bus) for l in grid.lines
             if l.index in believed))
        others = sorted(components, key=len)[:-1]
        stranded = sorted(b for comp in others for b in comp)
        report.add("topology.disconnected", FATAL,
                   f"the post-attack believed topology islands "
                   f"bus(es) {stranded}",
                   [f"bus:{b}" for b in stranded],
                   hint="the EMS's OPF on this view has no solution; "
                        "the attack degrades the case instead of "
                        "raising")
    return report
