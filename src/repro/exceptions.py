"""Exception hierarchy shared across the :mod:`repro` packages.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A model (grid, measurement plan, attack scenario) is ill-formed."""


class SolverError(ReproError):
    """An internal solver (SAT, simplex, LP, SMT) was misused or failed."""


class UnboundedError(SolverError):
    """An optimization objective is unbounded in the feasible region."""


class InfeasibleError(SolverError):
    """A problem that was required to be feasible has no solution."""


class NotObservableError(ModelError):
    """The measurement set does not make the system observable."""


class ConvergenceError(ReproError):
    """An iterative routine exhausted its iteration budget."""


class BudgetExhausted(ReproError):
    """A resource budget (wall clock, conflicts, decisions, pivots) ran out.

    Not an error in the usual sense: layers that own a
    :class:`~repro.smt.budget.SolverBudget` catch this to report a partial
    result (``SolveResult.UNKNOWN``, a ``budget_exhausted`` impact report)
    instead of crashing or hanging.
    """

    def __init__(self, reason: str = "resource budget exhausted") -> None:
        super().__init__(reason)
        self.reason = reason


class NumericalInstability(ReproError):
    """Guarded linear algebra refused to return an unverified result.

    Raised by :mod:`repro.numerics` when a factorization meets a
    (near-)singular matrix, a condition-number estimate exceeds the
    policy's fail threshold, or a verified solve's residual cannot be
    driven below tolerance.  Like :class:`BudgetExhausted` this is a
    *degradation*, not a bug: analysis layers catch it and surface a
    ``numerical_unstable`` status instead of reporting a verdict
    computed from silently-garbage floating point.
    """

    def __init__(self, reason: str = "numerically unstable computation",
                 diagnostic=None) -> None:
        super().__init__(reason)
        self.reason = reason
        #: the :class:`repro.numerics.NumericalDiagnostic` that tripped
        #: the fail threshold (None when raised without one).
        self.diagnostic = diagnostic


class CertificateError(ReproError):
    """An answer failed its independent certificate check.

    Raised by :mod:`repro.smt.certificates` when a SAT model does not
    satisfy the original assertions, an UNSAT proof has a non-verifiable
    step, or a Farkas witness does not actually refute its theory lemma.
    Layers that run in self-check mode catch this and report a
    ``certificate_error`` status — never a (possibly wrong) SAT/UNSAT.
    """


class InputFormatError(ReproError):
    """A case-definition file could not be parsed."""


class CaseFieldError(InputFormatError):
    """A specific case-file field is missing, mistyped or out of range.

    ``path`` locates the offending field as
    ``<section>[<row>].<field>`` (e.g. ``topology[2].admittance``), so
    callers can attach it to a structured diagnostic.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = path
        self.detail = message
