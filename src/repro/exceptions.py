"""Exception hierarchy shared across the :mod:`repro` packages.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A model (grid, measurement plan, attack scenario) is ill-formed."""


class SolverError(ReproError):
    """An internal solver (SAT, simplex, LP, SMT) was misused or failed."""


class UnboundedError(SolverError):
    """An optimization objective is unbounded in the feasible region."""


class InfeasibleError(SolverError):
    """A problem that was required to be feasible has no solution."""


class NotObservableError(ModelError):
    """The measurement set does not make the system observable."""


class ConvergenceError(ReproError):
    """An iterative routine exhausted its iteration budget."""


class InputFormatError(ReproError):
    """A case-definition file could not be parsed."""
