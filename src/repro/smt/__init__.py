"""A from-scratch SMT solver for quantifier-free linear real arithmetic.

This package replaces the Z3 dependency of the original paper with a
self-contained DPLL(T) stack:

* :mod:`repro.smt.terms` — term language (Bool + linear Real),
* :mod:`repro.smt.cnf` — Tseitin conversion and cardinality encodings,
* :mod:`repro.smt.sat` — CDCL SAT core,
* :mod:`repro.smt.simplex` — general simplex theory solver,
* :mod:`repro.smt.solver` — the :class:`SmtSolver` facade,
* :mod:`repro.smt.optimize` — exact linear optimization,
* :mod:`repro.smt.budget` — cooperative resource budgets
  (:class:`SolverBudget`) bounding wall clock, conflicts, decisions and
  simplex pivots; exhaustion surfaces as ``SolveResult.UNKNOWN``,
* :mod:`repro.smt.proof` / :mod:`repro.smt.certificates` — certified
  solving: RUP proof logging, Farkas infeasibility witnesses, and
  independent checkers (:func:`check_model`, :func:`check_rup_proof`,
  :func:`check_farkas`) that audit SAT/UNSAT answers.
"""

from repro.smt.budget import SolverBudget
from repro.smt.certificates import (
    CheckReport,
    check_farkas,
    check_model,
    check_rup_proof,
    self_check_default,
    verify_sat,
    verify_unsat,
)
from repro.smt.proof import ProofLog, ProofStep, UnsatCertificate
from repro.smt.optimize import OptimizationResult, maximize, minimize
from repro.smt.rational import DeltaRational, to_fraction
from repro.smt.solver import Model, SmtSolver, SmtStatistics, SolveResult
from repro.smt.terms import (
    Atom,
    AtMost,
    And,
    BoolConst,
    BoolTerm,
    BoolVar,
    FALSE,
    LinExpr,
    Not,
    Or,
    RealVar,
    TRUE,
    at_least,
    at_most,
    exactly,
    iff,
    implies,
    ite,
    linear_sum,
)

__all__ = [
    "And",
    "Atom",
    "AtMost",
    "BoolConst",
    "BoolTerm",
    "BoolVar",
    "CheckReport",
    "DeltaRational",
    "FALSE",
    "LinExpr",
    "Model",
    "Not",
    "OptimizationResult",
    "Or",
    "ProofLog",
    "ProofStep",
    "RealVar",
    "SmtSolver",
    "SolverBudget",
    "SmtStatistics",
    "SolveResult",
    "TRUE",
    "UnsatCertificate",
    "check_farkas",
    "check_model",
    "check_rup_proof",
    "self_check_default",
    "verify_sat",
    "verify_unsat",
    "at_least",
    "at_most",
    "exactly",
    "iff",
    "implies",
    "ite",
    "linear_sum",
    "maximize",
    "minimize",
    "to_fraction",
]
