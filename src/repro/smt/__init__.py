"""A from-scratch SMT solver for quantifier-free linear real arithmetic.

This package replaces the Z3 dependency of the original paper with a
self-contained DPLL(T) stack:

* :mod:`repro.smt.terms` — term language (Bool + linear Real),
* :mod:`repro.smt.cnf` — Tseitin conversion and cardinality encodings,
* :mod:`repro.smt.sat` — CDCL SAT core,
* :mod:`repro.smt.simplex` — general simplex theory solver,
* :mod:`repro.smt.solver` — the :class:`SmtSolver` facade,
* :mod:`repro.smt.optimize` — exact linear optimization,
* :mod:`repro.smt.budget` — cooperative resource budgets
  (:class:`SolverBudget`) bounding wall clock, conflicts, decisions and
  simplex pivots; exhaustion surfaces as ``SolveResult.UNKNOWN``.
"""

from repro.smt.budget import SolverBudget
from repro.smt.optimize import OptimizationResult, maximize, minimize
from repro.smt.rational import DeltaRational, to_fraction
from repro.smt.solver import Model, SmtSolver, SmtStatistics, SolveResult
from repro.smt.terms import (
    Atom,
    AtMost,
    And,
    BoolConst,
    BoolTerm,
    BoolVar,
    FALSE,
    LinExpr,
    Not,
    Or,
    RealVar,
    TRUE,
    at_least,
    at_most,
    exactly,
    iff,
    implies,
    ite,
    linear_sum,
)

__all__ = [
    "And",
    "Atom",
    "AtMost",
    "BoolConst",
    "BoolTerm",
    "BoolVar",
    "DeltaRational",
    "FALSE",
    "LinExpr",
    "Model",
    "Not",
    "OptimizationResult",
    "Or",
    "RealVar",
    "SmtSolver",
    "SolverBudget",
    "SmtStatistics",
    "SolveResult",
    "TRUE",
    "at_least",
    "at_most",
    "exactly",
    "iff",
    "implies",
    "ite",
    "linear_sum",
    "maximize",
    "minimize",
    "to_fraction",
]
