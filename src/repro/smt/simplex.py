"""General simplex for linear real arithmetic (Dutertre–de Moura, CAV'06).

This is the theory solver behind the DPLL(T) integration: it maintains a
tableau of *basic* variables defined as linear combinations of *nonbasic*
variables, plus per-variable lower/upper bounds asserted incrementally by
the SAT search.  Strict bounds are represented with
:class:`~repro.smt.rational.DeltaRational` infinitesimals, so all reasoning
is exact.

Key operations:

``assert_upper`` / ``assert_lower``
    Incrementally tighten a bound (recording undo information); detects
    immediate bound clashes and returns a two-literal explanation.

``check``
    Runs Bland-rule pivoting until the assignment satisfies every bound or
    an infeasible row yields a conflict explanation (the set of SAT
    literals whose bounds participate in the row).

``minimize``
    Phase-2 simplex: minimizes a variable subject to the currently
    asserted bounds.  Used by :mod:`repro.smt.optimize` for exact OPF-cost
    minimization.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import SolverError, UnboundedError
from repro.smt.budget import SolverBudget
from repro.smt.rational import DeltaRational, resolve_delta

NO_LIT = 0


class Simplex:
    """Bounded-variable simplex over exact delta-rationals."""

    def __init__(self) -> None:
        self.num_vars = 0
        # Tableau: basic var -> {nonbasic var -> coefficient}.
        self.rows: Dict[int, Dict[int, Fraction]] = {}
        # nonbasic var -> set of basic vars whose row mentions it.
        self.cols: Dict[int, Set[int]] = {}
        self.assign: List[DeltaRational] = []
        self.lower: List[Optional[DeltaRational]] = []
        self.upper: List[Optional[DeltaRational]] = []
        self.lower_lit: List[int] = []
        self.upper_lit: List[int] = []
        # Undo log: one entry per assert_* call.
        self._log: List[Tuple] = []
        self.needs_check = False
        self.pivots = 0
        #: optional cooperative resource budget; checked at the top of
        #: every pivot, *before* the tableau is mutated, so an
        #: interrupted simplex stays consistent and reusable.
        self.budget: Optional[SolverBudget] = None
        #: when True, every conflict explanation also produces a Farkas
        #: witness in :attr:`last_witness` (``[(lit, coeff), ...]`` with
        #: nonnegative rational coefficients over the explanation
        #: literals).  Off by default: the conflict paths then allocate
        #: nothing beyond the explanation itself.
        self.certify = False
        self.last_witness: Optional[List[Tuple[int, Fraction]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def new_variable(self) -> int:
        var = self.num_vars
        self.num_vars += 1
        self.assign.append(DeltaRational(0))
        self.lower.append(None)
        self.upper.append(None)
        self.lower_lit.append(NO_LIT)
        self.upper_lit.append(NO_LIT)
        self.cols[var] = set()
        return var

    def add_row(self, coeffs: Dict[int, Fraction]) -> int:
        """Create a fresh basic variable ``s`` with ``s = sum(coeffs)``.

        Any variable in *coeffs* that is currently basic is substituted by
        its row so the tableau stays in canonical (basic = f(nonbasic))
        form.  Returns the new variable.
        """
        s = self.new_variable()
        row: Dict[int, Fraction] = {}
        for var, coeff in coeffs.items():
            if coeff == 0:
                continue
            if var in self.rows:
                for inner, inner_coeff in self.rows[var].items():
                    row[inner] = row.get(inner, Fraction(0)) + coeff * inner_coeff
            else:
                row[var] = row.get(var, Fraction(0)) + coeff
        row = {v: c for v, c in row.items() if c != 0}
        self.rows[s] = row
        for var in row:
            self.cols[var].add(s)
        # Initialize the assignment consistently with the row.
        value = DeltaRational(0)
        for var, coeff in row.items():
            value = value + self.assign[var] * coeff
        self.assign[s] = value
        return s

    def is_basic(self, var: int) -> bool:
        return var in self.rows

    # ------------------------------------------------------------------
    # Incremental bound assertion
    # ------------------------------------------------------------------

    def assert_upper(self, var: int, bound: DeltaRational,
                     lit: int) -> Optional[List[int]]:
        """Assert ``var <= bound``; returns a conflict explanation or None."""
        lower = self.lower[var]
        if lower is not None and bound < lower:
            self._log.append(("noop",))
            explanation = [self.lower_lit[var]]
            if lit != NO_LIT:
                explanation.append(lit)
            if self.certify:
                self._set_witness([(self.lower_lit[var], 1), (lit, 1)])
            return [l for l in explanation if l != NO_LIT]
        current = self.upper[var]
        if current is not None and current <= bound:
            self._log.append(("noop",))
            return None
        self._log.append(("upper", var, current, self.upper_lit[var]))
        self.upper[var] = bound
        self.upper_lit[var] = lit
        if not self.is_basic(var) and self.assign[var] > bound:
            self._update(var, bound)
        self.needs_check = True
        return None

    def assert_lower(self, var: int, bound: DeltaRational,
                     lit: int) -> Optional[List[int]]:
        """Assert ``var >= bound``; returns a conflict explanation or None."""
        upper = self.upper[var]
        if upper is not None and bound > upper:
            self._log.append(("noop",))
            explanation = [self.upper_lit[var]]
            if lit != NO_LIT:
                explanation.append(lit)
            if self.certify:
                self._set_witness([(self.upper_lit[var], 1), (lit, 1)])
            return [l for l in explanation if l != NO_LIT]
        current = self.lower[var]
        if current is not None and current >= bound:
            self._log.append(("noop",))
            return None
        self._log.append(("lower", var, current, self.lower_lit[var]))
        self.lower[var] = bound
        self.lower_lit[var] = lit
        if not self.is_basic(var) and self.assign[var] < bound:
            self._update(var, bound)
        self.needs_check = True
        return None

    def mark(self) -> int:
        """Current undo-log position (for scoped retraction)."""
        return len(self._log)

    def pop(self, count: int = 1) -> None:
        """Undo the last *count* assert_* calls."""
        for _ in range(count):
            entry = self._log.pop()
            if entry[0] == "noop":
                continue
            kind, var, old_bound, old_lit = entry
            if kind == "upper":
                self.upper[var] = old_bound
                self.upper_lit[var] = old_lit
            else:
                self.lower[var] = old_bound
                self.lower_lit[var] = old_lit

    def pop_to(self, marker: int) -> None:
        self.pop(len(self._log) - marker)

    # ------------------------------------------------------------------
    # Assignment maintenance
    # ------------------------------------------------------------------

    def _update(self, nonbasic: int, value: DeltaRational) -> None:
        delta = value - self.assign[nonbasic]
        for basic in self.cols[nonbasic]:
            coeff = self.rows[basic][nonbasic]
            self.assign[basic] = self.assign[basic] + delta * coeff
        self.assign[nonbasic] = value

    def _pivot(self, basic: int, nonbasic: int) -> None:
        """Exchange *basic* and *nonbasic* in the tableau (no value change)."""
        if self.budget is not None:
            self.budget.on_pivot()
        self.pivots += 1
        row = self.rows.pop(basic)
        a = row.pop(nonbasic)
        for var in row:
            self.cols[var].discard(basic)
        self.cols[nonbasic].discard(basic)
        # nonbasic = (basic - sum(other terms)) / a
        new_row: Dict[int, Fraction] = {basic: Fraction(1) / a}
        for var, coeff in row.items():
            new_row[var] = -coeff / a
        # Substitute into every other row mentioning `nonbasic`.
        for other in list(self.cols[nonbasic]):
            other_row = self.rows[other]
            factor = other_row.pop(nonbasic)
            self.cols[nonbasic].discard(other)
            for var, coeff in new_row.items():
                updated = other_row.get(var, Fraction(0)) + factor * coeff
                if updated == 0:
                    if var in other_row:
                        del other_row[var]
                        self.cols[var].discard(other)
                else:
                    if var not in other_row:
                        self.cols[var].add(other)
                    other_row[var] = updated
        self.rows[nonbasic] = new_row
        for var in new_row:
            self.cols[var].add(nonbasic)

    def _pivot_and_update(self, basic: int, nonbasic: int,
                          value: DeltaRational) -> None:
        a = self.rows[basic][nonbasic]
        theta = (value - self.assign[basic]) / a
        self.assign[basic] = value
        self.assign[nonbasic] = self.assign[nonbasic] + theta
        for other in self.cols[nonbasic]:
            if other != basic:
                coeff = self.rows[other][nonbasic]
                self.assign[other] = self.assign[other] + theta * coeff
        self._pivot(basic, nonbasic)

    # ------------------------------------------------------------------
    # Feasibility check
    # ------------------------------------------------------------------

    def check(self) -> Optional[List[int]]:
        """Pivot to feasibility; returns a conflict explanation or None."""
        if not self.needs_check:
            return None
        while True:
            violated = None
            below = False
            for var in sorted(self.rows):  # Bland's rule: smallest index
                value = self.assign[var]
                lo = self.lower[var]
                if lo is not None and value < lo:
                    violated, below = var, True
                    break
                hi = self.upper[var]
                if hi is not None and value > hi:
                    violated, below = var, False
                    break
            if violated is None:
                self.needs_check = False
                return None
            conflict = self._repair(violated, below)
            if conflict is not None:
                return conflict

    def _repair(self, basic: int, below: bool) -> Optional[List[int]]:
        row = self.rows[basic]
        target = self.lower[basic] if below else self.upper[basic]
        assert target is not None
        for nonbasic in sorted(row):
            coeff = row[nonbasic]
            if below:
                can_help = (coeff > 0 and self._can_increase(nonbasic)) or \
                           (coeff < 0 and self._can_decrease(nonbasic))
            else:
                can_help = (coeff > 0 and self._can_decrease(nonbasic)) or \
                           (coeff < 0 and self._can_increase(nonbasic))
            if can_help:
                self._pivot_and_update(basic, nonbasic, target)
                return None
        # No pivot candidate: the row is a certificate of infeasibility.
        explanation = []
        witness = [] if self.certify else None
        bound_lit = self.lower_lit[basic] if below else self.upper_lit[basic]
        if bound_lit != NO_LIT:
            explanation.append(bound_lit)
        if witness is not None:
            witness.append((bound_lit, 1))
        for nonbasic, coeff in row.items():
            if below:
                lit = self.upper_lit[nonbasic] if coeff > 0 \
                    else self.lower_lit[nonbasic]
            else:
                lit = self.lower_lit[nonbasic] if coeff > 0 \
                    else self.upper_lit[nonbasic]
            if lit != NO_LIT:
                explanation.append(lit)
            if witness is not None:
                witness.append((lit, abs(coeff)))
        if witness is not None:
            self._set_witness(witness)
        return explanation

    def _set_witness(self, pairs) -> None:
        """Record the Farkas witness for the conflict just explained.

        A bound asserted without a literal (``NO_LIT``) cannot be named
        in a certificate; the witness is then marked unavailable, which
        the checker treats as a failure — never as a silent accept.
        """
        if any(l == NO_LIT for l, _ in pairs):
            self.last_witness = None
        else:
            self.last_witness = [(l, Fraction(c)) for l, c in pairs]

    def take_witness(self) -> Optional[List[Tuple[int, Fraction]]]:
        """Consume the witness for the most recent conflict."""
        witness, self.last_witness = self.last_witness, None
        return witness

    def _can_increase(self, var: int) -> bool:
        hi = self.upper[var]
        return hi is None or self.assign[var] < hi

    def _can_decrease(self, var: int) -> bool:
        lo = self.lower[var]
        return lo is None or self.assign[var] > lo

    # ------------------------------------------------------------------
    # Phase-2 optimization
    # ------------------------------------------------------------------

    def minimize(self, objective: int,
                 max_pivots: int = 1000000) -> DeltaRational:
        """Minimize variable *objective* under the asserted bounds.

        Requires a feasible assignment (call :meth:`check` first).  Leaves
        the assignment at an optimal vertex and returns the minimum value.
        Raises :class:`UnboundedError` when the objective is unbounded
        below.
        """
        if self.needs_check:
            raise SolverError("minimize() requires a feasible tableau; "
                              "call check() first")
        # Ensure the objective is basic so its row expresses the gradient.
        if objective not in self.rows:
            if self.cols.get(objective):
                self._pivot(next(iter(self.cols[objective])), objective)
            else:
                # Free-standing variable: its minimum is its lower bound.
                lo = self.lower[objective]
                if lo is None:
                    raise UnboundedError("objective is unbounded below")
                self._update(objective, lo)
                return lo

        for _ in range(max_pivots):
            # The objective's own lower bound is itself a constraint; once
            # attained no further improvement is possible.
            own_lower = self.lower[objective]
            if own_lower is not None and self.assign[objective] <= own_lower:
                return self.assign[objective]
            row = self.rows[objective]
            entering = None
            direction = 0
            for nonbasic in sorted(row):
                coeff = row[nonbasic]
                if coeff < 0 and self._can_increase(nonbasic):
                    entering, direction = nonbasic, +1
                    break
                if coeff > 0 and self._can_decrease(nonbasic):
                    entering, direction = nonbasic, -1
                    break
            if entering is None:
                return self.assign[objective]
            self._move_entering(entering, direction, objective)
        raise SolverError("minimize() exceeded the pivot budget")

    def _move_entering(self, entering: int, direction: int,
                       objective: int) -> None:
        """Move *entering* as far as bounds allow in *direction* (+1/-1)."""
        # Limit from the entering variable's own bound.
        best_theta: Optional[DeltaRational] = None
        limiting: Optional[int] = None  # basic var that limits, or None
        own_bound = self.upper[entering] if direction > 0 \
            else self.lower[entering]
        if own_bound is not None:
            best_theta = (own_bound - self.assign[entering]) * direction
        # Ratio test over the basic variables in the entering column.
        # Ties broken toward the smallest variable index (Bland) to avoid
        # cycling on degenerate vertices.
        for basic in sorted(self.cols[entering]):
            coeff = self.rows[basic][entering]
            # d(basic) = coeff * direction per unit of theta.
            slope = coeff * direction
            if slope > 0:
                bound = self.upper[basic]
                if bound is None:
                    continue
                theta = (bound - self.assign[basic]) / slope
            else:
                bound = self.lower[basic]
                if bound is None:
                    continue
                theta = (bound - self.assign[basic]) / slope
            if best_theta is None or theta < best_theta:
                best_theta = theta
                limiting = basic
        if best_theta is None:
            raise UnboundedError("objective is unbounded below")
        if limiting is None:
            # The entering variable hits its own bound: plain update.
            new_value = self.assign[entering] + best_theta * direction
            self._update(entering, new_value)
        else:
            slope = self.rows[limiting][entering] * direction
            target = self.upper[limiting] if slope > 0 else self.lower[limiting]
            assert target is not None
            if limiting == objective:
                # Degenerate: the objective row limits itself; just update.
                new_value = self.assign[entering] + best_theta * direction
                self._update(entering, new_value)
            else:
                self._pivot_and_update(limiting, entering, target)

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------

    def concrete_values(self) -> List[Fraction]:
        """Resolve delta and return rational values for all variables."""
        delta = resolve_delta(self.assign, self.lower, self.upper)
        return [value.substitute(delta) for value in self.assign]

    def value(self, var: int) -> DeltaRational:
        return self.assign[var]
