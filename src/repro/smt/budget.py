"""Resource budgets for the solver stack.

A :class:`SolverBudget` bounds one logical task — typically a whole impact
analysis spanning many SMT ``solve()`` calls, optimizer iterations and
exact-LP OPF solves — by wall clock and/or by work counters (SAT
conflicts, SAT decisions, simplex pivots).  The budget object owns the
counters, so limits are cumulative across every solver it is attached to
within the task.

Enforcement is cooperative and cheap: the SAT search calls
:meth:`on_conflict`/:meth:`on_decision` per event and the simplex calls
:meth:`on_pivot` per pivot (before mutating the tableau, so an interrupted
solver stays consistent and reusable).  Counter limits are compared on
every event; the wall clock is only read every ``check_interval`` events,
keeping the overhead of an *unbudgeted* or generously-budgeted solve to a
single predictable ``is not None`` branch per event.

On exhaustion every hook raises :class:`~repro.exceptions.BudgetExhausted`
— and keeps raising on subsequent events, so a task whose budget is spent
fails fast no matter how many more solves it attempts.  Layers that want a
non-raising probe (e.g. per-candidate checks in the fast analyzer) use
:meth:`exhausted`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.exceptions import BudgetExhausted

__all__ = ["BudgetExhausted", "SolverBudget"]


class SolverBudget:
    """Cooperative resource budget shared across one task's solvers."""

    __slots__ = ("wall_seconds", "max_conflicts", "max_decisions",
                 "max_pivots", "check_interval", "conflicts", "decisions",
                 "pivots", "exhausted_reason", "_deadline", "_events")

    def __init__(self, wall_seconds: Optional[float] = None,
                 max_conflicts: Optional[int] = None,
                 max_decisions: Optional[int] = None,
                 max_pivots: Optional[int] = None,
                 check_interval: int = 64) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.wall_seconds = wall_seconds
        self.max_conflicts = max_conflicts
        self.max_decisions = max_decisions
        self.max_pivots = max_pivots
        self.check_interval = check_interval
        self.conflicts = 0
        self.decisions = 0
        self.pivots = 0
        self.exhausted_reason: Optional[str] = None
        self._deadline: Optional[float] = None
        self._events = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SolverBudget":
        """Arm the wall-clock deadline (idempotent); returns self."""
        if self.wall_seconds is not None and self._deadline is None:
            self._deadline = time.perf_counter() + self.wall_seconds
        return self

    @property
    def started(self) -> bool:
        return self.wall_seconds is None or self._deadline is not None

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (None without a wall budget)."""
        if self._deadline is None:
            return None
        return self._deadline - time.perf_counter()

    def clamped(self, wall_seconds: Optional[float]) -> "SolverBudget":
        """A fresh, unstarted budget with the wall limit tightened.

        The analysis service propagates each request's deadline this way:
        the worker builds the request's counter limits, then clamps the
        wall budget to the seconds the request has left, so a slow probe
        degrades to a ``budget_exhausted`` partial answer *inside* the
        deadline instead of wedging the connection.  ``None`` keeps the
        existing limits (still returning a fresh budget).
        """
        limits = self.to_dict()
        if wall_seconds is not None:
            wall = limits.get("wall_seconds")
            limits["wall_seconds"] = wall_seconds if wall is None \
                else min(wall, wall_seconds)
        return SolverBudget(**limits)

    # ------------------------------------------------------------------
    # Event hooks (called by the solvers)
    # ------------------------------------------------------------------

    def on_conflict(self) -> None:
        self.conflicts += 1
        if self.max_conflicts is not None \
                and self.conflicts >= self.max_conflicts:
            self._exhaust(f"conflict budget ({self.max_conflicts}) "
                          f"exhausted")
        self._tick()

    def on_decision(self) -> None:
        self.decisions += 1
        if self.max_decisions is not None \
                and self.decisions >= self.max_decisions:
            self._exhaust(f"decision budget ({self.max_decisions}) "
                          f"exhausted")
        self._tick()

    def on_pivot(self) -> None:
        self.pivots += 1
        if self.max_pivots is not None and self.pivots >= self.max_pivots:
            self._exhaust(f"simplex pivot budget ({self.max_pivots}) "
                          f"exhausted")
        self._tick()

    def _tick(self) -> None:
        if self.exhausted_reason is not None:
            # Already spent: keep failing fast on every further event.
            raise BudgetExhausted(self.exhausted_reason)
        self._events += 1
        if self._deadline is not None \
                and self._events % self.check_interval == 0:
            self.check_wall()

    # ------------------------------------------------------------------
    # Direct checks (called by analyzer loops)
    # ------------------------------------------------------------------

    def check_wall(self) -> None:
        """Unconditional deadline check; raises on expiry."""
        if self.exhausted_reason is not None:
            raise BudgetExhausted(self.exhausted_reason)
        if self._deadline is not None \
                and time.perf_counter() >= self._deadline:
            self._exhaust(f"wall-clock budget ({self.wall_seconds}s) "
                          f"exhausted")

    def exhausted(self) -> bool:
        """Non-raising probe used between units of work."""
        if self.exhausted_reason is not None:
            return True
        try:
            self.check_wall()
        except BudgetExhausted:
            return True
        return False

    def _exhaust(self, reason: str) -> None:
        if self.exhausted_reason is None:
            self.exhausted_reason = reason
        raise BudgetExhausted(self.exhausted_reason)

    # ------------------------------------------------------------------
    # Serialization (ships limits, not runtime state, to workers)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if self.wall_seconds is not None:
            payload["wall_seconds"] = self.wall_seconds
        if self.max_conflicts is not None:
            payload["max_conflicts"] = self.max_conflicts
        if self.max_decisions is not None:
            payload["max_decisions"] = self.max_decisions
        if self.max_pivots is not None:
            payload["max_pivots"] = self.max_pivots
        if self.check_interval != 64:
            payload["check_interval"] = self.check_interval
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SolverBudget":
        return cls(**payload)

    def __repr__(self) -> str:
        limits = ", ".join(f"{k}={v}" for k, v in self.to_dict().items())
        return f"SolverBudget({limits})"
