"""Exact linear-objective optimization on top of :class:`SmtSolver`.

The OPF model needs *optimal* generation cost, not just feasibility.  We
implement the standard DPLL(T) optimization loop:

1. solve; if unsat, the incumbent (if any) is globally optimal;
2. run phase-2 simplex to minimize the objective *within the current
   propositional model's* asserted bounds (a local optimum);
3. assert ``objective < local_optimum`` and repeat.

Each iteration strictly improves the incumbent and eliminates at least the
current propositional polytope, so the loop terminates for closed (non-
strict) constraint systems — which is all the paper's encodings use.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Union

from repro.exceptions import BudgetExhausted, ConvergenceError
from repro.smt.solver import Model, SmtSolver, SolveResult
from repro.smt.terms import BoolTerm, LinExpr, RealVar


@dataclass
class OptimizationResult:
    """Outcome of :func:`minimize` / :func:`maximize`."""

    feasible: bool
    optimum: Optional[Fraction]
    model: Optional[Model]
    iterations: int = 0


def minimize(solver: SmtSolver,
             objective: Union[LinExpr, RealVar],
             assumptions: Sequence[BoolTerm] = (),
             max_iterations: int = 10000) -> OptimizationResult:
    """Minimize *objective* subject to the solver's assertions.

    The solver's assertion state is preserved (the objective bounds are
    asserted inside a scratch push/pop scope).
    """
    expr = LinExpr.of(objective)
    obj_var = solver._simplex_var_for_objective(expr)
    const = expr.const

    solver.push()
    try:
        best: Optional[Fraction] = None
        best_model: Optional[Model] = None
        iterations = 0
        budget = solver.budget
        while iterations < max_iterations:
            iterations += 1
            if budget is not None:
                # Per-iteration deadline check: an instance solved purely
                # by propagation generates no budget events, so the wall
                # clock must be read here.
                budget.check_wall()
            result = solver.solve(assumptions)
            if result is SolveResult.UNSAT:
                break
            if result is SolveResult.UNKNOWN:
                # Budget ran out mid-optimization: unwind (the finally
                # clause pops the scratch scope) and let the caller
                # report a partial result.
                raise BudgetExhausted(solver.last_budget_reason
                                      or "solver budget exhausted during "
                                         "optimization")
            local = solver.theory.simplex.minimize(obj_var)
            # For closed constraint systems the optimum is attained and the
            # infinitesimal component is zero; otherwise the rational part
            # is the infimum.
            local_value = local.c + const
            if best is None or local_value < best:
                best = local_value
                best_model = solver._extract_model()
            solver.add(expr < best)
        else:
            raise ConvergenceError(
                f"optimizer exceeded {max_iterations} iterations")
    finally:
        solver.pop()

    if best is None:
        return OptimizationResult(False, None, None, iterations)
    return OptimizationResult(True, best, best_model, iterations)


def maximize(solver: SmtSolver,
             objective: Union[LinExpr, RealVar],
             assumptions: Sequence[BoolTerm] = (),
             max_iterations: int = 10000) -> OptimizationResult:
    """Maximize *objective*; implemented as ``-minimize(-objective)``."""
    expr = LinExpr.of(objective)
    result = minimize(solver, -expr, assumptions, max_iterations)
    if result.optimum is not None:
        result.optimum = -result.optimum
    return result
