"""Term language for the SMT solver: Booleans plus linear real arithmetic.

The paper's encoding (Section III) uses exactly two sorts:

* Booleans for the attack attributes (``p_i``, ``q_i``, ``a_i``, ...), and
* Reals, combined linearly, for power flows, consumptions and phase angles
  (the admittances ``d_i`` are constants, so every product is constant *
  variable).

This module therefore implements quantifier-free linear real arithmetic
(QF_LRA).  Terms are built with overloaded operators::

    x, y = RealVar("x"), RealVar("y")
    p = BoolVar("p")
    formula = implies(p, (2 * x - y <= 5) & (x > 0))

Linear expressions are normalized eagerly into a coefficient map so that the
theory solver receives canonical atoms.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from repro.exceptions import SolverError
from repro.smt.rational import to_fraction

Number = Union[int, float, str, Fraction]

_var_counter = itertools.count()


# ---------------------------------------------------------------------------
# Real (linear) expressions
# ---------------------------------------------------------------------------

class RealVar:
    """A real-sorted SMT variable."""

    __slots__ = ("name", "vid")

    def __init__(self, name: str) -> None:
        self.name = name
        self.vid = next(_var_counter)

    def __repr__(self) -> str:
        return f"RealVar({self.name})"

    def __hash__(self) -> int:
        return self.vid

    def __eq__(self, other: object) -> bool:
        return self is other

    # Arithmetic promotes to LinExpr.
    def _lin(self) -> "LinExpr":
        return LinExpr({self: Fraction(1)}, Fraction(0))

    def __add__(self, other): return self._lin() + other
    def __radd__(self, other): return self._lin() + other
    def __sub__(self, other): return self._lin() - other
    def __rsub__(self, other): return (-self._lin()) + other
    def __neg__(self): return -self._lin()
    def __mul__(self, other): return self._lin() * other
    def __rmul__(self, other): return self._lin() * other
    def __truediv__(self, other): return self._lin() / other

    # Comparisons build atoms.
    def __le__(self, other): return self._lin() <= other
    def __lt__(self, other): return self._lin() < other
    def __ge__(self, other): return self._lin() >= other
    def __gt__(self, other): return self._lin() > other

    def eq(self, other) -> "BoolTerm":
        return self._lin().eq(other)

    def neq(self, other) -> "BoolTerm":
        return self._lin().neq(other)


class LinExpr:
    """An immutable linear expression ``sum(coeff * var) + const``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[RealVar, Fraction], const: Fraction) -> None:
        self.coeffs: Dict[RealVar, Fraction] = {
            v: c for v, c in coeffs.items() if c != 0
        }
        self.const = const

    @classmethod
    def constant(cls, value: Number) -> "LinExpr":
        return cls({}, to_fraction(value))

    @classmethod
    def of(cls, value: Union["LinExpr", RealVar, Number]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, RealVar):
            return value._lin()
        return cls.constant(value)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.of(other)
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.of(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.of(other) + (-self)

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __mul__(self, scalar) -> "LinExpr":
        if isinstance(scalar, (LinExpr, RealVar)):
            raise SolverError("nonlinear product in QF_LRA term")
        scalar = to_fraction(scalar)
        return LinExpr({v: c * scalar for v, c in self.coeffs.items()},
                       self.const * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> "LinExpr":
        scalar = to_fraction(scalar)
        if scalar == 0:
            raise ZeroDivisionError("division of linear expression by zero")
        return self * (Fraction(1) / scalar)

    # -- comparisons ---------------------------------------------------------

    def __le__(self, other) -> "BoolTerm":
        return Atom.make(self - LinExpr.of(other), Atom.LE)

    def __lt__(self, other) -> "BoolTerm":
        return Atom.make(self - LinExpr.of(other), Atom.LT)

    def __ge__(self, other) -> "BoolTerm":
        return Atom.make(LinExpr.of(other) - self, Atom.LE)

    def __gt__(self, other) -> "BoolTerm":
        return Atom.make(LinExpr.of(other) - self, Atom.LT)

    def eq(self, other) -> "BoolTerm":
        return Atom.make(self - LinExpr.of(other), Atom.EQ)

    def neq(self, other) -> "BoolTerm":
        return Not(self.eq(other))

    # -- utilities -----------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, assignment: Mapping[RealVar, Fraction]) -> Fraction:
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * assignment[var]
        return total

    def variables(self) -> Iterable[RealVar]:
        return self.coeffs.keys()

    def __repr__(self) -> str:
        parts = [f"{c}*{v.name}" for v, c in sorted(
            self.coeffs.items(), key=lambda item: item[0].vid)]
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


# ---------------------------------------------------------------------------
# Boolean terms
# ---------------------------------------------------------------------------

class BoolTerm:
    """Base class for Boolean-sorted terms."""

    __slots__ = ()

    def __and__(self, other: "BoolTerm") -> "BoolTerm":
        return And(self, other)

    def __or__(self, other: "BoolTerm") -> "BoolTerm":
        return Or(self, other)

    def __invert__(self) -> "BoolTerm":
        return Not(self)


class BoolConst(BoolTerm):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class BoolVar(BoolTerm):
    """A Boolean-sorted SMT variable."""

    __slots__ = ("name", "vid")

    def __init__(self, name: str) -> None:
        self.name = name
        self.vid = next(_var_counter)

    def __repr__(self) -> str:
        return f"BoolVar({self.name})"

    def __hash__(self) -> int:
        return self.vid

    def __eq__(self, other: object) -> bool:
        return self is other


class Not(BoolTerm):
    __slots__ = ("arg",)

    def __new__(cls, arg: BoolTerm):
        # Collapse double negation and constants for smaller CNF.
        if isinstance(arg, Not):
            return arg.arg
        if isinstance(arg, BoolConst):
            return FALSE if arg.value else TRUE
        self = object.__new__(cls)
        self.arg = arg
        return self

    def __repr__(self) -> str:
        return f"Not({self.arg!r})"


def _flatten(cls, args: Sequence[BoolTerm]) -> Tuple[BoolTerm, ...]:
    flat = []
    for arg in args:
        if isinstance(arg, cls):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    return tuple(flat)


class And(BoolTerm):
    __slots__ = ("args",)

    def __new__(cls, *args: BoolTerm):
        flat = [a for a in _flatten(cls, args)
                if not (isinstance(a, BoolConst) and a.value)]
        if any(isinstance(a, BoolConst) and not a.value for a in flat):
            return FALSE
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        self = object.__new__(cls)
        self.args = tuple(flat)
        return self

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.args))})"


class Or(BoolTerm):
    __slots__ = ("args",)

    def __new__(cls, *args: BoolTerm):
        flat = [a for a in _flatten(cls, args)
                if not (isinstance(a, BoolConst) and not a.value)]
        if any(isinstance(a, BoolConst) and a.value for a in flat):
            return TRUE
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        self = object.__new__(cls)
        self.args = tuple(flat)
        return self

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.args))})"


def implies(antecedent: BoolTerm, consequent: BoolTerm) -> BoolTerm:
    """Logical implication ``antecedent -> consequent``."""
    return Or(Not(antecedent), consequent)


def iff(left: BoolTerm, right: BoolTerm) -> BoolTerm:
    """Logical equivalence ``left <-> right``."""
    return And(implies(left, right), implies(right, left))


def ite(cond: BoolTerm, then: BoolTerm, other: BoolTerm) -> BoolTerm:
    """Boolean if-then-else."""
    return And(implies(cond, then), implies(Not(cond), other))


class AtMost(BoolTerm):
    """Cardinality constraint ``sum(args) <= bound`` over Boolean args.

    Used for the attacker resource limits (paper Eq. 22).  Encoded to CNF
    with the sequential-counter encoding in :mod:`repro.smt.cnf`.
    """

    __slots__ = ("args", "bound")

    def __new__(cls, args: Sequence[BoolTerm], bound: int):
        args = tuple(args)
        if bound < 0:
            if not args:
                return FALSE
        if bound >= len(args):
            return TRUE
        self = object.__new__(cls)
        self.args = args
        self.bound = bound
        return self

    def __repr__(self) -> str:
        return f"AtMost({len(self.args)} args, <= {self.bound})"


def at_most(args: Sequence[BoolTerm], bound: int) -> BoolTerm:
    return AtMost(args, bound)


def at_least(args: Sequence[BoolTerm], bound: int) -> BoolTerm:
    """``sum(args) >= bound`` via ``sum(not args) <= n - bound``."""
    args = tuple(args)
    if bound <= 0:
        return TRUE
    if bound > len(args):
        return FALSE
    return AtMost(tuple(Not(a) for a in args), len(args) - bound)


def exactly(args: Sequence[BoolTerm], bound: int) -> BoolTerm:
    return And(at_most(args, bound), at_least(args, bound))


# ---------------------------------------------------------------------------
# Theory atoms
# ---------------------------------------------------------------------------

class Atom(BoolTerm):
    """A normalized linear-arithmetic atom ``expr OP bound``.

    Canonical form: ``expr`` carries no constant term and its first
    coefficient (in variable-id order) is positive; the constant is moved to
    ``bound``.  ``op`` is one of :data:`LE`, :data:`LT`, :data:`EQ`.  ``GE``,
    ``GT`` and disequalities are rewritten during construction so the theory
    solver sees only three operator kinds.
    """

    LE = "<="
    LT = "<"
    EQ = "=="

    __slots__ = ("expr", "op", "bound", "key")

    def __new__(cls, expr: LinExpr, op: str, bound: Fraction, key: tuple):
        self = object.__new__(cls)
        self.expr = expr
        self.op = op
        self.bound = bound
        self.key = key
        return self

    @staticmethod
    def make(diff: LinExpr, op: str) -> BoolTerm:
        """Build a canonical atom from ``diff OP 0``; fold constants."""
        if diff.is_constant:
            value = diff.const
            if op == Atom.LE:
                return TRUE if value <= 0 else FALSE
            if op == Atom.LT:
                return TRUE if value < 0 else FALSE
            return TRUE if value == 0 else FALSE

        bound = -diff.const
        expr = LinExpr(diff.coeffs, Fraction(0))
        # Scale so the smallest-vid coefficient is +1 (canonical).
        first_var = min(expr.coeffs, key=lambda v: v.vid)
        scale = expr.coeffs[first_var]
        negate = scale < 0
        expr = expr / scale if not negate else expr / scale
        bound = bound / scale
        if negate and op != Atom.EQ:
            # Dividing by a negative flips the inequality:
            #   expr <= b  ->  expr' >= b'  ->  -(expr' < b')... handle by
            # rewriting:  expr' >= b'  ==  Not(expr' < b').
            inner_op = Atom.LT if op == Atom.LE else Atom.LE
            atom = Atom._intern(expr, inner_op, bound)
            return Not(atom)
        return Atom._intern(expr, op, bound)

    _interned: Dict[tuple, "Atom"] = {}

    @staticmethod
    def _intern(expr: LinExpr, op: str, bound: Fraction) -> "Atom":
        key = (tuple(sorted(((v.vid, c) for v, c in expr.coeffs.items()))),
               op, bound)
        atom = Atom._interned.get(key)
        if atom is None:
            atom = Atom.__new__(Atom, expr, op, bound, key)
            Atom._interned[key] = atom
        return atom

    def evaluate(self, assignment: Mapping[RealVar, Fraction]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.op == Atom.LE:
            return value <= self.bound
        if self.op == Atom.LT:
            return value < self.bound
        return value == self.bound

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"Atom({self.expr!r} {self.op} {self.bound})"


def linear_sum(terms: Iterable[Union[LinExpr, RealVar, Number]]) -> LinExpr:
    """Sum an iterable of linear expressions/variables/constants."""
    total = LinExpr.constant(0)
    for term in terms:
        total = total + LinExpr.of(term)
    return total
