"""DPLL(T) driver: the public SMT solver facade.

Usage mirrors the small core of the Z3 API that the paper's framework
needs::

    solver = SmtSolver()
    x = RealVar("x")
    p = BoolVar("p")
    solver.add(implies(p, x >= 2))
    solver.add(p)
    if solver.solve() is SolveResult.SAT:
        model = solver.model()
        model.real_value(x)   # Fraction
        model.bool_value(p)   # bool

``push``/``pop`` scoping is emulated with guard literals (each scope gets a
fresh Boolean guard; clauses asserted inside the scope carry the negated
guard and every solve assumes the active guards), which keeps the CDCL core
simple while still supporting the framework's iterate-and-block loop.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exceptions import BudgetExhausted, SolverError
from repro.smt.budget import SolverBudget
from repro.smt.cnf import CnfConverter
from repro.smt.proof import ProofLog, UnsatCertificate
from repro.smt.rational import DeltaRational
from repro.smt.sat import FALSE, TRUE, SatSolver, TheoryListener
from repro.smt.simplex import NO_LIT, Simplex
from repro.smt.terms import (
    Atom,
    BoolTerm,
    BoolVar,
    LinExpr,
    RealVar,
)


class SolveResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    #: the attached :class:`~repro.smt.budget.SolverBudget` ran out before
    #: the search concluded; statistics up to that point are recorded.
    UNKNOWN = "unknown"


@dataclass
class SmtStatistics:
    """Aggregate statistics of a solver instance (for the evaluation)."""

    solve_calls: int = 0
    total_time: float = 0.0
    sat_vars: int = 0
    clauses: int = 0
    theory_atoms: int = 0
    real_vars: int = 0
    decisions: int = 0
    conflicts: int = 0
    theory_conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    simplex_pivots: int = 0
    #: number of ``solve()`` calls that ended in ``UNKNOWN`` because the
    #: attached budget ran out.
    budget_exhaustions: int = 0


class Model:
    """An immutable satisfying assignment snapshot."""

    def __init__(self, bool_values: Mapping[BoolVar, bool],
                 real_values: Mapping[RealVar, Fraction]) -> None:
        self._bools = dict(bool_values)
        self._reals = dict(real_values)

    def bool_value(self, var: BoolVar, strict: bool = False) -> bool:
        """Value of *var*; with ``strict`` a variable absent from the
        model raises :class:`KeyError` instead of defaulting to False
        (absent variables usually mean a decoder asked about a variable
        the encoding never constrained — a bug worth surfacing)."""
        if strict and var not in self._bools:
            raise KeyError(f"boolean variable {var.name!r} is not in "
                           f"the model")
        return self._bools.get(var, False)

    def real_value(self, var: RealVar, strict: bool = False) -> Fraction:
        """Value of *var*; with ``strict`` an unknown variable raises
        :class:`KeyError` instead of defaulting to 0."""
        if strict and var not in self._reals:
            raise KeyError(f"real variable {var.name!r} is not in "
                           f"the model")
        return self._reals.get(var, Fraction(0))

    def eval_expr(self, expr) -> Fraction:
        expr = LinExpr.of(expr)
        total = expr.const
        for var, coeff in expr.coeffs.items():
            total += coeff * self.real_value(var)
        return total

    def __repr__(self) -> str:
        bools = {v.name: val for v, val in self._bools.items()}
        reals = {v.name: str(val) for v, val in self._reals.items()}
        return f"Model(bools={bools}, reals={reals})"


class _LraBridge(TheoryListener):
    """Adapts the simplex solver to the SAT solver's theory interface."""

    def __init__(self) -> None:
        self.simplex = Simplex()
        self.theory_vars: set = set()          # SAT vars that carry atoms
        self.atom_info: Dict[int, tuple] = {}  # sat var -> (simplex var, op, bound)
        self.real_to_simplex: Dict[RealVar, int] = {}
        self._expr_slack: Dict[tuple, int] = {}
        self._asserted: Dict[int, int] = {}    # sat var -> undo count

    # -- atom registration -------------------------------------------------

    def simplex_var_for_real(self, var: RealVar) -> int:
        idx = self.real_to_simplex.get(var)
        if idx is None:
            idx = self.simplex.new_variable()
            self.real_to_simplex[var] = idx
        return idx

    def register_atom(self, sat_var: int, atom: Atom) -> None:
        if sat_var in self.atom_info:
            return
        coeffs = {self.simplex_var_for_real(v): c
                  for v, c in atom.expr.coeffs.items()}
        if len(coeffs) == 1:
            (var, coeff), = coeffs.items()
            if coeff == 1:
                target = var
            else:
                target = self._slack_for(coeffs)
        else:
            target = self._slack_for(coeffs)
        self.atom_info[sat_var] = (target, atom.op, atom.bound)
        self.theory_vars.add(sat_var)

    def _slack_for(self, coeffs: Dict[int, Fraction]) -> int:
        key = tuple(sorted(coeffs.items()))
        slack = self._expr_slack.get(key)
        if slack is None:
            slack = self.simplex.add_row(dict(coeffs))
            self._expr_slack[key] = slack
        return slack

    # -- TheoryListener interface -------------------------------------------

    def is_theory_var(self, var: int) -> bool:
        return var in self.theory_vars

    def on_assign(self, lit: int) -> Optional[List[int]]:
        sat_var = abs(lit)
        target, op, bound = self.atom_info[sat_var]
        before = self.simplex.mark()
        if lit > 0:
            if op == Atom.LE:
                conflict = self.simplex.assert_upper(
                    target, DeltaRational(bound), lit)
            else:  # Atom.LT
                conflict = self.simplex.assert_upper(
                    target, DeltaRational.strict_upper(bound), lit)
        else:
            if op == Atom.LE:
                # not (target <= bound)  =>  target > bound
                conflict = self.simplex.assert_lower(
                    target, DeltaRational.strict_lower(bound), lit)
            else:
                # not (target < bound)  =>  target >= bound
                conflict = self.simplex.assert_lower(
                    target, DeltaRational(bound), lit)
        self._asserted[sat_var] = self.simplex.mark() - before
        return conflict

    def on_unassign(self, lit: int) -> None:
        sat_var = abs(lit)
        count = self._asserted.pop(sat_var, 0)
        if count:
            self.simplex.pop(count)

    def check(self) -> Optional[List[int]]:
        return self.simplex.check()

    def final_check(self) -> Optional[List[int]]:
        return self.simplex.check()

    def take_conflict_witness(self):
        return self.simplex.take_witness()


class SmtSolver:
    """SMT solver for quantifier-free Boolean + linear real arithmetic."""

    def __init__(self, certify: bool = False) -> None:
        self._theory = _LraBridge()
        self._sat = SatSolver(self._theory)
        self._cnf = CnfConverter(self._emit_clause, self._new_var)
        self._model: Optional[Model] = None
        self._guards: List[int] = []  # active push/pop guard literals
        self.stats = SmtStatistics()
        self._clause_count = 0
        self._budget: Optional[SolverBudget] = None
        #: why the last ``solve()`` returned ``UNKNOWN`` (None otherwise).
        self.last_budget_reason: Optional[str] = None
        self._certify = False
        # Original (pre-CNF) assertions, one list per open scope; only
        # maintained in certify mode, for independent model checking.
        self._assertion_scopes: List[List[BoolTerm]] = [[]]
        #: assumption terms of the most recent solve() (certify mode).
        self.last_assumptions: List[BoolTerm] = []
        #: UNSAT certificate of the most recent solve(), when it
        #: returned UNSAT in certify mode; None otherwise.
        self.last_certificate: Optional[UnsatCertificate] = None
        if certify:
            self.enable_certificates()

    # -- certified solving ------------------------------------------------

    @property
    def certify(self) -> bool:
        return self._certify

    def enable_certificates(self) -> None:
        """Switch on certificate generation (idempotent; cannot be
        undone).  Must be called before the first assertion so the proof
        log covers every input clause."""
        if self._certify:
            return
        if self._clause_count or self._sat.num_vars:
            raise SolverError("enable_certificates() must be called on a "
                              "fresh solver (the proof log would miss "
                              "already-asserted clauses)")
        self._certify = True
        self._sat.proof = ProofLog()
        self._theory.simplex.certify = True

    @property
    def proof(self) -> Optional[ProofLog]:
        return self._sat.proof

    @property
    def atom_of_var(self):
        """SAT variable -> theory :class:`Atom` map (for the checkers)."""
        return self._cnf.atom_of_var

    def active_assertions(self) -> List[BoolTerm]:
        """All original assertions in currently-open scopes (certify
        mode only; empty otherwise)."""
        return [term for scope in self._assertion_scopes for term in scope]

    # -- resource governance ---------------------------------------------

    def set_budget(self, budget: Optional[SolverBudget]) -> None:
        """Attach (or with None detach) a budget to the SAT core and the
        simplex; it persists across ``solve()`` calls, so cumulative
        limits span a whole analysis."""
        self._budget = budget
        self._sat.budget = budget
        self._theory.simplex.budget = budget

    @property
    def budget(self) -> Optional[SolverBudget]:
        return self._budget

    # -- plumbing ------------------------------------------------------------

    def _new_var(self) -> int:
        return self._sat.new_var()

    def _emit_clause(self, lits: List[int]) -> None:
        self._clause_count += 1
        self._sat.add_clause(lits)

    # -- assertions ------------------------------------------------------

    def add(self, term: BoolTerm) -> None:
        """Assert *term* (within the current push/pop scope, if any)."""
        self._sat._backtrack_to(0)
        if self._certify:
            self._assertion_scopes[-1].append(term)
        root_clauses = self._cnf.assert_term(term)
        self._register_new_atoms()
        guard = [-self._guards[-1]] if self._guards else []
        for clause in root_clauses:
            self._sat.add_clause(guard + clause)
            self._clause_count += 1

    def _register_new_atoms(self) -> None:
        for sat_var, atom in self._cnf.atom_of_var.items():
            self._theory.register_atom(sat_var, atom)

    def push(self) -> None:
        """Open a retractable assertion scope.

        Clauses added while a scope is open carry the scope's guard
        literal, so :meth:`pop` retracts them by asserting the guard's
        negation — no clause is ever physically deleted.  Learned
        clauses derived under guard assumptions include those guards in
        their derivation, so they stay sound after the pop.  This is
        what makes *warm* incremental reuse safe: one encoding can be
        re-solved under many per-scenario constraints (thresholds,
        blocking clauses) without rebuilding, with everything learned in
        earlier scenarios carried forward.
        """
        self._sat._backtrack_to(0)
        guard = self._sat.new_var()
        self._guards.append(guard)
        self._assertion_scopes.append([])

    def pop(self) -> None:
        """Close the innermost scope, retracting its assertions.

        The retracting unit clause permanently falsifies the scope's
        guard, so the scope's clauses become vacuous for every later
        :meth:`solve` — the base (scope-0) encoding is untouched and
        ready for the next :meth:`push`.
        """
        if not self._guards:
            raise SolverError("pop() without matching push()")
        self._sat._backtrack_to(0)
        guard = self._guards.pop()
        self._assertion_scopes.pop()
        self._sat.add_clause([-guard])

    # -- solving --------------------------------------------------------

    def solve(self, assumptions: Sequence[BoolTerm] = (),
              budget: Optional[SolverBudget] = None) -> SolveResult:
        """Check satisfiability under optional assumption terms.

        With a budget attached (here or via :meth:`set_budget`) the search
        is bounded: on exhaustion the result is ``SolveResult.UNKNOWN``,
        statistics cover the partial search, and ``last_budget_reason``
        names the limit that ran out.
        """
        if budget is not None:
            self.set_budget(budget)
        started = time.perf_counter()
        self.last_budget_reason = None
        self.last_certificate = None
        if self._certify:
            self.last_assumptions = list(assumptions)
        self._sat._backtrack_to(0)
        assumption_lits = [self._guards[i] for i in range(len(self._guards))]
        for term in assumptions:
            lit = self._cnf.convert(term)
            self._register_new_atoms()
            assumption_lits.append(lit)
        if self._budget is not None:
            self._budget.start()
        try:
            sat = self._sat.solve(assumption_lits)
        except BudgetExhausted as exc:
            self._model = None
            self.last_budget_reason = exc.reason
            self.stats.budget_exhaustions += 1
            self._record_stats(time.perf_counter() - started)
            return SolveResult.UNKNOWN
        if sat:
            self._model = self._extract_model()
        else:
            self._model = None
            if self._certify:
                # Snapshot the log length now: clauses asserted later
                # (e.g. blocking clauses) must not leak into this check.
                self.last_certificate = UnsatCertificate(
                    self._sat.proof, len(self._sat.proof),
                    tuple(assumption_lits))
        self._record_stats(time.perf_counter() - started)
        return SolveResult.SAT if sat else SolveResult.UNSAT

    def _record_stats(self, elapsed: float) -> None:
        self.stats.solve_calls += 1
        self.stats.total_time += elapsed
        self.stats.sat_vars = self._sat.num_vars
        self.stats.clauses = self._clause_count
        self.stats.theory_atoms = len(self._theory.atom_info)
        self.stats.real_vars = len(self._theory.real_to_simplex)
        self.stats.decisions = self._sat.stats.decisions
        self.stats.conflicts = self._sat.stats.conflicts
        self.stats.theory_conflicts = self._sat.stats.theory_conflicts
        self.stats.propagations = self._sat.stats.propagations
        self.stats.restarts = self._sat.stats.restarts
        self.stats.simplex_pivots = self._theory.simplex.pivots

    def _extract_model(self) -> Model:
        bool_values = {
            var: self._sat.model_value(lit)
            for var, lit in self._cnf._bool_vars.items()
        }
        concrete = self._theory.simplex.concrete_values()
        real_values = {
            var: concrete[idx]
            for var, idx in self._theory.real_to_simplex.items()
        }
        return Model(bool_values, real_values)

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("no model available (last result was unsat "
                              "or solve() was never called)")
        return self._model

    # -- hooks for the optimizer ------------------------------------------

    def _simplex_var_for_objective(self, expr: LinExpr) -> int:
        bridge = self._theory
        coeffs = {bridge.simplex_var_for_real(v): c
                  for v, c in expr.coeffs.items()}
        return bridge._slack_for(coeffs)

    @property
    def theory(self) -> _LraBridge:
        return self._theory
