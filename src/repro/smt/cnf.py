"""Tseitin CNF conversion from :mod:`repro.smt.terms` to SAT clauses.

The converter owns the mapping between term-level objects and SAT literals:

* each :class:`~repro.smt.terms.BoolVar` gets a SAT variable,
* each theory :class:`~repro.smt.terms.Atom` gets a SAT variable that the
  DPLL(T) driver watches (equalities are first split into a conjunction of
  two inequalities so the theory solver only ever sees ``<=`` / ``<``),
* every composite node (And/Or/Not/AtMost) gets a fresh definition variable
  constrained to be *equivalent* to the node, so definitions can be shared
  between incremental assertions.

Cardinality constraints use the sequential-counter encoding (Sinz 2005)
which is linear in ``n * bound`` and arc-consistent under unit propagation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.exceptions import SolverError
from repro.smt.terms import (
    Atom,
    AtMost,
    And,
    BoolConst,
    BoolTerm,
    BoolVar,
    LinExpr,
    Not,
    Or,
)


class CnfConverter:
    """Incrementally converts Boolean terms to CNF over integer literals.

    SAT variables are positive integers; a literal is ``+v`` or ``-v``.
    The converter is stateful so repeated :meth:`convert` calls share
    definitions (the same subterm converts to the same literal).
    """

    def __init__(self, emit_clause: Callable[[List[int]], None],
                 new_var: Callable[[], int]) -> None:
        self._emit = emit_clause
        self._new_var = new_var
        self._bool_vars: Dict[BoolVar, int] = {}
        self._atoms: Dict[Atom, int] = {}
        self._defs: Dict[Tuple, int] = {}
        self.atom_of_var: Dict[int, Atom] = {}
        self.var_of_atom: Dict[Atom, int] = {}
        self._true_lit: int = 0

    # -- literal allocation ----------------------------------------------

    def true_literal(self) -> int:
        """A literal constrained to be true (used for constant folding)."""
        if self._true_lit == 0:
            self._true_lit = self._new_var()
            self._emit([self._true_lit])
        return self._true_lit

    def literal_for_boolvar(self, var: BoolVar) -> int:
        lit = self._bool_vars.get(var)
        if lit is None:
            lit = self._new_var()
            self._bool_vars[var] = lit
        return lit

    def literal_for_atom(self, atom: Atom) -> int:
        lit = self._atoms.get(atom)
        if lit is None:
            lit = self._new_var()
            self._atoms[atom] = lit
            self.atom_of_var[lit] = atom
            self.var_of_atom[atom] = lit
        return lit

    # -- conversion --------------------------------------------------------

    def convert(self, term: BoolTerm) -> int:
        """Return a literal equivalent to *term*, emitting definitions."""
        if isinstance(term, BoolConst):
            top = self.true_literal()
            return top if term.value else -top
        if isinstance(term, BoolVar):
            return self.literal_for_boolvar(term)
        if isinstance(term, Atom):
            if term.op == Atom.EQ:
                # expr == b  <=>  (expr <= b) and not (expr < b)
                le = Atom._intern(term.expr, Atom.LE, term.bound)
                lt = Atom._intern(term.expr, Atom.LT, term.bound)
                return self.convert(And(le, Not(lt)))
            return self.literal_for_atom(term)
        if isinstance(term, Not):
            return -self.convert(term.arg)
        if isinstance(term, And):
            lits = tuple(self.convert(a) for a in term.args)
            return self._define_and(lits)
        if isinstance(term, Or):
            lits = tuple(self.convert(a) for a in term.args)
            return -self._define_and(tuple(-l for l in lits))
        if isinstance(term, AtMost):
            lits = tuple(self.convert(a) for a in term.args)
            return self._define_at_most(lits, term.bound)
        raise SolverError(f"cannot convert term of type {type(term).__name__}")

    def assert_term(self, term: BoolTerm) -> List[int]:
        """Convert *term* and return the clauses that assert it.

        Composite definitions are emitted permanently via ``emit_clause``;
        the returned list holds only the *root* clauses, so callers may
        guard them (push/pop emulation) without corrupting shared
        definitions.
        """
        # Assert conjunctions clause-by-clause for better propagation.
        if isinstance(term, And):
            roots: List[List[int]] = []
            for arg in term.args:
                roots.extend(self.assert_term(arg))
            return roots
        if isinstance(term, BoolConst):
            if term.value:
                return []
            return [[]]  # empty clause: unsatisfiable
        if isinstance(term, Or):
            lits = [self.convert(a) for a in term.args]
            return [lits]
        lit = self.convert(term)
        return [[lit]]

    # -- definitional encodings --------------------------------------------

    def _define_and(self, lits: Tuple[int, ...]) -> int:
        lits = tuple(sorted(set(lits)))
        if any(-l in lits for l in lits):
            return -self.true_literal()
        if len(lits) == 1:
            return lits[0]
        key = ("and", lits)
        cached = self._defs.get(key)
        if cached is not None:
            return cached
        d = self._new_var()
        self._defs[key] = d
        # d -> each lit
        for lit in lits:
            self._emit([-d, lit])
        # all lits -> d
        self._emit([d] + [-lit for lit in lits])
        return d

    def _define_at_most(self, lits: Tuple[int, ...], bound: int) -> int:
        """Definition variable for ``sum(lits) <= bound``.

        Uses a guarded sequential counter: with guard ``d`` true the
        constraint holds; with ``d`` false the constraint may be violated
        (we only need one-sided semantics for positive occurrences, but to
        remain sound under negation we add the reverse direction via an
        at-least counter on the complements).
        """
        key = ("atmost", lits, bound)
        cached = self._defs.get(key)
        if cached is not None:
            return cached
        d = self._new_var()
        self._defs[key] = d

        # Forward: d -> sum(lits) <= bound   (sequential counter)
        self._emit_counter_leq(lits, bound, guard=-d)
        # Backward: not d -> sum(lits) >= bound + 1, i.e.
        #           sum(not lits) <= n - bound - 1 under guard d.
        comp = tuple(-l for l in lits)
        self._emit_counter_leq(comp, len(lits) - bound - 1, guard=d)
        return d

    def _emit_counter_leq(self, lits: Tuple[int, ...], bound: int,
                          guard: int) -> None:
        """Clauses for ``guard \\/ (sum(lits) <= bound)`` (Sinz counter).

        ``guard`` is a literal added to every clause (pass 0 for none).
        """
        n = len(lits)
        extra = [guard] if guard else []
        if bound < 0:
            # No assignment can satisfy it: force guard.
            if guard:
                self._emit([guard])
            else:
                self._emit([])
            return
        if bound >= n:
            return
        if bound == 0:
            for lit in lits:
                self._emit(extra + [-lit])
            return
        # registers[i][j] == true iff at least j+1 of lits[0..i] are true.
        prev: List[int] = []
        for i, lit in enumerate(lits):
            width = min(i + 1, bound)
            regs = [self._new_var() for _ in range(width)]
            # lit -> regs[0]
            self._emit(extra + [-lit, regs[0]])
            if prev:
                for j in range(min(len(prev), width)):
                    # prev[j] -> regs[j]
                    self._emit(extra + [-prev[j], regs[j]])
                for j in range(1, width):
                    if j - 1 < len(prev):
                        # lit and prev[j-1] -> regs[j]
                        self._emit(extra + [-lit, -prev[j - 1], regs[j]])
            if i >= bound:
                # lit and prev[bound-1] -> contradiction
                self._emit(extra + [-lit, -prev[bound - 1]])
            prev = regs
