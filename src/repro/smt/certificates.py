"""Independent certificate checkers for certified solving.

This module audits answers produced by the DPLL(T) stack without sharing
any code with the search loops it checks:

``check_model``
    Evaluates every original (pre-CNF) assertion under a model with
    exact rational arithmetic, via :mod:`repro.smt.evaluator`.  A SAT
    answer is accepted only if every assertion evaluates to True.

``check_rup_proof``
    Replays the chronological proof log with its own unit-propagation
    loop (occurrence lists + an incrementally maintained root closure —
    deliberately *not* the solver's two-watched-literal engine).  Each
    learned clause must be derivable by Reverse Unit Propagation from
    the preceding steps; each theory lemma must carry a valid Farkas
    witness; finally the clause of negated assumption literals (the
    empty clause for plain UNSAT) must itself be RUP.

``check_farkas``
    Verifies a Farkas witness arithmetically: the nonnegative rational
    combination of the conflicting atoms' inequalities must cancel every
    real variable and leave a contradictory constant (``0 <= c`` with
    ``c < 0``, or ``0 < 0`` when a strict inequality participates with
    positive coefficient).

All failures raise :class:`~repro.exceptions.CertificateError`; a
certificate is never "partially" accepted.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import CertificateError
from repro.smt.evaluator import evaluate
from repro.smt.proof import INPUT, RUP, THEORY, ProofStep, UnsatCertificate
from repro.smt.solver import Model, SmtSolver
from repro.smt.terms import Atom, BoolTerm, RealVar


def self_check_default(flag: Optional[bool] = None) -> bool:
    """Resolve a tri-state self-check flag: an explicit True/False wins,
    None defers to the ``REPRO_SELF_CHECK`` environment variable."""
    if flag is not None:
        return bool(flag)
    value = os.environ.get("REPRO_SELF_CHECK", "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class CheckReport:
    """Summary of one successful certificate verification."""

    kind: str                 # "model" | "unsat"
    terms_checked: int = 0    # assertions evaluated (model checks)
    rup_steps: int = 0        # learned clauses verified (unsat checks)
    theory_lemmas: int = 0    # Farkas witnesses verified (unsat checks)
    seconds: float = 0.0


# ---------------------------------------------------------------------------
# Model checking
# ---------------------------------------------------------------------------

def check_model(terms: Sequence[BoolTerm], model: Model) -> int:
    """Require every term to evaluate to True under *model*.

    Returns the number of terms checked; raises
    :class:`CertificateError` naming the first violated assertion.
    """
    for index, term in enumerate(terms):
        if evaluate(term, model) is not True:
            raise CertificateError(
                f"model check failed: assertion {index} of {len(terms)} "
                f"evaluates to False ({term!r})")
    return len(terms)


# ---------------------------------------------------------------------------
# Farkas witness checking
# ---------------------------------------------------------------------------

def check_farkas(clause: Sequence[int],
                 witness: Optional[Sequence[Tuple[int, Fraction]]],
                 atoms: Mapping[int, Atom]) -> None:
    """Verify that *witness* refutes the conjunction refuted by *clause*.

    *clause* is a theory lemma ``Or(not l_1, ..., not l_k)``; the witness
    assigns a nonnegative rational coefficient to each explanation
    literal ``l_i``.  Validity requires the coefficient-weighted sum of
    the literals' inequalities to cancel every real variable and leave
    an unsatisfiable constant comparison.
    """
    if witness is None:
        raise CertificateError("theory lemma carries no Farkas witness")
    coeffs: Dict[int, Fraction] = {}
    for lit, coeff in witness:
        coeff = Fraction(coeff)
        if coeff < 0:
            raise CertificateError(
                f"Farkas coefficient for literal {lit} is negative")
        coeffs[lit] = coeffs.get(lit, Fraction(0)) + coeff
    if {-lit for lit in coeffs} != set(clause):
        raise CertificateError(
            "Farkas witness literals do not match the theory lemma")

    combination: Dict[RealVar, Fraction] = {}
    rhs = Fraction(0)
    strict = False
    for lit, coeff in coeffs.items():
        if coeff == 0:
            continue
        atom = atoms.get(abs(lit))
        if atom is None:
            raise CertificateError(
                f"witness literal {lit} does not name a theory atom")
        if atom.op not in (Atom.LE, Atom.LT):
            raise CertificateError(
                f"witness atom has non-inequality operator {atom.op!r}")
        # A true positive literal asserts expr OP bound; a true negative
        # literal asserts the negation, i.e. -expr (<|<=) -bound with
        # strictness flipped.
        sign = 1 if lit > 0 else -1
        if lit > 0:
            is_strict = atom.op == Atom.LT
        else:
            is_strict = atom.op == Atom.LE
        for var, c in atom.expr.coeffs.items():
            total = combination.get(var, Fraction(0)) + coeff * sign * c
            if total == 0:
                combination.pop(var, None)
            else:
                combination[var] = total
        rhs += coeff * sign * (atom.bound - atom.expr.const)
        strict = strict or is_strict
    if combination:
        raise CertificateError(
            "Farkas combination does not cancel all real variables")
    if not (rhs < 0 or (rhs == 0 and strict)):
        raise CertificateError(
            f"Farkas combination is not contradictory (0 "
            f"{'<' if strict else '<='} {rhs} is satisfiable)")


# ---------------------------------------------------------------------------
# RUP proof checking
# ---------------------------------------------------------------------------

class RupChecker:
    """Clause database with an independent unit-propagation engine.

    Maintains the closure of root-level units incrementally as clauses
    are added; :meth:`is_rup` then only propagates the candidate
    clause's negated literals on top of that closure.
    """

    def __init__(self) -> None:
        self._clauses: List[Tuple[int, ...]] = []
        self._occ: Dict[int, List[int]] = {}
        self._root: Dict[int, bool] = {}   # lit -> True (true at root)
        self.contradictory = False

    def _root_value(self, lit: int) -> Optional[bool]:
        if self._root.get(lit):
            return True
        if self._root.get(-lit):
            return False
        return None

    def add_clause(self, lits: Sequence[int]) -> None:
        if self.contradictory:
            return
        clause = tuple(lits)
        index = len(self._clauses)
        self._clauses.append(clause)
        for lit in clause:
            self._occ.setdefault(lit, []).append(index)
        status, unit = self._examine(clause, {})
        if status == "conflict":
            self.contradictory = True
        elif status == "unit":
            self._propagate_root(unit)

    def _examine(self, clause: Tuple[int, ...],
                 overlay: Dict[int, bool]):
        """Classify *clause* under root + overlay assignment."""
        unit = None
        for lit in clause:
            value = overlay.get(lit)
            if value is None and overlay.get(-lit):
                value = False
            if value is None:
                value = self._root_value(lit)
            if value is True:
                return "satisfied", None
            if value is None:
                if unit is None:
                    unit = lit
                elif unit != lit:
                    return "open", None
        if unit is None:
            return "conflict", None
        return "unit", unit

    def _propagate_root(self, lit: int) -> None:
        queue = [lit]
        while queue:
            lit = queue.pop()
            if self._root.get(lit):
                continue
            if self._root.get(-lit):
                self.contradictory = True
                return
            self._root[lit] = True
            for index in self._occ.get(-lit, ()):
                status, unit = self._examine(self._clauses[index], {})
                if status == "conflict":
                    self.contradictory = True
                    return
                if status == "unit":
                    queue.append(unit)

    def is_rup(self, lits: Sequence[int]) -> bool:
        """True iff asserting the negation of every literal and
        unit-propagating over the database yields a conflict."""
        if self.contradictory:
            return True
        overlay: Dict[int, bool] = {}
        queue: List[int] = []
        for lit in lits:
            negated = -lit
            value = self._root_value(negated)
            if value is None and overlay.get(-negated):
                value = False
            if value is False:
                return True    # some clause literal already true
            if value is None and not overlay.get(negated):
                overlay[negated] = True
                queue.append(negated)
        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            for index in self._occ.get(-lit, ()):
                status, unit = self._examine(self._clauses[index], overlay)
                if status == "conflict":
                    return True
                if status == "unit":
                    overlay[unit] = True
                    queue.append(unit)
        return False


def check_rup_proof(steps: Sequence[ProofStep],
                    atoms: Mapping[int, Atom],
                    assumption_lits: Sequence[int] = ()) -> Tuple[int, int]:
    """Verify a chronological proof and its final UNSAT claim.

    Returns ``(rup_steps, theory_lemmas)`` on success; raises
    :class:`CertificateError` on the first invalid step.  The final
    claim — the clause of negated assumption literals, or the empty
    clause when there are none — must be RUP over the full verified log.
    """
    checker = RupChecker()
    rup_steps = 0
    theory_lemmas = 0
    for position, step in enumerate(steps):
        if step.kind == INPUT:
            pass
        elif step.kind == RUP:
            if not checker.is_rup(step.lits):
                raise CertificateError(
                    f"proof step {position}: learned clause "
                    f"{list(step.lits)} is not RUP")
            rup_steps += 1
        elif step.kind == THEORY:
            check_farkas(step.lits, step.witness, atoms)
            theory_lemmas += 1
        else:
            raise CertificateError(
                f"proof step {position}: unknown kind {step.kind!r}")
        checker.add_clause(step.lits)
    final = [-lit for lit in assumption_lits]
    if not checker.is_rup(final):
        raise CertificateError(
            "the proof does not refute the asserted clauses"
            + (" under the given assumptions" if assumption_lits else ""))
    return rup_steps, theory_lemmas


# ---------------------------------------------------------------------------
# Solver-level entry points
# ---------------------------------------------------------------------------

def verify_sat(solver: SmtSolver, model: Optional[Model] = None,
               assumptions: Optional[Sequence[BoolTerm]] = None,
               extra_terms: Sequence[BoolTerm] = ()) -> CheckReport:
    """Check a SAT answer: the model must satisfy every active original
    assertion plus the assumptions the answer was produced under."""
    started = time.perf_counter()
    if not solver.certify:
        raise CertificateError(
            "cannot verify a SAT answer: solver is not in certify mode")
    if model is None:
        model = solver.model()
    if assumptions is None:
        assumptions = solver.last_assumptions
    terms = (solver.active_assertions() + list(assumptions)
             + list(extra_terms))
    checked = check_model(terms, model)
    return CheckReport("model", terms_checked=checked,
                       seconds=time.perf_counter() - started)


def verify_unsat(solver: SmtSolver,
                 certificate: Optional[UnsatCertificate] = None
                 ) -> CheckReport:
    """Check an UNSAT answer against its recorded proof."""
    started = time.perf_counter()
    if not solver.certify:
        raise CertificateError(
            "cannot verify an UNSAT answer: solver is not in certify mode")
    if certificate is None:
        certificate = solver.last_certificate
    if certificate is None:
        raise CertificateError("no UNSAT certificate was recorded")
    rup_steps, theory_lemmas = check_rup_proof(
        certificate.steps, solver.atom_of_var, certificate.assumption_lits)
    return CheckReport("unsat", rup_steps=rup_steps,
                       theory_lemmas=theory_lemmas,
                       seconds=time.perf_counter() - started)
