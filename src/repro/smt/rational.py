"""Exact arithmetic for the linear-real-arithmetic theory solver.

The general simplex algorithm of Dutertre and de Moura ("A Fast
Linear-Arithmetic Solver for DPLL(T)", CAV 2006) handles strict
inequalities by working in the ordered field Q[delta] of *delta-rationals*:
values of the form ``c + k * delta`` where ``delta`` is an infinitesimal
positive symbol.  A strict bound ``x < b`` becomes the non-strict bound
``x <= b - delta`` which the simplex machinery treats uniformly.

:class:`DeltaRational` implements that field with ``fractions.Fraction``
components.  Ordering is lexicographic on ``(c, k)`` which matches the
semantics of an infinitesimal ``delta``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

RationalLike = Union[int, Fraction, "DeltaRational"]


def to_fraction(value: Union[int, float, str, Fraction]) -> Fraction:
    """Convert *value* to an exact :class:`Fraction`.

    Floats are converted via ``Fraction(str(value))`` through their decimal
    repr so that e.g. ``0.1`` becomes ``1/10`` rather than the binary
    expansion ``3602879701896397/36028797018963968`` — case files carry
    decimal data and users expect decimal semantics.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"cannot represent {value!r} exactly")
        return Fraction(str(value))
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


class DeltaRational:
    """An element ``c + k*delta`` of the ordered field Q[delta].

    ``delta`` is a positive infinitesimal: smaller than every positive
    rational yet greater than zero.  Only linear combinations appear in the
    simplex algorithm, so multiplication is supported only by a plain
    rational scalar.
    """

    __slots__ = ("c", "k")

    def __init__(self, c: Union[int, float, str, Fraction] = 0,
                 k: Union[int, float, str, Fraction] = 0) -> None:
        self.c = to_fraction(c)
        self.k = to_fraction(k)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, value: RationalLike) -> "DeltaRational":
        """Coerce an int/Fraction/DeltaRational into a DeltaRational."""
        if isinstance(value, DeltaRational):
            return value
        return cls(value)

    @classmethod
    def strict_upper(cls, bound: Union[int, float, str, Fraction]) -> "DeltaRational":
        """The delta-rational expressing ``< bound`` as ``<= bound - delta``."""
        return cls(bound, -1)

    @classmethod
    def strict_lower(cls, bound: Union[int, float, str, Fraction]) -> "DeltaRational":
        """The delta-rational expressing ``> bound`` as ``>= bound + delta``."""
        return cls(bound, 1)

    # -- field operations ----------------------------------------------------

    def __add__(self, other: RationalLike) -> "DeltaRational":
        other = DeltaRational.of(other)
        return DeltaRational(self.c + other.c, self.k + other.k)

    __radd__ = __add__

    def __sub__(self, other: RationalLike) -> "DeltaRational":
        other = DeltaRational.of(other)
        return DeltaRational(self.c - other.c, self.k - other.k)

    def __rsub__(self, other: RationalLike) -> "DeltaRational":
        return DeltaRational.of(other) - self

    def __neg__(self) -> "DeltaRational":
        return DeltaRational(-self.c, -self.k)

    def __mul__(self, scalar: Union[int, Fraction]) -> "DeltaRational":
        if isinstance(scalar, DeltaRational):
            raise TypeError("delta-rationals form a Q-vector space; "
                            "multiply by a plain rational scalar only")
        scalar = to_fraction(scalar)
        return DeltaRational(self.c * scalar, self.k * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: Union[int, Fraction]) -> "DeltaRational":
        scalar = to_fraction(scalar)
        if scalar == 0:
            raise ZeroDivisionError("division of delta-rational by zero")
        return DeltaRational(self.c / scalar, self.k / scalar)

    # -- ordering ------------------------------------------------------------

    def _key(self) -> tuple:
        return (self.c, self.k)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = DeltaRational(other)
        if not isinstance(other, DeltaRational):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: RationalLike) -> bool:
        other = DeltaRational.of(other)
        return self._key() < other._key()

    def __le__(self, other: RationalLike) -> bool:
        other = DeltaRational.of(other)
        return self._key() <= other._key()

    def __gt__(self, other: RationalLike) -> bool:
        return DeltaRational.of(other) < self

    def __ge__(self, other: RationalLike) -> bool:
        return DeltaRational.of(other) <= self

    def __hash__(self) -> int:
        if self.k == 0:
            return hash(self.c)
        return hash(self._key())

    # -- conversion ----------------------------------------------------------

    def substitute(self, delta: Fraction) -> Fraction:
        """Evaluate at a concrete positive rational value of ``delta``."""
        return self.c + self.k * delta

    @property
    def is_rational(self) -> bool:
        return self.k == 0

    def __float__(self) -> float:
        # delta is infinitesimal; for display purposes it vanishes.
        return float(self.c)

    def __repr__(self) -> str:
        if self.k == 0:
            return f"DeltaRational({self.c})"
        sign = "+" if self.k > 0 else "-"
        return f"DeltaRational({self.c} {sign} {abs(self.k)}d)"


ZERO = DeltaRational(0)
ONE = DeltaRational(1)


def resolve_delta(values, lower_bounds, upper_bounds) -> Fraction:
    """Choose a concrete positive rational for ``delta``.

    Given variable assignments (delta-rationals) together with the lower and
    upper bounds they must respect, pick ``delta`` small enough that
    substituting it preserves every ordering relation.  For each pair
    ``a <= b`` of delta-rationals with ``a.c < b.c`` and ``a.k > b.k``, any
    ``delta < (b.c - a.c) / (a.k - b.k)`` works; we take half the minimum
    over all such pairs (and 1 when unconstrained).
    """
    limit = None

    def consider(lo: DeltaRational, hi: DeltaRational) -> None:
        nonlocal limit
        if lo.k > hi.k and lo.c < hi.c:
            candidate = (hi.c - lo.c) / (lo.k - hi.k)
            if limit is None or candidate < limit:
                limit = candidate

    pairs = []
    for i, value in enumerate(values):
        lo = lower_bounds[i]
        hi = upper_bounds[i]
        if lo is not None:
            pairs.append((lo, value))
        if hi is not None:
            pairs.append((value, hi))
    for lo, hi in pairs:
        consider(lo, hi)

    if limit is None:
        return Fraction(1)
    return limit / 2
