"""Proof-log data structures for certified solving.

The SAT core, when certificate generation is enabled, appends one
:class:`ProofStep` per clause it ever relies on, in chronological order:

``"input"``
    A clause given to :meth:`SatSolver.add_clause`, logged *before* the
    level-0 simplifications (tautology/satisfied/falsified-literal
    filtering).  Logging the unsimplified clause is sound because every
    simplification is justified by level-0 units that are themselves
    logged inputs.

``"rup"``
    A learned clause (first-UIP).  CDCL learned clauses are derivable by
    input resolution from the clauses present at learning time, which
    makes them checkable by Reverse Unit Propagation: assert the negation
    of every literal and unit-propagate over the preceding steps — a
    conflict must follow.

``"theory"``
    A theory lemma produced from a simplex conflict explanation.  Theory
    lemmas are *not* RUP-derivable (their validity lives in linear
    arithmetic), so each carries a Farkas witness: nonnegative rational
    coefficients over the conflicting atom literals whose combination is
    the contradiction ``0 <= c`` with ``c < 0`` (or ``0 < 0``).

The log is append-only and survives clause-database reductions — the
checker may use deleted learned clauses, which is sound because they were
themselves verified steps.  :class:`UnsatCertificate` snapshots the log
length at the moment an UNSAT answer is produced, so clauses asserted
later (e.g. blocking clauses from an enumerate-and-block loop) cannot
leak into the check of an earlier answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

INPUT = "input"
RUP = "rup"
THEORY = "theory"


@dataclass(frozen=True)
class ProofStep:
    """One clause in the chronological proof log."""

    kind: str                    # INPUT | RUP | THEORY
    lits: Tuple[int, ...]        # DIMACS-convention literals
    #: Farkas witness for THEORY steps: ``(literal, coefficient)`` pairs
    #: over the conflict explanation (the *negations* of ``lits``).
    #: ``None`` for INPUT/RUP steps, or when witness generation was
    #: impossible (the checker then rejects the step — never accepts).
    witness: Optional[Tuple[Tuple[int, Fraction], ...]] = None


@dataclass
class ProofLog:
    """Append-only chronological clause log (see module docstring)."""

    steps: List[ProofStep] = field(default_factory=list)

    def add_input(self, lits) -> None:
        self.steps.append(ProofStep(INPUT, tuple(lits)))

    def add_rup(self, lits) -> None:
        self.steps.append(ProofStep(RUP, tuple(lits)))

    def add_theory(self, lits, witness) -> None:
        self.steps.append(ProofStep(
            THEORY, tuple(lits),
            None if witness is None else tuple(witness)))

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class UnsatCertificate:
    """An UNSAT answer plus everything needed to check it independently.

    The answer claims: the input clauses up to step ``num_steps`` entail
    the falsity of the conjunction of ``assumption_lits`` (the empty
    conjunction — plain UNSAT — when no assumptions were used).  The
    checker in :mod:`repro.smt.certificates` verifies every step in
    order and finally derives the clause of negated assumptions by RUP.
    """

    proof: ProofLog
    num_steps: int
    assumption_lits: Tuple[int, ...] = ()

    @property
    def steps(self) -> List[ProofStep]:
        return self.proof.steps[:self.num_steps]
