"""Evaluate terms under a model — used for model validation and testing.

The DPLL(T) solver returns models as variable assignments; this module
closes the loop by evaluating arbitrary Boolean terms under such an
assignment, so callers (and the test suite) can verify that a model really
satisfies the asserted formulas.
"""

from __future__ import annotations

from repro.exceptions import SolverError
from repro.smt.solver import Model
from repro.smt.terms import (
    Atom,
    AtMost,
    And,
    BoolConst,
    BoolTerm,
    BoolVar,
    Not,
    Or,
)


def evaluate(term: BoolTerm, model: Model) -> bool:
    """Evaluate *term* to a Python bool under *model*."""
    if isinstance(term, BoolConst):
        return term.value
    if isinstance(term, BoolVar):
        return model.bool_value(term)
    if isinstance(term, Atom):
        value = model.eval_expr(term.expr)
        if term.op == Atom.LE:
            return value <= term.bound
        if term.op == Atom.LT:
            return value < term.bound
        return value == term.bound
    if isinstance(term, Not):
        return not evaluate(term.arg, model)
    if isinstance(term, And):
        return all(evaluate(arg, model) for arg in term.args)
    if isinstance(term, Or):
        return any(evaluate(arg, model) for arg in term.args)
    if isinstance(term, AtMost):
        count = sum(1 for arg in term.args if evaluate(arg, model))
        return count <= term.bound
    raise SolverError(f"cannot evaluate term of type {type(term).__name__}")
