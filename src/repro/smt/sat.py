"""CDCL SAT solver with a DPLL(T) theory hook.

A conventional conflict-driven clause-learning solver: two-watched-literal
propagation, first-UIP conflict analysis, VSIDS branching with phase saving,
Luby restarts, and assumption-based incremental solving (a la MiniSat).

Theory integration follows the lazy DPLL(T) recipe: the solver notifies an
attached :class:`TheoryListener` of every assignment/unassignment of a
*theory literal* (a SAT variable that stands for an arithmetic atom), asks
it to ``check`` at each decision point, and performs a ``final_check`` when
a full propositional model is found.  The theory reports conflicts as a set
of currently-true literals whose conjunction is theory-inconsistent; the
solver learns the corresponding clause and resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import SolverError
from repro.smt.budget import SolverBudget
from repro.smt.proof import ProofLog

UNASSIGNED = 0
TRUE = 1
FALSE = -1


class TheoryListener:
    """Interface the SAT solver uses to talk to a theory solver."""

    def is_theory_var(self, var: int) -> bool:
        return False

    def on_assign(self, lit: int) -> Optional[List[int]]:
        """Literal *lit* became true.  Return a conflict explanation
        (a list of currently-true literals that are jointly inconsistent)
        or None."""
        return None

    def on_unassign(self, lit: int) -> None:
        """Literal *lit* (previously asserted) was retracted."""

    def check(self) -> Optional[List[int]]:
        """Cheap consistency check at a decision point."""
        return None

    def final_check(self) -> Optional[List[int]]:
        """Complete consistency check on a full propositional model."""
        return None

    def take_conflict_witness(self):
        """Farkas witness for the most recent conflict explanation, as
        ``[(literal, coefficient), ...]`` pairs, or None when the theory
        does not generate certificates.  Consumed once per conflict."""
        return None


@dataclass
class SatStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    theory_conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    max_trail: int = 0


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool = False) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    while True:
        k = i.bit_length()
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1  # recurse on i - 2^(k-1) + 1


class SatSolver:
    """A CDCL solver over integer literals (DIMACS convention, var >= 1)."""

    def __init__(self, theory: Optional[TheoryListener] = None) -> None:
        self.theory = theory or TheoryListener()
        self.num_vars = 0
        self.values: List[int] = [UNASSIGNED]  # 1-indexed by variable
        self.levels: List[int] = [-1]
        self.reasons: List[Optional[_Clause]] = [None]
        self.saved_phase: List[int] = [FALSE]
        self.activity: List[float] = [0.0]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.theory_qhead = 0
        self.watches: Dict[int, List[_Clause]] = {}
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.max_learned = 4000
        self.unsat = False
        #: optional cooperative resource budget; raises
        #: :class:`~repro.exceptions.BudgetExhausted` out of :meth:`solve`
        #: (at event boundaries, so the solver state stays reusable).
        self.budget: Optional[SolverBudget] = None
        #: chronological clause log for certified solving; None (the
        #: default) disables all proof bookkeeping, keeping the hot paths
        #: allocation-free.
        self.proof: Optional[ProofLog] = None
        self.stats = SatStats()
        self._order_dirty: List[int] = []

    # ------------------------------------------------------------------
    # Variable / clause management
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        var = self.num_vars
        self.values.append(UNASSIGNED)
        self.levels.append(-1)
        self.reasons.append(None)
        self.saved_phase.append(FALSE)
        self.activity.append(0.0)
        self.watches[var] = []
        self.watches[-var] = []
        return var

    def value(self, lit: int) -> int:
        val = self.values[abs(lit)]
        return val if lit > 0 else -val

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause (backtracks to level 0 first, as MiniSat does)."""
        if self.decision_level != 0:
            self._backtrack_to(0)
        if self.unsat:
            return
        if self.proof is not None:
            # Log the clause as given: the level-0 simplifications below
            # are justified by unit inputs already in the log.
            self.proof.add_input(lits)
        seen = set()
        filtered: List[int] = []
        for lit in lits:
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            if self.value(lit) == TRUE:
                return  # already satisfied at level 0
            if self.value(lit) == FALSE:
                continue  # falsified at level 0: drop literal
            seen.add(lit)
            filtered.append(lit)
        if not filtered:
            self.unsat = True
            return
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self.unsat = True
            elif self._propagate() is not None:
                self.unsat = True
            return
        clause = _Clause(filtered)
        self.clauses.append(clause)
        self._attach(clause)

    def _attach(self, clause: _Clause) -> None:
        self.watches[-clause.lits[0]].append(clause)
        self.watches[-clause.lits[1]].append(clause)

    # ------------------------------------------------------------------
    # Trail operations
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self.value(lit)
        if val == TRUE:
            return True
        if val == FALSE:
            return False
        var = abs(lit)
        self.values[var] = TRUE if lit > 0 else FALSE
        self.levels[var] = self.decision_level
        self.reasons[var] = reason
        self.trail.append(lit)
        self.stats.max_trail = max(self.stats.max_trail, len(self.trail))
        return True

    def _new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def _backtrack_to(self, level: int) -> None:
        if self.decision_level <= level:
            return
        limit = self.trail_lim[level]
        for i in range(len(self.trail) - 1, limit - 1, -1):
            lit = self.trail[i]
            var = abs(lit)
            if i < self.theory_qhead and self.theory.is_theory_var(var):
                self.theory.on_unassign(lit)
            self.saved_phase[var] = self.values[var]
            self.values[var] = UNASSIGNED
            self.reasons[var] = None
            self.levels[var] = -1
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))
        self.theory_qhead = min(self.theory_qhead, len(self.trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation + theory assertion; returns a conflict clause."""
        while True:
            conflict = self._propagate_boolean()
            if conflict is not None:
                return conflict
            conflict = self._propagate_theory()
            if conflict is None:
                if self.qhead == len(self.trail):
                    return None
                continue
            return conflict

    def _propagate_boolean(self) -> Optional[_Clause]:
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            watch_list = self.watches[lit]
            i = 0
            j = 0
            end = len(watch_list)
            while i < end:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self.value(first) == TRUE:
                    watch_list[j] = clause
                    j += 1
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self.value(lits[k]) != FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[-lits[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                watch_list[j] = clause
                j += 1
                if self.value(first) == FALSE:
                    # Conflict: keep remaining watches, restore list.
                    while i < end:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self.qhead = len(self.trail)
                    return clause
                self._enqueue(first, clause)
            del watch_list[j:]
        return None

    def _propagate_theory(self) -> Optional[_Clause]:
        while self.theory_qhead < len(self.trail):
            lit = self.trail[self.theory_qhead]
            self.theory_qhead += 1
            if not self.theory.is_theory_var(abs(lit)):
                continue
            explanation = self.theory.on_assign(lit)
            if explanation is not None:
                return self._clause_from_explanation(explanation)
        return None

    def _clause_from_explanation(self, explanation: List[int]) -> _Clause:
        self.stats.theory_conflicts += 1
        lits = [-l for l in explanation]
        for l in explanation:
            if self.value(l) != TRUE:
                raise SolverError(
                    "theory explanation contains a non-true literal")
        if self.proof is not None:
            self.proof.add_theory(lits, self.theory.take_conflict_witness())
        return _Clause(lits, learned=True)

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        index = len(self.trail) - 1
        clause: Optional[_Clause] = conflict
        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 1 if lit != 0 else 0
            for q in clause.lits[start:]:
                var = abs(q)
                if seen[var] or self.levels[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self.levels[var] >= self.decision_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Select next literal to expand.
            while index >= 0 and not seen[abs(self.trail[index])]:
                index -= 1
            if index < 0:
                break
            lit = self.trail[index]
            var = abs(lit)
            seen[var] = False
            index -= 1
            counter -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            clause = self.reasons[var]
            if clause is None:
                raise SolverError("reached a decision before the first UIP")
            if lit != 0 and clause.lits[0] != lit:
                # Normalize so position 0 holds the implied literal.
                idx = clause.lits.index(lit)
                clause.lits[0], clause.lits[idx] = (clause.lits[idx],
                                                    clause.lits[0])
        # Compute backjump level.
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self.levels[abs(learnt[i])] > self.levels[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self.levels[abs(learnt[1])]
        return learnt, back_level

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self.cla_inc
        if clause.activity > 1e20:
            for c in self.learned:
                c.activity *= 1e-20
            self.cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self.var_inc /= self.var_decay
        self.cla_inc /= self.cla_decay

    def _reduce_learned(self) -> None:
        """Drop the least active half of the learned clauses."""
        self.learned.sort(key=lambda c: c.activity)
        keep_from = len(self.learned) // 2
        removed = []
        kept = []
        locked_reasons = {id(self.reasons[abs(l)]) for l in self.trail
                          if self.reasons[abs(l)] is not None}
        for i, clause in enumerate(self.learned):
            if i >= keep_from or len(clause.lits) <= 2 \
                    or id(clause) in locked_reasons:
                kept.append(clause)
            else:
                removed.append(clause)
        removed_ids = {id(c) for c in removed}
        if not removed_ids:
            return
        self.learned = kept
        for lit, watchers in self.watches.items():
            self.watches[lit] = [c for c in watchers
                                 if id(c) not in removed_ids]

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        best = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self.values[var] == UNASSIGNED and self.activity[var] > best_act:
                best = var
                best_act = self.activity[var]
        return best

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Search for a model; returns True (sat) or False (unsat)."""
        if self.unsat:
            return False
        self._backtrack_to(0)
        conflict = self._propagate()
        if conflict is not None:
            self.unsat = True
            return False

        assumptions = list(assumptions)
        budget = self.budget
        restart_count = 0
        conflicts_until_restart = 32 * luby(restart_count + 1)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is None and self.qhead == len(self.trail):
                # Theory check at the decision point.
                explanation = self.theory.check()
                if explanation is not None:
                    conflict = self._clause_from_explanation(explanation)

            if conflict is not None:
                self.stats.conflicts += 1
                if budget is not None:
                    budget.on_conflict()
                conflicts_since_restart += 1
                if self.decision_level == 0:
                    self.unsat = True
                    return False
                conflict = self._prepare_conflict(conflict)
                if self.unsat:
                    return False
                if conflict is None:
                    # Conflict resolved below the current level by
                    # backjumping; re-propagate.
                    continue
                if self.decision_level == 0:
                    self.unsat = True
                    return False
                learnt, back_level = self._analyze(conflict)
                # Backjumping below the assumption levels is fine: the
                # assumption-enqueueing branch below re-establishes them and
                # detects genuine assumption failure (value == FALSE).
                self._backtrack_to(back_level)
                self._learn(learnt)
                self._decay_activities()
                if len(self.learned) > self.max_learned:
                    self._reduce_learned()
                continue

            if conflicts_since_restart >= conflicts_until_restart \
                    and self.decision_level > len(assumptions):
                self.stats.restarts += 1
                restart_count += 1
                conflicts_until_restart = 32 * luby(restart_count + 1)
                conflicts_since_restart = 0
                self._backtrack_to(len(assumptions))
                continue

            # Assumption handling: enqueue pending assumptions as decisions.
            if self.decision_level < len(assumptions):
                assumed = assumptions[self.decision_level]
                val = self.value(assumed)
                if val == FALSE:
                    self._backtrack_to(0)
                    return False
                self._new_decision_level()
                if val == UNASSIGNED:
                    self._enqueue(assumed, None)
                continue

            var = self._pick_branch_var()
            if var == 0:
                explanation = self.theory.final_check()
                if explanation is None:
                    return True
                conflict = self._clause_from_explanation(explanation)
                conflict = self._prepare_conflict(conflict)
                if self.unsat:
                    return False
                if conflict is None:
                    continue
                if self.decision_level == 0:
                    self.unsat = True
                    return False
                self.stats.conflicts += 1
                if budget is not None:
                    budget.on_conflict()
                learnt, back_level = self._analyze(conflict)
                self._backtrack_to(back_level)
                self._learn(learnt)
                continue
            self.stats.decisions += 1
            if budget is not None:
                budget.on_decision()
            self._new_decision_level()
            phase = self.saved_phase[var]
            self._enqueue(var if phase == TRUE else -var, None)

    def _prepare_conflict(self, conflict: _Clause) -> Optional[_Clause]:
        """Ensure the conflict clause is falsified *at* the current level.

        Theory conflicts may involve only literals from earlier decision
        levels; in that case backjump to the deepest involved level first.
        Returns the (possibly same) conflict clause, or None when the
        backjump already resolved it (caller should re-propagate).
        """
        if not conflict.lits:
            self._backtrack_to(0)
            self.unsat = True
            return None
        max_level = max(self.levels[abs(l)] for l in conflict.lits)
        if max_level < self.decision_level:
            self._backtrack_to(max_level)
        # Count literals at the (new) current level; analysis needs >= 1.
        at_level = sum(1 for l in conflict.lits
                       if self.levels[abs(l)] == self.decision_level)
        if at_level == 0:
            # Everything at level 0: genuinely unsat.
            self.unsat = True
            return conflict
        return conflict

    def _learn(self, learnt: List[int]) -> None:
        self.stats.learned_clauses += 1
        self.stats.learned_literals += len(learnt)
        if self.proof is not None:
            self.proof.add_rup(learnt)
        if len(learnt) == 1:
            if not self._enqueue(learnt[0], None):
                self.unsat = True
            return
        clause = _Clause(list(learnt), learned=True)
        self.learned.append(clause)
        self._attach(clause)
        self._bump_clause(clause)
        self._enqueue(learnt[0], clause)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, var: int) -> bool:
        val = self.values[var]
        if val == UNASSIGNED:
            # Variables never touched by the search default to False.
            return False
        return val == TRUE
