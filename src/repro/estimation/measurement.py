"""Measurement model: the m = 2l + b potential measurements.

Numbering follows paper Section III-B exactly:

* measurement ``i``      (1 <= i <= l): forward power flow of line ``i``,
  physically taken at the line's *from* bus,
* measurement ``l + i``:  backward power flow of line ``i``, taken at the
  *to* bus,
* measurement ``2l + j``: power consumption at bus ``j``.

:class:`MeasurementPlan` carries the per-measurement flags from a case
definition (taken ``t_i``, secured ``s_i``, attacker-alterable ``r_i``) and
answers the locality queries the attack model needs (paper Eq. 21).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.grid.caseio import CaseDefinition, MeasurementSpec
from repro.grid.network import Grid


class MeasurementType(enum.Enum):
    FORWARD_FLOW = "forward-flow"
    BACKWARD_FLOW = "backward-flow"
    BUS_CONSUMPTION = "bus-consumption"


@dataclass(frozen=True)
class Measurement:
    """One potential measurement and where it physically resides."""

    index: int
    mtype: MeasurementType
    line_index: Optional[int]   # for flow measurements
    bus_index: Optional[int]    # for consumption measurements
    location_bus: int           # the substation hosting the meter


def measurement_catalog(grid: Grid) -> List[Measurement]:
    """All m = 2l + b potential measurements in paper order."""
    catalog: List[Measurement] = []
    l = grid.num_lines
    for line in grid.lines:
        catalog.append(Measurement(line.index, MeasurementType.FORWARD_FLOW,
                                   line.index, None, line.from_bus))
    for line in grid.lines:
        catalog.append(Measurement(l + line.index,
                                   MeasurementType.BACKWARD_FLOW,
                                   line.index, None, line.to_bus))
    for bus in grid.buses:
        catalog.append(Measurement(2 * l + bus.index,
                                   MeasurementType.BUS_CONSUMPTION,
                                   None, bus.index, bus.index))
    return catalog


class MeasurementPlan:
    """The deployed-meter configuration plus per-measurement security.

    Wraps the catalog with the ``t_i`` / ``s_i`` / ``r_i`` flags of the
    paper's attack attributes (Table I).
    """

    def __init__(self, grid: Grid,
                 specs: Sequence[MeasurementSpec]) -> None:
        self.grid = grid
        self.catalog = measurement_catalog(grid)
        if len(specs) != len(self.catalog):
            raise ModelError(
                f"expected {len(self.catalog)} measurement specs, "
                f"got {len(specs)}")
        self.specs = list(specs)

    @classmethod
    def from_case(cls, case: CaseDefinition,
                  grid: Optional[Grid] = None) -> "MeasurementPlan":
        return cls(grid or case.build_grid(), case.measurement_specs)

    @classmethod
    def full(cls, grid: Grid) -> "MeasurementPlan":
        """Every potential measurement taken, unsecured, alterable."""
        total = grid.num_potential_measurements
        specs = [MeasurementSpec(i, True, False, True)
                 for i in range(1, total + 1)]
        return cls(grid, specs)

    # -- queries -------------------------------------------------------------

    def measurement(self, index: int) -> Measurement:
        return self.catalog[index - 1]

    def spec(self, index: int) -> MeasurementSpec:
        return self.specs[index - 1]

    def is_taken(self, index: int) -> bool:
        return self.specs[index - 1].taken

    def is_secured(self, index: int) -> bool:
        return self.specs[index - 1].secured

    def is_alterable(self, index: int) -> bool:
        return self.specs[index - 1].alterable

    def taken_indices(self) -> List[int]:
        return [spec.index for spec in self.specs if spec.taken]

    def location_of(self, index: int) -> int:
        """The substation (bus) where measurement *index* resides."""
        return self.catalog[index - 1].location_bus

    def measurements_at(self, bus: int) -> List[int]:
        return [m.index for m in self.catalog if m.location_bus == bus]

    def flow_measurements_of_line(self, line_index: int) -> tuple:
        """(forward index, backward index) for a line."""
        return line_index, self.grid.num_lines + line_index

    def consumption_measurement_of_bus(self, bus: int) -> int:
        return 2 * self.grid.num_lines + bus

    def describe(self, index: int) -> str:
        m = self.catalog[index - 1]
        if m.mtype is MeasurementType.BUS_CONSUMPTION:
            return f"m{index}: consumption at bus {m.bus_index}"
        direction = "forward" if m.mtype is MeasurementType.FORWARD_FLOW \
            else "backward"
        return (f"m{index}: {direction} flow of line {m.line_index} "
                f"(at bus {m.location_bus})")


class TelemetrySimulator:
    """Generates noisy meter readings from a physical operating point.

    Used by the stealthiness validation path: simulate the SCADA readings
    the EMS would receive, optionally with an attack vector added, and run
    the estimator + bad-data detector on them.
    """

    def __init__(self, plan: MeasurementPlan, sigma: float = 0.005,
                 seed: int = 0) -> None:
        if sigma < 0:
            raise ModelError("noise sigma must be non-negative")
        self.plan = plan
        self.sigma = sigma
        self._rng = random.Random(seed)

    def true_values(self, flows: Dict[int, float],
                    consumption: Dict[int, float]) -> np.ndarray:
        """Noise-free values of every potential measurement."""
        grid = self.plan.grid
        l = grid.num_lines
        values = np.zeros(grid.num_potential_measurements)
        for line in grid.lines:
            flow = flows.get(line.index, 0.0)
            values[line.index - 1] = flow
            values[l + line.index - 1] = -flow
        for bus in grid.buses:
            values[2 * l + bus.index - 1] = consumption.get(bus.index, 0.0)
        return values

    def readings(self, flows: Dict[int, float],
                 consumption: Dict[int, float]) -> np.ndarray:
        """Noisy readings for the *taken* measurements (in taken order)."""
        values = self.true_values(flows, consumption)
        taken = self.plan.taken_indices()
        return np.array([
            values[i - 1] + self._rng.gauss(0.0, self.sigma)
            for i in taken
        ])
