"""Weighted least squares state estimation (paper Eq. 1).

Estimates the non-reference bus angles from the taken measurements:

    x_hat = (H^T W H)^{-1} H^T W z

where ``H`` is the taken-rows slice of the full measurement matrix for the
topology the EMS currently believes (supplied by the topology processor),
and ``W`` is the diagonal inverse-variance weighting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import ModelError, NotObservableError
from repro.estimation.measurement import MeasurementPlan
from repro.grid.matrices import measurement_matrix, state_order
from repro.grid.network import Grid
from repro.numerics import (
    GuardedFactorization,
    guarded_rank,
    resolve_backend,
)


@dataclass
class StateEstimate:
    """Result of a WLS estimation run.

    ``angles`` includes the reference bus (fixed at zero).  ``flows`` and
    ``loads`` are the quantities the EMS derives from the estimate and
    feeds into OPF: line flows of the believed topology and per-bus
    consumptions (paper: "summing up the net power flows incident on a bus
    yields the estimated power (or load) at that bus").
    """

    angles: Dict[int, float]
    flows: Dict[int, float]
    consumption: Dict[int, float]
    residual_norm: float
    estimated_measurements: np.ndarray
    taken_indices: List[int]

    def estimated_loads(self, grid: Grid,
                        dispatch: Dict[int, float]) -> Dict[int, float]:
        """Loads implied by the estimate given known generator outputs.

        Paper Eq. 9: P_j^B = P_j^D - P_j^G, so P_j^D = P_j^B + P_j^G.
        Generation measurements are assumed secure (paper Section II-F).
        """
        loads = {}
        for bus, consumption in self.consumption.items():
            loads[bus] = consumption + dispatch.get(bus, 0.0)
        return loads


class WlsEstimator:
    """WLS estimator bound to a measurement plan and a believed topology."""

    def __init__(self, plan: MeasurementPlan,
                 topology: Optional[Iterable[int]] = None,
                 weights: Optional[np.ndarray] = None,
                 backend: Optional[str] = None) -> None:
        self.plan = plan
        self.grid = plan.grid
        self.topology = sorted(topology) if topology is not None else [
            line.index for line in self.grid.lines if line.in_service]
        self.taken = plan.taken_indices()
        if not self.taken:
            raise ModelError("no measurements taken")
        self.backend = resolve_backend(backend, self.grid.num_buses)
        if weights is None:
            weights = np.ones(len(self.taken))
        if len(weights) != len(self.taken):
            raise ModelError("one weight per taken measurement required")
        self._weights = np.asarray(weights, dtype=float)
        rows = [i - 1 for i in self.taken]
        if self.backend == "sparse":
            H_full = measurement_matrix(self.grid, self.topology,
                                        backend="sparse")
            self.H = H_full.select_rows(rows)
            self.W = None          # the diagonal stays a vector at scale
            # Gain = H^T diag(w) H without any dense intermediate.
            gain = self.H.gram(self._weights)
        else:
            H_full = measurement_matrix(self.grid, self.topology)
            self.H = H_full[rows, :]
            self.W = np.diag(self._weights)
            gain = self.H.T @ self.W @ self.H
        # Matrix-scaled rank tolerance: numpy's machine-epsilon default
        # lets near-rank-deficient plans pass observability and then
        # estimate garbage through a raw inverse of the near-singular
        # gain matrix.  (On the sparse backend the rank comes from LU
        # pivot magnitudes of the gain — same cutoff scaling.)
        rank = guarded_rank(gain, context="WLS gain matrix")
        if rank < self.grid.num_buses - 1:
            raise NotObservableError(
                f"measurement set leaves the system unobservable "
                f"(gain rank {rank} < {self.grid.num_buses - 1})")
        self._gain = GuardedFactorization(gain,
                                          context="WLS gain matrix")
        self._hat: Optional[np.ndarray] = None
        self._residual_sensitivity: Optional[np.ndarray] = None

    def estimate(self, z: np.ndarray) -> StateEstimate:
        """Run WLS on readings *z* (taken-measurement order)."""
        if len(z) != len(self.taken):
            raise ModelError(
                f"expected {len(self.taken)} readings, got {len(z)}")
        z = np.asarray(z, dtype=float)
        if self.backend == "sparse":
            x_hat = self._gain.solve(self.H.rmatvec(self._weights * z))
            estimated = self.H.matvec(x_hat)
        else:
            x_hat = self._gain.solve(self.H.T @ self.W @ z)
            estimated = self.H @ x_hat
        residual = float(np.linalg.norm(z - estimated))

        order = state_order(self.grid)
        angles = {self.grid.reference_bus: 0.0}
        for position, bus in enumerate(order):
            angles[bus] = float(x_hat[position])

        flows: Dict[int, float] = {}
        for line_index in self.topology:
            line = self.grid.line(line_index)
            flows[line_index] = float(line.admittance) * (
                angles[line.from_bus] - angles[line.to_bus])
        consumption: Dict[int, float] = {}
        for bus in self.grid.buses:
            total = 0.0
            for line in self.grid.lines_in(bus.index):
                total += flows.get(line.index, 0.0)
            for line in self.grid.lines_out(bus.index):
                total -= flows.get(line.index, 0.0)
            consumption[bus.index] = total

        return StateEstimate(angles, flows, consumption, residual,
                             estimated, list(self.taken))

    @property
    def hat_matrix(self) -> np.ndarray:
        """K = H (H^T W H)^{-1} H^T W — maps readings to fitted values.

        Computed once through the verified gain factorization (a solve,
        not the explicit inverse) and cached.  The hat matrix is dense
        m x m by definition; on the sparse backend it is materialized
        only when this property is read (bad-data detection runs on the
        small cases, not the 10k-bus sweeps).
        """
        if self._hat is None:
            if self.backend == "sparse":
                weighted_ht = self.H.scale_rows(
                    self._weights).transpose().to_dense()
                self._hat = self.H.matvec(self._gain.solve(weighted_ht))
            else:
                self._hat = self.H @ self._gain.solve(self.H.T @ self.W)
        return self._hat

    @property
    def residual_sensitivity(self) -> np.ndarray:
        """S = I - K — maps readings to residuals (cached)."""
        if self._residual_sensitivity is None:
            self._residual_sensitivity = \
                np.eye(len(self.taken)) - self.hat_matrix
        return self._residual_sensitivity
