"""Bad data detection: the residual test the attacks must evade.

Standard chi-square testing on the weighted residual sum of squares (Abur &
Exposito ch. 5), plus largest-normalized-residual identification.  The
stealthiness property of paper Section II-B — an attack vector ``a = Hc``
leaves the residual unchanged — is what :class:`BadDataDetector` verifies
empirically in the tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import stats

from repro.exceptions import ModelError
from repro.estimation.wls import StateEstimate, WlsEstimator


@dataclass
class BadDataReport:
    """Outcome of a bad-data test."""

    detected: bool
    objective: float          # J(x) = weighted residual sum of squares
    threshold: float
    degrees_of_freedom: int
    suspect_index: Optional[int] = None  # taken-measurement index (1-based
    #                                      in the plan's numbering)
    normalized_residuals: Optional[np.ndarray] = None


class BadDataDetector:
    """Chi-square bad data detector bound to a WLS estimator."""

    def __init__(self, estimator: WlsEstimator,
                 significance: float = 0.01,
                 sigma: float = 0.005) -> None:
        if not 0 < significance < 1:
            raise ModelError("significance must be in (0, 1)")
        if sigma <= 0:
            raise ModelError("sigma must be positive")
        self.estimator = estimator
        self.significance = significance
        self.sigma = sigma
        m = len(estimator.taken)
        n = estimator.grid.num_buses - 1
        self.degrees_of_freedom = max(m - n, 1)
        self.threshold = float(stats.chi2.ppf(1 - significance,
                                              self.degrees_of_freedom))

    def objective(self, z: np.ndarray, estimate: StateEstimate) -> float:
        """J(x) = sum((z - H x_hat)^2 / sigma^2)."""
        residuals = z - estimate.estimated_measurements
        return float(np.sum((residuals / self.sigma) ** 2))

    def test(self, z: np.ndarray) -> BadDataReport:
        """Estimate, then chi-square test; identifies the worst residual."""
        estimate = self.estimator.estimate(z)
        objective = self.objective(z, estimate)
        detected = objective > self.threshold

        suspect = None
        normalized = None
        if detected:
            S = self.estimator.residual_sensitivity
            residuals = z - estimate.estimated_measurements
            diag = np.clip(np.diag(S), 1e-12, None)
            normalized = np.abs(residuals) / (self.sigma * np.sqrt(diag))
            worst = int(np.argmax(normalized))
            suspect = self.estimator.taken[worst]
        return BadDataReport(detected, objective, self.threshold,
                             self.degrees_of_freedom, suspect, normalized)

    def residual_unchanged_by(self, z: np.ndarray,
                              attack: np.ndarray,
                              tolerance: float = 1e-8) -> bool:
        """Does adding *attack* to the readings leave the residual intact?

        True for any attack in the column space of H (paper Section II-B).
        """
        base = self.estimator.estimate(z).residual_norm
        attacked = self.estimator.estimate(z + attack).residual_norm
        return abs(base - attacked) <= tolerance
