"""State estimation substrate: measurement model, WLS estimator,
bad-data detection and observability analysis."""

from repro.estimation.bdd import BadDataDetector, BadDataReport
from repro.estimation.measurement import (
    Measurement,
    MeasurementPlan,
    MeasurementType,
    TelemetrySimulator,
    measurement_catalog,
)
from repro.estimation.observability import (
    is_numerically_observable,
    is_topologically_observable,
    observable_islands,
    redundancy_level,
)
from repro.estimation.wls import StateEstimate, WlsEstimator

__all__ = [
    "BadDataDetector",
    "BadDataReport",
    "Measurement",
    "MeasurementPlan",
    "MeasurementType",
    "StateEstimate",
    "TelemetrySimulator",
    "WlsEstimator",
    "is_numerically_observable",
    "is_topologically_observable",
    "measurement_catalog",
    "observable_islands",
    "redundancy_level",
]
