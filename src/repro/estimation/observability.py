"""Observability analysis of a measurement configuration.

Two standard methods:

* **numerical** — rank of the gain matrix H^T H over the taken
  measurements (exact criterion for DC estimation),
* **topological** — flow-measured lines merge buses into islands and bus
  injection measurements stitch islands together (Krumpholz-style
  analysis, conservative but fast and explainable).

The paper assumes observable configurations; these checks are how a user
validates a measurement plan before running the attack analysis, and they
also feed the measurement-protection example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.estimation.measurement import MeasurementPlan, MeasurementType
from repro.grid.matrices import measurement_matrix
from repro.grid.network import Grid
from repro.numerics import guarded_rank, resolve_backend


def is_numerically_observable(plan: MeasurementPlan,
                              topology: Optional[Iterable[int]] = None,
                              taken: Optional[Iterable[int]] = None,
                              backend: Optional[str] = None) -> bool:
    """Rank test: do the taken measurements determine all states?

    Uses the guarded, matrix-scaled rank so a *near*-rank-deficient
    configuration (which would estimate garbage) reads as unobservable
    instead of slipping past numpy's machine-epsilon tolerance.  On the
    sparse backend the rank is taken on the gain matrix H^T H (same
    rank as H for real entries), which keeps the test sparse end to end.
    """
    grid = plan.grid
    taken_list = sorted(taken) if taken is not None else plan.taken_indices()
    if not taken_list:
        return grid.num_buses <= 1
    rows = [i - 1 for i in taken_list]
    if resolve_backend(backend, grid.num_buses) == "sparse":
        H = measurement_matrix(grid, topology,
                               backend="sparse").select_rows(rows)
        rank = guarded_rank(H.gram(), context="measurement matrix")
    else:
        H = measurement_matrix(grid, topology)[rows, :]
        rank = guarded_rank(H, context="measurement matrix")
    return rank == grid.num_buses - 1


def observable_islands(plan: MeasurementPlan,
                       topology: Optional[Iterable[int]] = None
                       ) -> List[Set[int]]:
    """Bus islands made observable by flow measurements alone."""
    grid = plan.grid
    active = set(topology) if topology is not None else {
        line.index for line in grid.lines if line.in_service}
    parent: Dict[int, int] = {b.index: b.index for b in grid.buses}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for index in plan.taken_indices():
        measurement = plan.measurement(index)
        if measurement.mtype is MeasurementType.BUS_CONSUMPTION:
            continue
        line = grid.line(measurement.line_index)
        if line.index in active:
            union(line.from_bus, line.to_bus)

    islands: Dict[int, Set[int]] = {}
    for bus in grid.buses:
        islands.setdefault(find(bus.index), set()).add(bus.index)
    return sorted(islands.values(), key=lambda s: min(s))


def is_topologically_observable(plan: MeasurementPlan,
                                topology: Optional[Iterable[int]] = None
                                ) -> bool:
    """Conservative check: islands + boundary injections cover the grid.

    Flow measurements merge endpoints; then a taken consumption
    measurement at a bus with exactly one active line crossing island
    boundaries can merge those islands.  Iterate to a fixed point.
    """
    grid = plan.grid
    active = set(topology) if topology is not None else {
        line.index for line in grid.lines if line.in_service}
    islands = observable_islands(plan, topology)
    island_of: Dict[int, int] = {}
    for i, island in enumerate(islands):
        for bus in island:
            island_of[bus] = i
    groups: List[Set[int]] = [set(s) for s in islands]

    injections = [
        plan.measurement(i).bus_index
        for i in plan.taken_indices()
        if plan.measurement(i).mtype is MeasurementType.BUS_CONSUMPTION
    ]

    merged = True
    while merged and len({island_of[b.index] for b in grid.buses}) > 1:
        merged = False
        for bus in injections:
            # Boundary lines: active lines at `bus` crossing islands.
            crossing = [
                line for line in grid.lines_at(bus)
                if line.index in active
                and island_of[line.from_bus] != island_of[line.to_bus]
            ]
            if len(crossing) == 1:
                line = crossing[0]
                a = island_of[line.from_bus]
                b = island_of[line.to_bus]
                keep, drop = min(a, b), max(a, b)
                for member in groups[drop]:
                    island_of[member] = keep
                groups[keep] |= groups[drop]
                groups[drop] = set()
                merged = True
    return len({island_of[b.index] for b in grid.buses}) == 1


def redundancy_level(plan: MeasurementPlan) -> float:
    """Taken measurements per state — the redundancy that powers BDD."""
    states = plan.grid.num_buses - 1
    if states == 0:
        return float("inf")
    return len(plan.taken_indices()) / states
