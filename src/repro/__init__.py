"""repro — reproduction of "Impact Analysis of Topology Poisoning Attacks
on Economic Operation of the Smart Power Grid" (Rahman, Al-Shaer,
Kavasseri; IEEE ICDCS 2014).

Public entry points:

* :func:`repro.grid.cases.get_case` — load a test system,
* :class:`repro.core.ImpactAnalyzer` — the paper's verification framework,
* :class:`repro.core.FastImpactAnalyzer` — the LODF/LCDF fast analyzer,
* :mod:`repro.smt` — the standalone SMT solver the framework runs on.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
