"""Fig. 5(c): execution time of both *individual* models in
unsatisfiable cases.

Workloads: the OPF model with a threshold strictly below the optimum
(no dispatch can satisfy it) and the attack model with the attacker
stripped of resources (no stealthy attack exists).  Expected shape
(paper): unsat runs cost more than the corresponding sat runs.
"""

from fractions import Fraction

import pytest

from benchmarks._helpers import scenario_case
from repro.benchlib import format_table, measured
from repro.core.encoding import AttackEncodingConfig, AttackModelEncoding
from repro.grid.caseio import CaseDefinition
from repro.grid.cases import get_case
from repro.opf import solve_dc_opf

SIZES = {"5bus-study2": 5, "ieee14": 14}


def _starved(case: CaseDefinition) -> CaseDefinition:
    return CaseDefinition(
        case.name + "-starved", case.line_specs, case.measurement_specs,
        case.bus_types, case.generators, case.loads,
        1, 1, case.base_cost, case.min_increase_percent)


@pytest.mark.paper("Fig. 5(c)")
@pytest.mark.parametrize("name", list(SIZES))
def test_fig5c_unsat_individual_models(benchmark, name):
    from repro.core.encoding import OpfModelEncoding
    buses = SIZES[name]
    case = get_case(name)
    grid = case.build_grid()
    loads = {b: l.existing for b, l in grid.loads.items()}
    topology = [l.index for l in grid.lines if l.in_service]
    optimum = solve_dc_opf(grid, method="highs").require_feasible().cost
    results = {}

    def run_all():
        results.clear()

        def opf_unsat():
            encoding = OpfModelEncoding(grid, topology, loads)
            return encoding.check(optimum * Fraction(99, 100))
        sat, elapsed = measured(opf_unsat)
        assert not sat
        results["OPF model (unsat)"] = elapsed

        def opf_sat():
            encoding = OpfModelEncoding(grid, topology, loads)
            return encoding.check(optimum * Fraction(3, 2))
        sat, elapsed = measured(opf_sat)
        assert sat
        results["OPF model (sat)"] = elapsed

        def attack_unsat():
            # A starved attacker (1 measurement / 1 bus) that must alter
            # something: a nonzero-flow single-line attack needs at least
            # the line's two flow measurements, so this is unsat.
            encoding = AttackModelEncoding(
                _starved(case), AttackEncodingConfig(
                    require_believed_feasibility=False,
                    require_measurement_alteration=True))
            return encoding.solve()
        solution, elapsed = measured(attack_unsat)
        assert solution is None
        results["attack model (unsat)"] = elapsed

        def attack_sat():
            encoding = AttackModelEncoding(case, AttackEncodingConfig(
                require_believed_feasibility=False))
            return encoding.solve()
        solution, elapsed = measured(attack_sat)
        results["attack model (sat)"] = elapsed
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        f"Fig. 5(c) — individual models, {name} ({buses} buses)",
        ("model / verdict", "time (s)"),
        [(k, f"{v:.4f}") for k, v in results.items()]))
