"""Common machinery for the evaluation benchmarks.

The paper evaluates on 5/14/30/57/118-bus systems.  Our from-scratch SMT
solver is pure Python, so the *combined* model is benchmarked with the
same hybrid the paper itself adopts for large systems (Section IV-A): the
full SMT framework up to 14 buses and the LODF/LCDF fast analyzer above.
Set ``REPRO_BENCH_SCALE=paper`` to push the SMT models further up the
sweep (slow).
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Dict, List

from repro.benchlib import combined_spec, randomize_attacker, scenario_seeds
from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case
from repro.runner import SweepConfig, SweepEngine, SweepTrace

#: case name -> bus count, in the paper's sweep order.
SWEEP: Dict[str, int] = {
    "5bus-study2": 5,
    "ieee14": 14,
    "ieee30": 30,
    "ieee57": 57,
    "ieee118": 118,
}

#: sizes analyzed with the full SMT framework (the rest use the fast
#: LODF/LCDF analyzer, as the paper does for its larger systems).
SMT_SIZES = {"5bus-study2": 5}
if os.environ.get("REPRO_BENCH_SCALE") == "paper":
    SMT_SIZES["ieee14"] = 14

SCENARIOS: List[int] = scenario_seeds(3)


def scenario_case(name: str, seed: int):
    return randomize_attacker(get_case(name), seed)


def combined_analysis(name: str, seed: int, with_state: bool,
                      percent: Fraction):
    """One combined-model run (Fig. 4 workload) at the right fidelity."""
    case = scenario_case(name, seed)
    if name in SMT_SIZES:
        analyzer = ImpactAnalyzer(case)
        return analyzer.analyze(ImpactQuery(
            target_increase_percent=percent,
            with_state_infection=with_state,
            max_candidates=20))
    analyzer = FastImpactAnalyzer(case)
    return analyzer.analyze(FastQuery(
        target_increase_percent=percent,
        with_state_infection=with_state,
        state_samples=8, seed=seed))


#: sweep-engine configuration for the benchmarks.  Workers default to 1
#: (serial, so pytest-benchmark wall timings stay comparable run to run);
#: caching is opt-in via REPRO_BENCH_CACHE so reruns can short-circuit.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE")


def combined_specs(name: str, with_state: bool, percent: Fraction):
    """The engine specs for one Fig.-4 problem size (all scenarios)."""
    analyzer = "smt" if name in SMT_SIZES else "fast"
    return [combined_spec(name, seed, with_state, percent,
                          analyzer=analyzer)
            for seed in SCENARIOS]


def run_sweep(specs) -> SweepTrace:
    """One benchmark sweep on the engine (see BENCH_* knobs above)."""
    engine = SweepEngine(SweepConfig(
        workers=BENCH_WORKERS,
        cache_dir=BENCH_CACHE_DIR,
        use_cache=BENCH_CACHE_DIR is not None))
    return engine.run(specs)
