"""Ablation: what the DPLL(T) solver spends its effort on.

Not a paper figure — supporting data for DESIGN.md's solver-substitution
note: solver statistics (decisions, conflicts, theory conflicts, simplex
pivots) across the two case-study models, showing the workload mix the
Z3 replacement faces.
"""

import pytest

from repro.benchlib import format_table
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case


@pytest.mark.paper("solver statistics (supporting)")
def test_solver_statistics(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, with_state in (("5bus-study1", False),
                                 ("5bus-study2", True)):
            analyzer = ImpactAnalyzer(get_case(name))
            from repro.core.encoding import (AttackEncodingConfig,
                                             AttackModelEncoding)
            encoding = AttackModelEncoding(
                analyzer.case,
                AttackEncodingConfig(include_state_infection=with_state))
            encoding.solve()
            stats = encoding.solver.stats
            rows.append((name,
                         stats.sat_vars, stats.clauses,
                         stats.theory_atoms, stats.decisions,
                         stats.conflicts, stats.theory_conflicts,
                         stats.simplex_pivots))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        "DPLL(T) workload on the case-study attack models",
        ("case", "sat vars", "clauses", "atoms", "decisions",
         "conflicts", "T-conflicts", "pivots"), rows))
    for row in rows:
        assert row[4] > 0  # the solver actually searched
