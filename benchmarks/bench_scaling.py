"""Scaling curves for the sparse linear-algebra core (300 → 10000 buses).

Each (case, backend) combination runs the full analysis pipeline —
matrix encode, PTDF/LODF sensitivities, WLS estimation, and a warm
shift-factor OPF sweep — in its *own subprocess* so that

* peak RSS is a per-combination measurement, not polluted by earlier
  combinations in the same process, and
* the dense backend can be given a hard wall-clock budget
  (``DENSE_BUDGET_SECONDS``) and recorded as DNF when it blows it,
  without hanging the benchmark.

Each stage runs twice: an *untraced* pass for the reported seconds and
a tracemalloc pass for the allocation high-water mark.  The passes are
separate because tracemalloc hooks every allocation, which penalizes
the pure-numpy sparse kernels (many small arrays in Python loops)
roughly 10x while leaving dense BLAS calls almost untouched — timing
under tracing would invert the comparison the gate is about.

Gates (the ISSUE's acceptance criteria):

* sparse beats dense wherever dense completes, from 300 buses up
  (a dense DNF counts as beaten);
* synth2869 sparse completes inside the budget that dense cannot;
* Sherman–Morrison rank-1 outage updates are measurably faster than
  refactorizing from scratch.

Results are written to ``BENCH_scaling.json`` at the repository root.
Run a single combination by hand with::

    PYTHONPATH=src python -m benchmarks.bench_scaling synth1354 sparse
"""

import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall-clock budget for a dense pipeline run.  Documented in CI and in
#: README ("Scaling the grid axis"): the sparse backend must finish the
#: synth2869 pipeline inside this budget; dense must not.
DENSE_BUDGET_SECONDS = 60
#: Safety timeout for sparse children (they should finish far sooner).
SPARSE_TIMEOUT_SECONDS = 600

#: (case, dense_attempted).  Dense at 10000 buses is skipped outright:
#: the O(b^3) factorizations and the O(m^2) explicit weight matrix are
#: beyond any budget worth burning CI time on.
COMBOS = (
    ("synth300", True),
    ("synth1354", True),
    ("synth2869", True),
    ("synth10000", False),
)

LODF_SAMPLES = 12
ROW_SAMPLES = 4
SWEEP_CHANGES = 6
RANK1_SAMPLES = 8


# -- child: one (case, backend) pipeline --------------------------------

def _non_bridge_sample(grid, lines, count, seed):
    """Deterministic sample of outage-safe (non-bridge) lines."""
    rng = random.Random(seed)
    shuffled = list(lines)
    rng.shuffle(shuffled)
    picked = []
    for line in shuffled:
        if grid.is_connected([l for l in lines if l != line]):
            picked.append(line)
            if len(picked) == count:
                break
    return picked


def run_pipeline(case_name, backend):
    """Run the four-stage pipeline; returns a JSON-ready dict."""
    from repro.benchlib import profile_resources, measured
    from repro.estimation.measurement import MeasurementPlan
    from repro.estimation.wls import WlsEstimator
    from repro.grid.cases import get_case
    from repro.grid.matrices import (
        flow_matrix,
        measurement_matrix,
        susceptance_matrix,
    )
    from repro.grid.sensitivities import compute_ptdf, lodf_column
    from repro.opf.shift_factor import ShiftFactorOpf, TopologyChange

    grid = get_case(case_name).build_grid()
    all_lines = [line.index for line in grid.lines]
    stages = {}

    def record(name, fn):
        result, seconds = measured(fn)        # untraced timing pass
        _, prof = profile_resources(fn)       # traced memory pass
        stages[name] = {
            "seconds": round(seconds, 4),
            "peak_alloc_mb": round(prof.peak_alloc_mb, 2),
            "peak_rss_mb": round(prof.peak_rss_mb, 2),
        }
        return result

    def encode():
        susceptance_matrix(grid, reduced=True, backend=backend)
        flow_matrix(grid, backend=backend)
        measurement_matrix(grid, backend=backend)

    record("encode", encode)

    outages = _non_bridge_sample(grid, all_lines, LODF_SAMPLES, seed=7)

    def ptdf_lodf():
        factors = compute_ptdf(grid, backend=backend)
        factors.columns(sorted(grid.generators))
        for line in outages:
            lodf_column(factors, line)
        for line in outages[:ROW_SAMPLES]:
            factors.row(line)
        return factors

    factors = record("ptdf_lodf", ptdf_lodf)

    def wls():
        plan = MeasurementPlan.full(grid)
        m = len(plan.taken_indices())
        estimator = WlsEstimator(plan, weights=np.ones(m),
                                 backend=backend)
        rng = np.random.default_rng(3)
        x_true = rng.normal(size=grid.num_buses - 1)
        z = (estimator.H.matvec(x_true) if backend == "sparse"
             else estimator.H @ x_true)
        estimator.estimate(z)

    record("wls", wls)

    def warm_sweep():
        opf = ShiftFactorOpf(grid, backend=backend)
        opf.solve()
        for line in outages[:SWEEP_CHANGES]:
            opf.solve(change=TopologyChange("exclude", line))

    record("warm_sweep", warm_sweep)

    result = {
        "case": case_name,
        "backend": backend,
        "status": "ok",
        "total_seconds": round(
            sum(s["seconds"] for s in stages.values()), 4),
        "stages": stages,
    }

    if backend == "sparse":
        # Rank-1 Sherman-Morrison outage solve vs refactorize-and-solve.
        rng = np.random.default_rng(11)
        rhs = rng.normal(size=grid.num_buses - 1)
        rank1_lines = outages[:RANK1_SAMPLES]
        _, update_s = measured(lambda: [
            factors.outage_update(line).solve(rhs)
            for line in rank1_lines])
        _, refact_s = measured(lambda: [
            compute_ptdf(grid, [l for l in all_lines if l != line],
                         backend="sparse").factorization.solve(rhs)
            for line in rank1_lines])
        result["rank1"] = {
            "outages": len(rank1_lines),
            "update_seconds": round(update_s, 4),
            "refactorize_seconds": round(refact_s, 4),
            "speedup": round(refact_s / update_s, 2)
            if update_s > 0 else float("inf"),
        }
    return result


# -- parent: orchestrate subprocesses, gate, write artifact -------------

def _run_child(case_name, backend):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # The child runs every stage twice (timing pass + memory pass), so
    # its wall clock is ~2x the timed total.  The budget applies to the
    # *timed* total, checked by the parent below; the child timeout is
    # generous so a merely-over-budget dense run still reports its
    # measured curves ("over_budget") instead of being killed ("dnf").
    timeout = (7 * DENSE_BUDGET_SECONDS if backend == "dense"
               else SPARSE_TIMEOUT_SECONDS)
    started = time.perf_counter()
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "benchmarks.bench_scaling",
             case_name, backend],
            cwd=REPO_ROOT, env=env, timeout=timeout,
            capture_output=True, text=True)
    except subprocess.TimeoutExpired:
        return {"status": "dnf",
                "budget_seconds": timeout,
                "elapsed_seconds": round(
                    time.perf_counter() - started, 1)}
    if proc.returncode != 0:
        raise RuntimeError(
            f"{case_name}/{backend} child failed:\n{proc.stderr}")
    line = [l for l in proc.stdout.splitlines() if l.strip()][-1]
    return json.loads(line)


@pytest.mark.paper("Sec. VI scalability (1k-10k bus growth curves)")
def test_scaling_sparse_vs_dense(benchmark):
    from repro.grid.cases import get_case
    results = {}

    def run_all():
        for case_name, dense_attempted in COMBOS:
            entry = {"sparse": _run_child(case_name, "sparse")}
            if dense_attempted:
                dense = _run_child(case_name, "dense")
                if (dense.get("status") == "ok"
                        and dense["total_seconds"]
                        > DENSE_BUDGET_SECONDS):
                    dense = {**dense, "status": "over_budget",
                             "budget_seconds": DENSE_BUDGET_SECONDS}
                entry["dense"] = dense
            else:
                entry["dense"] = {
                    "status": "skipped",
                    "reason": "dense pipeline at 10000 buses is beyond "
                              "any useful budget (O(b^3) factorizations, "
                              "O(m^2) explicit weight matrix)",
                }
            results[case_name] = entry
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rank1 = {}
    rows = []
    for case_name, _ in COMBOS:
        case = get_case(case_name)
        entry = results[case_name]
        sparse, dense = entry["sparse"], entry["dense"]
        # Gate 1: the sparse pipeline always completes.
        assert sparse["status"] == "ok", (case_name, sparse)
        if "rank1" in sparse:
            rank1[case_name] = sparse["rank1"]
        # Gate 2: sparse beats dense from 300 buses up (a dense DNF
        # counts as beaten).
        if dense["status"] == "ok":
            assert sparse["total_seconds"] < dense["total_seconds"], \
                (case_name, sparse["total_seconds"],
                 dense["total_seconds"])
            dense_cell = f"{dense['total_seconds']:.2f}"
        else:
            dense_cell = dense["status"]
        rows.append((case_name, str(case.num_buses), str(case.num_lines),
                     f"{sparse['total_seconds']:.2f}", dense_cell,
                     f"{sparse['rank1']['speedup']:.1f}x"
                     if "rank1" in sparse else "-"))

    # Gate 3: synth2869 sparse fits the budget dense cannot.
    assert results["synth2869"]["dense"]["status"] in (
        "dnf", "over_budget")
    assert results["synth2869"]["sparse"]["total_seconds"] \
        < DENSE_BUDGET_SECONDS
    # Gate 4: rank-1 updates measurably beat refactorization at scale.
    for case_name in ("synth1354", "synth2869"):
        assert rank1[case_name]["speedup"] > 1.0, (case_name,
                                                   rank1[case_name])

    from repro.benchlib import format_table
    print()
    print(format_table(
        f"pipeline scaling, sparse vs dense "
        f"(dense budget {DENSE_BUDGET_SECONDS}s)",
        ("case", "buses", "lines", "sparse s", "dense s",
         "rank-1 speedup"),
        rows))

    ARTIFACT.write_text(json.dumps({
        "benchmark": "scaling",
        "dense_budget_seconds": DENSE_BUDGET_SECONDS,
        "stages": ["encode", "ptdf_lodf", "wls", "warm_sweep"],
        "cases": {
            name: {
                "buses": get_case(name).num_buses,
                "lines": get_case(name).num_lines,
                **results[name],
            } for name, _ in COMBOS
        },
        "rank1_update": rank1,
    }, indent=2) + "\n")
    print(f"artifact written: {ARTIFACT}")


if __name__ == "__main__":
    case_arg, backend_arg = sys.argv[1], sys.argv[2]
    print(json.dumps(run_pipeline(case_arg, backend_arg)))
